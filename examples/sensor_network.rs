//! Sensor network scenario: battery-constrained motes on a noisy channel.
//!
//! The workload the paper's introduction motivates: low-power devices that
//! must sleep as much as possible (duty cycling) while sharing one channel.
//! Sensor readings arrive in adversarial bursts (a detected event wakes a
//! whole neighbourhood); a co-located appliance interferes periodically.
//!
//! We compare `LOW-SENSING BACKOFF` against the short-feedback-loop MWU
//! baseline, pricing energy as radio-on slots (each send or listen keeps
//! the radio powered for one slot).
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example sensor_network
//! ```

use lowsense::{LowSensing, Params};
use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_sim::prelude::*;
use lowsense_stats::Summary;

/// Radio energy model (order-of-magnitude CC2420-class numbers): a slot is
/// ~1 ms; active radio (RX or TX) ≈ 60 µJ per slot.
const UJ_PER_ACCESS: f64 = 60.0;

fn main() {
    // 64-slot event windows; bursts of readings at window fronts, at most
    // 10% arrival rate; a periodic interferer jams 8 slots out of every 128.
    let granularity = 64;
    let total_readings = 20_000u64;
    println!("sensor network: bursty readings (λ=0.1, S={granularity}), periodic interference\n");

    // Both protocols face the identical scenario — one description, two
    // engines, paired seeds.
    let scenario =
        scenarios::adversarial_queuing_total(0.1, granularity, Placement::Front, total_readings)
            .jammer(PeriodicBurst::new(128, 8, 17))
            .seed(7);
    let lsb = scenario.run_sparse(|_rng| LowSensing::new(Params::default()));
    let cjp = scenario.run_grouped(|_rng| CjpMwu::new(CjpConfig::default()));

    for (name, r) in [
        ("LOW-SENSING BACKOFF", &lsb),
        ("every-slot MWU (CJP)", &cjp),
    ] {
        assert!(r.drained(), "{name}: all readings delivered");
        let t = &r.totals;
        let accesses = r.access_counts();
        let energy = Summary::of_counts(&accesses);
        let latency = Summary::of_counts(&r.latencies());
        println!("{name}");
        println!(
            "  delivered {} readings over {} active slots (throughput {:.3})",
            t.successes,
            t.active_slots,
            t.throughput()
        );
        println!(
            "  radio-on slots per reading: mean {:.1}, max {:.0}",
            energy.mean, energy.max
        );
        println!(
            "  battery: {:.1} µJ per delivered reading ({:.2} J fleet total)",
            energy.mean * UJ_PER_ACCESS,
            t.accesses() as f64 * UJ_PER_ACCESS / 1e6,
        );
        println!(
            "  delivery latency: mean {:.0} slots, max {:.0}\n",
            latency.mean, latency.max
        );
    }

    let ratio = cjp.totals.accesses() as f64 / lsb.totals.accesses() as f64;
    println!(
        "fleet energy ratio (MWU / low-sensing): {ratio:.1}× — the slow feedback loop \
         pays for itself in battery life while keeping constant throughput"
    );
}
