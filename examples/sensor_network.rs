//! Sensor network scenario: battery-constrained motes on a noisy channel.
//!
//! The workload the paper's introduction motivates: low-power devices that
//! must sleep as much as possible (duty cycling) while sharing one channel.
//! Sensor readings arrive in adversarial bursts (a detected event wakes a
//! whole neighbourhood); a co-located appliance interferes periodically.
//!
//! We sweep the event rate λ and compare `LOW-SENSING BACKOFF` against the
//! short-feedback-loop MWU baseline, pricing energy as radio-on slots
//! (each send or listen keeps the radio powered for one slot). The sweep
//! is a **campaign**: the λ × protocol grid, replicated over seeds,
//! executes on the deterministic shard pool and folds through mergeable
//! accumulators — no hand-rolled seed loops.
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example sensor_network
//! ```

use lowsense::{LowSensing, Params};
use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::prelude::*;

/// Radio energy model (order-of-magnitude CC2420-class numbers): a slot is
/// ~1 ms; active radio (RX or TX) ≈ 60 µJ per slot.
const UJ_PER_ACCESS: f64 = 60.0;

fn main() {
    // 64-slot event windows; bursts of readings at window fronts; a
    // periodic interferer jams 8 slots out of every 128. One scenario
    // point per event rate λ.
    let granularity = 64;
    let total_readings = 8_000u64;
    println!(
        "sensor network: bursty readings (S={granularity}), periodic interference, \
         λ sweep × protocol campaign\n"
    );

    // The three-line sweep: scenario axis × protocol axis × replicates.
    let result = CampaignSpec::new("sensor-network")
        .seed(7)
        .replicates(3)
        .scenarios([0.05, 0.1, 0.2].map(|lambda| {
            ScenarioPoint::new(
                scenarios::adversarial_queuing_total(
                    lambda,
                    granularity,
                    Placement::Front,
                    total_readings,
                )
                .jammer(PeriodicBurst::new(128, 8, 17))
                .boxed(),
            )
            .knob("lambda", lambda)
        }))
        .protocol("low-sensing", |sc, _| {
            sc.run_sparse(|_| LowSensing::new(Params::default()))
        })
        .protocol("mwu-cjp", |sc, _| {
            sc.run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        })
        .run();

    println!("{}", result.render());

    for (s_idx, label) in result.scenarios.iter().enumerate() {
        println!("{label}");
        for (p_idx, proto) in result.protocols.iter().enumerate() {
            let stats = &result.cell(s_idx, p_idx).stats;
            assert_eq!(
                stats.successes, stats.arrivals,
                "{proto}: all readings delivered"
            );
            let energy = stats.accesses.summary();
            println!(
                "  {:<12} throughput {:.3} ± {:.3}; radio-on slots/reading: mean {:.1}, \
                 p99 {:.0}, max {:.0} → {:.1} µJ per reading",
                proto,
                stats.throughput.mean(),
                stats.throughput.summary().se,
                energy.mean,
                stats.access_sketch.quantile(0.99),
                energy.max,
                energy.mean * UJ_PER_ACCESS,
            );
        }
        let lsb = &result.cell(s_idx, 0).stats;
        let cjp = &result.cell(s_idx, 1).stats;
        let ratio = (cjp.sends + cjp.listens) as f64 / (lsb.sends + lsb.listens) as f64;
        println!("  fleet energy ratio (MWU / low-sensing): {ratio:.1}×\n");
    }

    println!(
        "the slow feedback loop pays for itself in battery life at every event rate, \
         while keeping constant throughput — and the whole sweep is one deterministic \
         campaign (byte-identical for any shard count)"
    );
}
