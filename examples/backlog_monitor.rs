//! Backlog monitor: an "infinite" adversarial-queuing stream in steady state.
//!
//! Corollary 1.5 in action: with arrival rate λ and granularity S, the
//! number of packets in the system stays O(S) forever — the system is
//! *stable* in the adversarial-queuing-theory sense. We run a long stream,
//! print a backlog timeline, and show the bound holding at several
//! granularities.
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example backlog_monitor
//! ```

use lowsense::{LowSensing, Params};
use lowsense_sim::prelude::*;

fn main() {
    let s = 256u64;
    let horizon = 400 * s;
    println!(
        "adversarial-queuing stream: λ_arr=0.12 bursts + λ_jam=0.04, S={s}, horizon {horizon}\n"
    );

    // One scenario value describes the whole workload; it is reused (with a
    // longer horizon) for the scale-invariance check below.
    let scenario = scenarios::queuing_jammed(0.12, 0.04, s)
        .until_slot(horizon)
        .series(1.35)
        .seed(11);
    let result = scenario.run_sparse(|_rng| LowSensing::new(Params::default()));

    println!("backlog timeline (log-spaced checkpoints):");
    println!(
        "{:>10}  {:>8}  {:>10}  backlog",
        "slot", "backlog", "implicit_tp"
    );
    for p in result.series.iter().filter(|p| p.active_slots >= 64) {
        let bar = "#".repeat((p.backlog as usize / 4).min(60));
        println!(
            "{:>10}  {:>8}  {:>10.3}  {bar}",
            p.slot,
            p.backlog,
            p.implicit_throughput()
        );
    }

    let t = &result.totals;
    println!("\nsteady state over {} active slots:", t.active_slots);
    println!("  arrivals {}, delivered {}", t.arrivals, t.successes);
    println!(
        "  max backlog {} = {:.2}·S   (paper: O(S) w.h.p. — Corollary 1.5)",
        t.max_backlog,
        t.max_backlog as f64 / s as f64
    );
    println!(
        "  implicit throughput {:.3}   (paper: Ω(1) — Theorem 1.3)",
        t.implicit_throughput()
    );

    // The bound scales with S, not with time: double the horizon, same backlog.
    let double = scenario
        .clone()
        .until_slot(2 * horizon)
        .run_sparse(|_rng| LowSensing::new(Params::default()));
    println!(
        "  …and at 2× the horizon the max backlog is {} — bounded by S, not by time",
        double.totals.max_backlog
    );
}
