//! Jamming attack scenarios (§1.3 of the paper, dramatized).
//!
//! Three adversaries attack a small network:
//!
//! 1. a *blanket* jammer that randomly destroys 30% of slots;
//! 2. an *adaptive end-game* jammer that saves its budget for the moments
//!    few packets remain (when a single jam can stall a back-on);
//! 3. a *reactive sniper* that watches the channel and jams exactly the
//!    transmissions of one victim packet.
//!
//! `LOW-SENSING BACKOFF` shrugs off all three; binary exponential backoff
//! is destroyed by the sniper with a logarithmic budget.
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example jamming_attack
//! ```

use lowsense::{LowSensing, Params};
use lowsense_baselines::WindowedBeb;
use lowsense_sim::prelude::*;

fn lsb_run<J: Jammer + Clone>(jam: J, seed: u64) -> RunResult {
    scenarios::batch_drain(512)
        .jammer(jam)
        .seed(seed)
        .run_sparse(|_rng| LowSensing::new(Params::default()))
}

fn main() {
    println!("jamming attacks on a batch of 512 packets\n");

    // 1. Blanket noise.
    let clean = lsb_run(NoJam, 1);
    let blanket = lsb_run(RandomJam::new(0.3), 1);
    println!("blanket jammer (30% of slots destroyed):");
    println!(
        "  low-sensing throughput {:.3} → {:.3} with the jam credit (T+J)/S — \
         constant, as Cor 1.4 promises",
        clean.totals.throughput(),
        blanket.totals.throughput()
    );
    println!(
        "  makespan stretch: {} → {} active slots\n",
        clean.totals.active_slots, blanket.totals.active_slots
    );

    // 2. Adaptive end-game jamming (finite budget; an unbounded budget at
    // this rate could stall the end-game forever — the metrics absorb that
    // as jam credit, but the demo wants to finish).
    let endgame = lsb_run(BacklogJam::new(0.8, 8).with_budget(5_000), 2);
    assert!(endgame.drained());
    println!("adaptive end-game jammer (80% jam rate while ≤ 8 packets remain, 5000-jam budget):");
    println!(
        "  drained: {} — throughput {:.3} with jam credit; the L(t) potential term \
         absorbs exactly this attack (§4.2)\n",
        endgame.drained(),
        endgame.totals.throughput()
    );

    // 3. Reactive sniper vs one victim.
    let budget = 12u64;
    let lsb_sniped = lsb_run(ReactiveTargeted::new(PacketId(0), budget), 3);
    let beb_sniped = scenarios::batch_drain(512)
        .jammer(ReactiveTargeted::new(PacketId(0), budget))
        .seed(3)
        .run_sparse(|rng| WindowedBeb::new(2, 40, rng));
    let victim_latency = |r: &RunResult| {
        r.per_packet.as_ref().unwrap()[0]
            .latency()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "never".into())
    };
    println!("reactive sniper ({budget} targeted jams on packet #0):");
    println!(
        "  low-sensing: victim delivered after {} slots, {} channel accesses",
        victim_latency(&lsb_sniped),
        lsb_sniped.per_packet.as_ref().unwrap()[0].accesses()
    );
    println!(
        "  exponential backoff: victim delivered after {} slots — each jam doubles \
         its window and it never backs on (§1.3: Θ(ln T) jams ⇒ Θ(T) delay)",
        victim_latency(&beb_sniped)
    );
}
