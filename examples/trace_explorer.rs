//! Trace explorer: dump a CSV of the herd's internal state over time.
//!
//! Writes `slot,backlog,contention,w_max,phi,regime` rows to stdout for a
//! batch run — pipe into your plotting tool of choice to *see* the slow
//! feedback loop settle the herd into the good-contention band.
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example trace_explorer -- [N] [SEED] > trace.csv
//! ```

use lowsense::{LowSensing, Params, PotentialTracker, Regime};
use lowsense_sim::feedback::SlotOutcome;
use lowsense_sim::hooks::Hooks;
use lowsense_sim::packet::PacketId;
use lowsense_sim::prelude::*;
use lowsense_sim::time::Slot;

/// Emits one CSV row per checkpoint, delegating state to a tracker.
struct CsvTrace {
    tracker: PotentialTracker,
    every: u64,
    since: u64,
}

impl CsvTrace {
    fn emit(&mut self, slot: Slot) {
        self.since += 1;
        if self.since < self.every {
            return;
        }
        self.since = 0;
        let regime = match self.tracker.regime() {
            Regime::Low => "low",
            Regime::Good => "good",
            Regime::High => "high",
        };
        println!(
            "{slot},{},{:.4},{:.1},{:.2},{regime}",
            self.tracker.packets(),
            self.tracker.contention(),
            self.tracker.w_max().unwrap_or(0.0),
            self.tracker.phi(),
        );
    }
}

impl Hooks<LowSensing> for CsvTrace {
    fn on_inject(&mut self, t: Slot, id: PacketId, s: &LowSensing) {
        self.tracker.on_inject(t, id, s);
    }
    fn on_depart(&mut self, t: Slot, id: PacketId, s: &LowSensing) {
        self.tracker.on_depart(t, id, s);
    }
    fn on_observe(&mut self, t: Slot, id: PacketId, b: &LowSensing, a: &LowSensing) {
        self.tracker.on_observe(t, id, b, a);
    }
    fn on_slot(&mut self, t: Slot, o: &SlotOutcome) {
        self.tracker.on_slot(t, o);
        self.emit(t);
    }
    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.tracker.on_gap(from, to, jammed);
        self.since += (to - from).saturating_sub(1);
        self.emit(to - 1);
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(4096);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("SEED must be an integer"))
        .unwrap_or(1);

    println!("slot,backlog,contention,w_max,phi,regime");
    let mut trace = CsvTrace {
        tracker: PotentialTracker::default(),
        every: (n / 256).max(1),
        since: 0,
    };
    let result = scenarios::batch_drain(n)
        .seed(seed)
        .run_sparse_hooked(|_rng| LowSensing::new(Params::default()), &mut trace);
    eprintln!(
        "# drained {} packets in {} active slots (throughput {:.3}); occupancy low/good/high = {:?}",
        result.totals.successes,
        result.totals.active_slots,
        result.totals.throughput(),
        trace.tracker.occupancy(),
    );
}
