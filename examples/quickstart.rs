//! Quickstart: resolve a batch of 1000 packets with `LOW-SENSING BACKOFF`.
//!
//! ```text
//! cargo run --release -p lowsense-experiments --example quickstart
//! ```

use lowsense::{theory, LowSensing, Params};
use lowsense_sim::prelude::*;
use lowsense_stats::{tail_summary, Summary};

fn main() {
    let n = 1000u64;
    println!("LOW-SENSING BACKOFF quickstart: batch of {n} packets, no jamming\n");

    // A scenario is a named, reusable run description: arrivals × jammer ×
    // limits × metrics × seed. The protocol joins at the run call.
    let result = scenarios::batch_drain(n)
        .seed(42)
        .run_sparse(|_rng| LowSensing::new(Params::default()));

    assert!(result.drained(), "all packets must be delivered");
    let t = &result.totals;
    println!("delivered            : {} / {}", t.successes, t.arrivals);
    println!("active slots (S)     : {}", t.active_slots);
    println!(
        "throughput N/S       : {:.3}   (paper: Θ(1) — Corollary 1.4)",
        t.throughput()
    );
    println!(
        "slot mix             : {} empty, {} success, {} collision",
        t.empty_active, t.successes, t.collision_slots
    );

    let accesses = result.access_counts();
    let energy = Summary::of_counts(&accesses);
    let (p50, p90, p99, max) = tail_summary(&accesses);
    println!("\nchannel accesses per packet (sends + listens — the energy measure):");
    println!(
        "  mean {:.1}   p50 {p50}   p90 {p90}   p99 {p99}   max {max}",
        energy.mean
    );
    println!(
        "  paper bound O(ln⁴ N) = {:.0}; an every-slot listener would pay ≈ {} accesses",
        theory::energy_bound_finite(n, 0),
        t.active_slots
    );

    let latency = Summary::of_counts(&result.latencies());
    println!("\nlatency (slots from injection to success):");
    println!("  mean {:.0}   max {:.0}", latency.mean, latency.max);

    println!(
        "\nTry the full reproduction: cargo run --release -p lowsense-experiments --bin repro -- list"
    );
}
