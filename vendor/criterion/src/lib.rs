//! Minimal offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the surface this repository's benches use: `criterion_group!`
//! / `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function(name, |b| b.iter(...))`, and the chainable group
//! configuration methods. Each benchmark runs `sample_size` timed samples
//! after one warm-up call and prints the mean wall-clock time per
//! iteration — no statistics, no plots, no baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in warms up with a single
    /// untimed call instead of a time budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in always runs exactly
    /// `sample_size` samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per iteration of the routine.
    pub mean: Duration,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `samples` timed
    /// calls; records the mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn run_bench<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench: {id:<50} time: {:>12.3?}/iter  (mean of {samples})",
        b.mean
    );
}

/// Collects benchmark functions into one callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).warm_up_time(Duration::ZERO);
        let mut ran = 0u32;
        group.bench_function("busy", |b| {
            b.iter(|| {
                ran += 1;
                std::thread::sleep(Duration::from_micros(50));
            })
        });
        group.finish();
        // Warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, target);
        benches();
    }
}
