//! Minimal offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides exactly the trait pair `lowsense-sim`'s [`SimRng`] interop
//! needs: a fallible [`TryRng`] and an infallible [`Rng`] with a blanket
//! impl for `TryRng<Error = Infallible>` generators.
//!
//! [`SimRng`]: https://docs.rs/lowsense-sim

#![forbid(unsafe_code)]

use std::convert::Infallible;

/// A generator whose operations may fail.
pub trait TryRng {
    /// Error produced by the generator.
    type Error;

    /// Next 32 uniformly random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Next 64 uniformly random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with uniformly random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible generator; blanket-implemented for every
/// `TryRng<Error = Infallible>`.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: TryRng<Error = Infallible>> Rng for T {
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(x) => x,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(x) => x,
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => (),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok(self.try_next_u64()? as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 += 1;
            Ok(self.0)
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for b in dest {
                *b = self.try_next_u64()? as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn blanket_rng_impl_applies() {
        let mut rng = Counter(0);
        assert_eq!(Rng::next_u64(&mut rng), 1);
        assert_eq!(Rng::next_u32(&mut rng), 2);
        let mut buf = [0u8; 3];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
