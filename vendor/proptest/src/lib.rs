//! Minimal offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the macro/strategy surface this repository's property tests
//! use: `proptest! { #![proptest_config(..)] fn case(x in strategy) {..} }`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`,
//! numeric-range / tuple / `Just` strategies, and
//! `collection::vec`. Tests run as seeded randomized tests: the RNG seed
//! is derived from the test name, so failures are reproducible, but there
//! is **no shrinking** — a failing case reports its inputs via the assert
//! message only.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::StubRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StubRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut StubRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StubRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut StubRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut StubRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Uniform choice among homogeneous strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Builds the union; panics on an empty list.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StubRng) -> Self::Value {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StubRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-case driver types.
pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        /// Configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip the case without failing the test.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed: fail the test.
        Fail(String),
    }

    /// SplitMix64 generator; seeded from the test name for reproducibility.
    #[derive(Debug, Clone)]
    pub struct StubRng(u64);

    impl StubRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            StubRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares randomized test functions; see the crate docs for the accepted
/// grammar (a subset of real proptest's).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::StubRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // Give rejecting cases (prop_assume!) room, but always stop.
            while accepted < config.cases && attempts < config.cases.saturating_mul(40) {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => panic!("proptest case {} failed: {message}", stringify!($name)),
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure fails the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{left:?} != {right:?}"
            )));
        }
    }};
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among homogeneous strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_oneof_strategies(
            v in crate::collection::vec(0u8..3, 0..50),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&b| b < 3));
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::StubRng::for_test("t");
        let mut b = crate::test_runner::StubRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
