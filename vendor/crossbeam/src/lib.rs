//! Minimal offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides only `crossbeam::channel::{unbounded, Sender, Receiver}` — the
//! surface the experiment runner's `parallel_map` uses. The implementation
//! is a plain mutex + condvar MPMC queue; correctness over speed.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `item`; fails only if every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(item));
            }
            st.items.push_back(item);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel poisoned");
            st.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (job_tx, job_rx) = channel::unbounded::<u64>();
        let (res_tx, res_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            job_tx.send(i).unwrap();
        }
        drop(job_tx);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                s.spawn(move || {
                    while let Ok(x) = rx.recv() {
                        tx.send(x * 2).unwrap();
                    }
                });
            }
            drop(res_tx);
            let mut got: Vec<u64> = Vec::new();
            while let Ok(x) = res_rx.recv() {
                got.push(x);
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_fails_when_senders_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
