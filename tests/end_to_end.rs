//! End-to-end: every protocol × representative workloads, plus the
//! experiment registry.

use lowsense::{LowSensing, Params};
use lowsense_baselines::{
    CjpConfig, CjpMwu, PolynomialBackoff, ProbBeb, SlottedAloha, WindowedBeb,
};
use lowsense_sim::prelude::*;

fn cfg(seed: u64) -> SimConfig {
    SimConfig::new(seed)
}

#[test]
fn lsb_drains_all_workload_shapes() {
    let n = 300u64;
    let runs: Vec<RunResult> = vec![
        run_sparse(&cfg(1), Batch::new(n), NoJam, |_| LowSensing::new(Params::default()), &mut NoHooks),
        run_sparse(
            &cfg(2),
            Bernoulli::new(0.02).with_total(n),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        ),
        run_sparse(
            &cfg(3),
            PoissonArrivals::new(0.05).with_total(n),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        ),
        run_sparse(
            &cfg(4),
            AdversarialQueuing::new(0.1, 64, Placement::Random).with_total(n),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        ),
        run_sparse(
            &cfg(5),
            Trace::new(vec![(0, 100), (500, 100), (5000, 100)]),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        ),
        run_sparse(
            &cfg(6),
            BacklogTriggered::new(50, n),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        ),
    ];
    for (i, r) in runs.iter().enumerate() {
        assert!(r.drained(), "workload {i} did not drain");
        assert_eq!(r.totals.arrivals, n, "workload {i} arrival count");
        assert!(
            r.totals.throughput() > 0.05,
            "workload {i} throughput {}",
            r.totals.throughput()
        );
    }
}

#[test]
fn every_baseline_drains_a_batch() {
    let n = 200u64;
    assert!(run_sparse(&cfg(10), Batch::new(n), NoJam, |rng| WindowedBeb::new(2, 30, rng), &mut NoHooks).drained());
    assert!(run_sparse(&cfg(11), Batch::new(n), NoJam, |_| ProbBeb::new(0.5), &mut NoHooks).drained());
    assert!(run_sparse(&cfg(12), Batch::new(n), NoJam, |rng| PolynomialBackoff::new(2, 2, rng), &mut NoHooks).drained());
    assert!(run_sparse(&cfg(13), Batch::new(n), NoJam, |_| SlottedAloha::genie(n), &mut NoHooks).drained());
    assert!(run_grouped(&cfg(14), Batch::new(n), NoJam, |_| CjpMwu::new(CjpConfig::default())).drained());
}

#[test]
fn lsb_beats_beb_on_large_batches() {
    let n = 4096u64;
    let lsb = run_sparse(&cfg(20), Batch::new(n), NoJam, |_| LowSensing::new(Params::default()), &mut NoHooks);
    let beb = run_sparse(&cfg(20), Batch::new(n), NoJam, |rng| WindowedBeb::new(2, 30, rng), &mut NoHooks);
    assert!(
        lsb.totals.throughput() > 2.0 * beb.totals.throughput(),
        "lsb {} vs beb {}",
        lsb.totals.throughput(),
        beb.totals.throughput()
    );
}

#[test]
fn registry_experiments_produce_well_formed_tables() {
    // Run two cheap experiments end-to-end through the registry.
    let registry = lowsense_experiments::registry();
    for id in ["F3", "T9"] {
        let e = registry.iter().find(|e| e.id == id).expect("registered");
        let tables = (e.run)(lowsense_experiments::Scale::Quick);
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.columns.is_empty());
            assert!(!t.rows.is_empty());
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len());
            }
            // Render and CSV never panic and contain the id.
            assert!(t.render().contains(&t.id));
            assert!(t.to_csv().contains(','));
        }
    }
}

#[test]
fn latencies_and_energy_are_recorded_for_all_delivered_packets() {
    let n = 256u64;
    let r = run_sparse(&cfg(30), Batch::new(n), NoJam, |_| LowSensing::new(Params::default()), &mut NoHooks);
    assert_eq!(r.latencies().len(), n as usize);
    assert_eq!(r.access_counts().len(), n as usize);
    // Every packet sent at least once (its success).
    let ps = r.per_packet.as_ref().unwrap();
    assert!(ps.iter().all(|p| p.sends >= 1));
}
