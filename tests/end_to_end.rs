//! End-to-end: every protocol × representative workloads (all constructed
//! through the scenario layer), plus the experiment registry.

use lowsense_baselines::{
    CjpConfig, CjpMwu, PolynomialBackoff, ProbBeb, SlottedAloha, WindowedBeb,
};
use lowsense_sim::prelude::*;

use lowsense::lsb;

#[test]
fn lsb_drains_all_workload_shapes() {
    let n = 300u64;
    let workloads: Vec<DynScenario> = vec![
        scenarios::batch_drain(n).seed(1).boxed(),
        scenarios::bernoulli_stream(0.02, n).seed(2).boxed(),
        scenarios::poisson_stream(0.05, n).seed(3).boxed(),
        scenarios::adversarial_queuing_total(0.1, 64, Placement::Random, n)
            .seed(4)
            .boxed(),
        Scenario::named("three-bursts")
            .arrivals(Trace::new(vec![(0, 100), (500, 100), (5000, 100)]))
            .seed(5)
            .boxed(),
        scenarios::saturated(50, n).seed(6).boxed(),
    ];
    for scenario in &workloads {
        let r = scenario.run_sparse(lsb());
        let name = scenario.name();
        assert!(r.drained(), "{name} did not drain");
        assert_eq!(r.totals.arrivals, n, "{name} arrival count");
        assert!(
            r.totals.throughput() > 0.05,
            "{name} throughput {}",
            r.totals.throughput()
        );
    }
}

#[test]
fn every_baseline_drains_a_batch() {
    let batch = scenarios::batch_drain(200);
    assert!(batch
        .seeded(10)
        .run_sparse(|rng| WindowedBeb::new(2, 30, rng))
        .drained());
    assert!(batch.seeded(11).run_sparse(|_| ProbBeb::new(0.5)).drained());
    assert!(batch
        .seeded(12)
        .run_sparse(|rng| PolynomialBackoff::new(2, 2, rng))
        .drained());
    assert!(batch
        .seeded(13)
        .run_sparse(|_| SlottedAloha::genie(200))
        .drained());
    assert!(batch
        .seeded(14)
        .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        .drained());
}

#[test]
fn lsb_beats_beb_on_large_batches() {
    let faceoff = scenarios::protocol_faceoff(4096).seed(20);
    let lsb_run = faceoff.run_sparse(lsb());
    let beb_run = faceoff.run_sparse(|rng| WindowedBeb::new(2, 30, rng));
    assert!(
        lsb_run.totals.throughput() > 2.0 * beb_run.totals.throughput(),
        "lsb {} vs beb {}",
        lsb_run.totals.throughput(),
        beb_run.totals.throughput()
    );
}

#[test]
fn registry_experiments_produce_well_formed_tables() {
    // Run two cheap experiments end-to-end through the registry.
    let registry = lowsense_experiments::registry();
    for id in ["F3", "T9"] {
        let e = registry.iter().find(|e| e.id == id).expect("registered");
        let tables = (e.run)(lowsense_experiments::Scale::Quick);
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.columns.is_empty());
            assert!(!t.rows.is_empty());
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len());
            }
            // Render and CSV never panic and contain the id.
            assert!(t.render().contains(&t.id));
            assert!(t.to_csv().contains(','));
        }
    }
}

#[test]
fn canned_scenario_registry_smoke() {
    // Every canonical scenario drains (or stops at its horizon) with sane
    // accounting under the reference protocol.
    for scenario in scenarios::registry(64) {
        let r = scenario.seeded(30).run_sparse(lsb());
        let t = &r.totals;
        assert!(t.successes <= t.arrivals, "{}", scenario.name());
        assert!(t.sends >= t.successes, "{}", scenario.name());
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active,
            "{}: slot classes must partition active slots",
            scenario.name()
        );
    }
}

#[test]
fn latencies_and_energy_are_recorded_for_all_delivered_packets() {
    let n = 256u64;
    let r = scenarios::batch_drain(n).seed(30).run_sparse(lsb());
    assert_eq!(r.latencies().len(), n as usize);
    assert_eq!(r.access_counts().len(), n as usize);
    // Every packet sent at least once (its success).
    let ps = r.per_packet.as_ref().unwrap();
    assert!(ps.iter().all(|p| p.sends >= 1));
}
