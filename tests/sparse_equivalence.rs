//! Bit-for-bit equivalence of the calendar-queue sparse engine against the
//! retained heap-based reference loop.
//!
//! The optimized engine (`run_sparse`) promises *identical executions*, not
//! just statistical agreement: the same RNG draw order, the same
//! floating-point accumulation order, the same hook sequence. Since PR 4
//! the shared processing order within a slot is **insertion order**: the
//! reference keys its heap `(slot, insertion_seq)` while the calendar
//! queue drains buckets in push order, two implementations of the same
//! order — which is what lets the fast engine skip per-slot sorting and
//! run its packet table through epoch compaction without these
//! comparisons noticing. The tests hold both engines to that promise
//! across the canonical scenario registry (including its jammed and
//! reactive-adversary scenarios), several protocols, metric
//! configurations, and seeds, by comparing complete [`RunResult`]s —
//! totals, per-packet statistics, and trajectory series — with exact
//! equality.
//!
//! Since the hierarchical wheel became the production wake set, the suite
//! is **three-way**: the wheel is also pinned against the retained flat
//! calendar ring (`run_sparse_flat`, the PR 2–6 production queue running
//! under the *same* generic loop body). The heap reference checks the
//! loop; the flat ring checks the queue — a structurally different
//! single-level schedule that must still drain in the identical
//! (slot, insertion-seq) order through every cascade the wheel performs.

use lowsense::{lsb, LowSensing, Params};
use lowsense_baselines::{
    CjpConfig, CjpMwu, Coupling, LowSensingVariant, PolynomialBackoff, ProbBeb, SlottedAloha,
    UpdateRule, VariantConfig, WindowedBeb,
};
use lowsense_sim::prelude::*;
use proptest::prelude::*;

/// Exact comparison of every field of two [`RunResult`]s.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.seed, b.seed, "{what}: seed");
    assert_eq!(a.totals, b.totals, "{what}: totals");
    match (&a.per_packet, &b.per_packet) {
        (None, None) => {}
        (Some(pa), Some(pb)) => assert_eq!(pa, pb, "{what}: per-packet stats"),
        _ => panic!("{what}: per-packet presence differs"),
    }
    assert_eq!(a.series.len(), b.series.len(), "{what}: series length");
    for (i, (sa, sb)) in a.series.iter().zip(&b.series).enumerate() {
        assert_eq!(sa, sb, "{what}: series point {i}");
    }
}

/// Three-way check of one scenario: hierarchical wheel (production) vs
/// flat calendar ring (retained queue oracle) vs heap reference (loop
/// oracle), all bit-identical.
fn assert_three_way<A, J, P, F>(s: &Scenario<A, J>, factory: F, what: &str)
where
    A: ArrivalProcess + Clone,
    J: Jammer + Clone,
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P + Clone,
{
    let wheel = s.run_sparse(factory.clone());
    let flat = s.run_sparse_flat(factory.clone());
    let heap = s.run_sparse_reference(factory);
    assert_identical(&wheel, &flat, &format!("{what}: wheel vs flat ring"));
    assert_identical(&wheel, &heap, &format!("{what}: wheel vs heap reference"));
}

/// Every registry scenario, LSB protocol, three seeds: identical results.
#[test]
fn registry_is_bit_identical_under_lsb() {
    for scenario in scenarios::registry(96) {
        for seed in [1, 7, 1234] {
            let s = scenario.seeded(seed);
            let fast = s.run_sparse(lsb());
            let reference = s.run_sparse_reference(lsb());
            assert_identical(&fast, &reference, &format!("{} (seed {seed})", s.name()));
        }
    }
}

/// The trajectory series (geometric checkpoints, including the in-gap
/// checkpoint path) must match sample-for-sample.
#[test]
fn registry_series_bit_identical() {
    for scenario in scenarios::registry(64) {
        let s = scenario.seeded(3).series(1.3);
        let fast = s.run_sparse(lsb());
        let reference = s.run_sparse_reference(lsb());
        assert_identical(&fast, &reference, s.name());
        assert!(
            !fast.series.is_empty(),
            "{}: series should have samples",
            s.name()
        );
    }
}

/// Baseline protocols exercise different scheduling shapes: deterministic
/// countdowns (BEB, polynomial), memoryless draws (ALOHA, ProbBeb), and the
/// degenerate every-slot listener (CJP).
#[test]
fn baselines_bit_identical_on_jammed_batch() {
    let s = scenarios::random_jam_batch(48, 0.15).seed(11);
    assert_identical(
        &s.run_sparse(|_| SlottedAloha::new(1.0 / 48.0)),
        &s.run_sparse_reference(|_| SlottedAloha::new(1.0 / 48.0)),
        "aloha",
    );
    assert_identical(
        &s.run_sparse(|rng| WindowedBeb::new(4, 16, rng)),
        &s.run_sparse_reference(|rng| WindowedBeb::new(4, 16, rng)),
        "windowed-beb",
    );
    assert_identical(
        &s.run_sparse(|_| ProbBeb::new(0.25)),
        &s.run_sparse_reference(|_| ProbBeb::new(0.25)),
        "prob-beb",
    );
    assert_identical(
        &s.run_sparse(|rng| PolynomialBackoff::new(4, 2, rng)),
        &s.run_sparse_reference(|rng| PolynomialBackoff::new(4, 2, rng)),
        "polynomial",
    );
    let s = s.clone().until_slot(5_000);
    assert_identical(
        &s.run_sparse(|_| CjpMwu::new(CjpConfig::default())),
        &s.run_sparse_reference(|_| CjpMwu::new(CjpConfig::default())),
        "cjp (every-slot listener)",
    );
}

/// Reactive jamming consults the adversary with the slot's sender set; the
/// engines must present identical sets in identical order.
#[test]
fn reactive_adversaries_bit_identical() {
    let s = scenarios::reactive_dos_batch(64, 40).seed(5);
    assert_identical(
        &s.run_sparse(lsb()),
        &s.run_sparse_reference(lsb()),
        "reactive-dos",
    );
    let s = Scenario::named("sniper")
        .arrivals(Batch::new(32))
        .jammer(WithReactive::new(
            RandomJam::new(0.1),
            ReactiveTargeted::new(PacketId(3), 8),
        ))
        .seed(9);
    assert_identical(
        &s.run_sparse(lsb()),
        &s.run_sparse_reference(lsb()),
        "sniper",
    );
}

/// Far-future wake-ups (beyond the calendar ring) migrate through the
/// overflow heap; tiny access probabilities exercise that path hard.
#[test]
fn far_horizon_wakeups_bit_identical() {
    let s = Scenario::named("long-sleepers")
        .arrivals(Trace::new(vec![(0, 8), (20_000, 8), (90_000, 8)]))
        .seed(2)
        .until_slot(400_000);
    let factory = |_: &mut SimRng| LowSensing::with_window(Params::default(), 5e7);
    // Three-way on purpose: 5e7-slot wakes land in the wheel's coarse
    // levels (and cascade down) but in the flat ring's overflow heap — the
    // two queues disagree structurally the most on exactly this workload.
    assert_three_way(&s, factory, "long-sleepers");
}

/// The full canonical registry under the three-way check: every scenario
/// (clean, jammed, bursty, reactive, streaming), two seeds, LSB.
#[test]
fn registry_three_way_bit_identical() {
    for scenario in scenarios::registry(64) {
        for seed in [2, 77] {
            let s = scenario.seeded(seed);
            let what = format!("{} (seed {seed})", s.name());
            assert_three_way(&s, lsb(), &what);
        }
    }
}

/// Adversarial scheduling under the three-way check: reactive jammers see
/// the sender sets the queues hand the loop, so any drain-order skew
/// between the three wake sets would surface here as diverging jam
/// decisions, not just shuffled floats.
#[test]
fn reactive_adversaries_three_way_bit_identical() {
    assert_three_way(
        &scenarios::reactive_dos_batch(64, 40).seed(15),
        lsb(),
        "reactive-dos",
    );
    let sniper = Scenario::named("sniper")
        .arrivals(Batch::new(32))
        .jammer(WithReactive::new(
            RandomJam::new(0.1),
            ReactiveTargeted::new(PacketId(3), 8),
        ))
        .seed(19);
    assert_three_way(&sniper, lsb(), "sniper");
}

/// All seven protocols of the equivalence suite under the three-way check
/// on a jammed batch: the protocols differ in scheduling shape
/// (deterministic countdowns, memoryless draws, every-slot listeners,
/// multiplicative ladders), so together they exercise every queue path —
/// L0 pushes, coarse placements, cascades, and the far heap.
#[test]
fn seven_protocols_three_way_bit_identical() {
    let s = scenarios::random_jam_batch(48, 0.15)
        .seed(23)
        .until_slot(5_000);
    assert_three_way(&s, lsb(), "lsb");
    assert_three_way(&s, |_: &mut SimRng| ProbBeb::new(0.25), "prob-beb");
    assert_three_way(&s, |_: &mut SimRng| SlottedAloha::new(1.0 / 48.0), "aloha");
    assert_three_way(
        &s,
        |rng: &mut SimRng| WindowedBeb::new(4, 16, rng),
        "windowed-beb",
    );
    assert_three_way(
        &s,
        |rng: &mut SimRng| PolynomialBackoff::new(4, 2, rng),
        "polynomial",
    );
    assert_three_way(
        &s,
        |_: &mut SimRng| CjpMwu::new(CjpConfig::default()),
        "cjp (every-slot listener)",
    );
    let cfg = VariantConfig {
        update: UpdateRule::Factor(2.0),
        coupling: Coupling::Independent,
        ..VariantConfig::paper(0.5, 4.0)
    };
    assert_three_way(
        &s,
        move |_: &mut SimRng| LowSensingVariant::new(cfg),
        "lowsensing-variant",
    );
}

/// Step budgets cut runs mid-flight; both engines must stop on the same
/// step with the same partial accounting.
#[test]
fn step_budget_cutoff_bit_identical() {
    let s = scenarios::batch_drain(64).seed(4).limits(Limits {
        max_slot: u64::MAX / 2,
        max_steps: 500,
    });
    assert_identical(
        &s.run_sparse(lsb()),
        &s.run_sparse_reference(lsb()),
        "budget",
    );
}

/// Delays whose absolute wake slot saturates past the representable
/// horizon are "never" in both engines — even with the slot clock opened
/// all the way up, neither engine may process (or park forever) a
/// saturated event.
#[test]
fn saturated_wake_slots_bit_identical() {
    #[derive(Clone)]
    struct FarFuture;
    impl Protocol for FarFuture {
        fn intent(&mut self, _rng: &mut SimRng) -> Intent {
            Intent::Sleep
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            0.0
        }
        fn next_wake(&mut self, _rng: &mut SimRng) -> Option<u64> {
            Some(u64::MAX - 1) // finite, but offset() saturates to NEVER
        }
    }
    impl SparseProtocol for FarFuture {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            false
        }
    }
    let s = Scenario::named("saturated-wakes")
        .arrivals(Trace::new(vec![(0, 2), (10, 1)]))
        .seed(1)
        .limits(Limits {
            max_slot: u64::MAX,
            max_steps: 1_000,
        });
    let fast = s.run_sparse(|_| FarFuture);
    let reference = s.run_sparse_reference(|_| FarFuture);
    assert_identical(&fast, &reference, "saturated-wakes");
    assert_eq!(fast.totals.successes, 0);
    assert_eq!(fast.totals.arrivals, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One registry sweep mixing batch-capable protocols with scalar-only
    /// ones (`PolynomialBackoff` and `CjpMwu` ride the defaulted
    /// fallbacks): whichever path a listener cohort takes, the
    /// calendar-queue engine must stay bit-identical to the heap
    /// reference. Of the batch-capable set, `LowSensing` and
    /// `LowSensingVariant` actually reach their overrides through the
    /// engine's listener cohorts; the oblivious always-send baselines
    /// (`ProbBeb`, `SlottedAloha`, `WindowedBeb`) never listen, so their
    /// overrides are pinned by direct unit tests in `lowsense-baselines`
    /// and these cases regression-test their (shared) scalar path.
    #[test]
    fn mixed_batch_and_scalar_protocols_bit_identical(
        scenario_idx in 0usize..64,
        protocol in 0usize..7,
        seed in 0u64..1_000_000,
    ) {
        let registry = scenarios::registry(32);
        // CJP listens every slot, so cap the horizon to keep the sweep fast;
        // the cap applies to every case for comparability.
        let s = registry[scenario_idx % registry.len()]
            .seeded(seed)
            .until_slot(10_000);
        let what = format!("{} (seed {seed}, protocol {protocol})", s.name());
        match protocol {
            // Batch-capable protocols.
            0 => assert_identical(&s.run_sparse(lsb()), &s.run_sparse_reference(lsb()), &what),
            1 => assert_identical(
                &s.run_sparse(|_| ProbBeb::new(0.25)),
                &s.run_sparse_reference(|_| ProbBeb::new(0.25)),
                &what,
            ),
            2 => assert_identical(
                &s.run_sparse(|_| SlottedAloha::new(0.03)),
                &s.run_sparse_reference(|_| SlottedAloha::new(0.03)),
                &what,
            ),
            3 => assert_identical(
                &s.run_sparse(|rng| WindowedBeb::new(4, 16, rng)),
                &s.run_sparse_reference(|rng| WindowedBeb::new(4, 16, rng)),
                &what,
            ),
            // Scalar-only protocols (defaulted observe4/next_wake4),
            // plus the engine-reachable batched variant below (case 6).
            4 => assert_identical(
                &s.run_sparse(|rng| PolynomialBackoff::new(4, 2, rng)),
                &s.run_sparse_reference(|rng| PolynomialBackoff::new(4, 2, rng)),
                &what,
            ),
            5 => assert_identical(
                &s.run_sparse(|_| CjpMwu::new(CjpConfig::default())),
                &s.run_sparse_reference(|_| CjpMwu::new(CjpConfig::default())),
                &what,
            ),
            _ => {
                let cfg = VariantConfig {
                    update: UpdateRule::Factor(2.0),
                    coupling: Coupling::Independent,
                    ..VariantConfig::paper(0.5, 4.0)
                };
                assert_identical(
                    &s.run_sparse(move |_| LowSensingVariant::new(cfg)),
                    &s.run_sparse_reference(move |_| LowSensingVariant::new(cfg)),
                    &what,
                )
            }
        }
    }
}

/// The channel-model axis under the three-way check: the full registry,
/// run under each alternative [`ChannelModel`], must stay bit-identical
/// across the wheel, the flat ring, and the heap reference. The models
/// change what protocols hear (no-CD collapses collisions into silence)
/// and how the physical clock advances (costly collisions accumulate
/// skew), so this pins that both hooks live in the *shared* loop body and
/// core — not in any engine-specific path one queue could drift away from.
#[test]
fn model_axis_three_way_bit_identical() {
    for model in [
        ChannelModel::NoCollisionDetection,
        ChannelModel::CostlyCollisions { alpha: 0.5 },
    ] {
        for scenario in scenarios::registry(48) {
            // Horizon-capped: full-sensing LSB can escalate forever when
            // no-CD hides collisions, and equivalence only needs bounded
            // identical runs.
            let s = scenario.seeded(31).model(model).until_slot(10_000);
            let what = format!("{} under {}", s.name(), model.label());
            assert_three_way(&s, lsb(), &what);
        }
    }
}

/// Baseline protocols under the alternative models on a jammed batch:
/// sender-only protocols (BEB family) exercise `sender_feedback`, the
/// polynomial ladder exercises the scalar observation path, and the jam
/// mix keeps the no-overhead-for-jams rule of `CostlyCollisions` honest
/// across all three sparse implementations.
#[test]
fn baselines_three_way_bit_identical_under_models() {
    for model in [
        ChannelModel::NoCollisionDetection,
        ChannelModel::CostlyCollisions { alpha: 0.5 },
    ] {
        let s = scenarios::random_jam_batch(48, 0.15)
            .seed(11)
            .model(model)
            .until_slot(5_000);
        assert_three_way(
            &s,
            |rng: &mut SimRng| WindowedBeb::new(4, 16, rng),
            &format!("windowed-beb under {}", model.label()),
        );
        assert_three_way(
            &s,
            |_: &mut SimRng| ProbBeb::new(0.25),
            &format!("prob-beb under {}", model.label()),
        );
        assert_three_way(
            &s,
            |rng: &mut SimRng| PolynomialBackoff::new(4, 2, rng),
            &format!("polynomial under {}", model.label()),
        );
    }
}

/// `totals_only` runs (the benchmark configuration) are equivalent too.
#[test]
fn totals_only_bit_identical() {
    let s = scenarios::random_jam_batch(256, 0.2).totals_only().seed(8);
    assert_identical(
        &s.run_sparse(lsb()),
        &s.run_sparse_reference(lsb()),
        "totals-only",
    );
}

/// The staged gather/scatter path against both oracles, under all three
/// feedback models. 100k stations put the state lane (6.4 MB of 64 B
/// `LowSensing` states) past the staging gate, and the small starting
/// window keeps early slots at thousand-packet participant sets — so the
/// wheel and flat-ring engines run the address-sorted staged path while
/// the heap reference runs its unstaged per-element loop. Bit-identity
/// here is the inverse-permutation argument made executable: staging may
/// only reorder memory traffic, never a draw, an observation, or an
/// accumulation. Horizon-capped: coverage needs the high-fanout prefix,
/// not a full drain.
#[test]
fn staged_high_fanout_100k_three_way_bit_identical() {
    let factory = |_: &mut SimRng| LowSensing::with_window(Params::default(), 64.0);
    // Ternary with full per-packet metrics: the strongest pin (every
    // packet's access counts and latencies must survive the permutation).
    let s = scenarios::high_fanout_batch(100_000, 128).seeded(6);
    assert_three_way(&s, factory, "high-fanout-batch under ternary");
    // The alternative models with totals-only metrics and a shorter
    // horizon: the staged slots still dominate the run, and totals (which
    // fold every contention float in accumulation order) keep the
    // bit-identity bar while the debug-build suite stays fast.
    for model in [
        ChannelModel::NoCollisionDetection,
        ChannelModel::CostlyCollisions { alpha: 0.5 },
    ] {
        let s = scenarios::high_fanout_batch(100_000, 96)
            .totals_only()
            .seeded(6)
            .model(model);
        let what = format!("{} under {}", s.name(), model.label());
        assert_three_way(&s, factory, &what);
    }
}
