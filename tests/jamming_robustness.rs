//! Jamming robustness: `LOW-SENSING BACKOFF` under every adversary in the
//! arsenal, plus the asymmetries the paper predicts between it and
//! exponential backoff.

use lowsense::{LowSensing, Params};
use lowsense_baselines::WindowedBeb;
use lowsense_sim::prelude::*;

fn lsb(seed: u64) -> impl FnMut(&mut SimRng) -> LowSensing {
    let _ = seed;
    move |_rng| LowSensing::new(Params::default())
}

#[test]
fn drains_under_every_bounded_jammer() {
    let n = 200u64;
    let throughputs = [
        run_sparse(&SimConfig::new(1), Batch::new(n), RandomJam::new(0.3), lsb(1), &mut NoHooks),
        run_sparse(&SimConfig::new(2), Batch::new(n), PeriodicBurst::new(16, 4, 0), lsb(2), &mut NoHooks),
        run_sparse(&SimConfig::new(3), Batch::new(n), BudgetedRandomJam::new(0.5, 500), lsb(3), &mut NoHooks),
        run_sparse(&SimConfig::new(4), Batch::new(n), BacklogJam::new(0.6, 10).with_budget(800), lsb(4), &mut NoHooks),
        run_sparse(&SimConfig::new(5), Batch::new(n), ReactiveAny::new(300), lsb(5), &mut NoHooks),
        run_sparse(&SimConfig::new(6), Batch::new(n), ReactiveTargeted::new(PacketId(0), 50), lsb(6), &mut NoHooks),
        run_sparse(&SimConfig::new(7), Batch::new(n), WindowPrefixJam::new(0.2, 32), lsb(7), &mut NoHooks),
    ];
    for (i, r) in throughputs.iter().enumerate() {
        assert!(r.drained(), "jammer {i}: did not drain");
        assert!(
            r.totals.throughput() > 0.08,
            "jammer {i}: throughput {}",
            r.totals.throughput()
        );
    }
}

#[test]
fn jam_credit_keeps_throughput_constant_as_jamming_scales() {
    // (T+J)/S stays in a narrow band as the jam rate rises — Cor 1.4's
    // definition absorbs the adversary's wasted slots.
    //
    // Rates stay below 1/2: at ρ ≥ 1/2 sustained forever, a lone packet's
    // window performs a non-returning multiplicative random walk (noise is
    // at least as likely as silence even on an idle channel), so the run
    // may never drain. The theorems still hold there — J_t → ∞ keeps the
    // implicit throughput Ω(1) — but a drain assertion would be wrong.
    let n = 400u64;
    let mut tps = Vec::new();
    for (i, rho) in [0.0, 0.15, 0.3, 0.4].iter().enumerate() {
        let r = if *rho == 0.0 {
            run_sparse(&SimConfig::new(i as u64), Batch::new(n), NoJam, lsb(0), &mut NoHooks)
        } else {
            run_sparse(
                &SimConfig::new(i as u64),
                Batch::new(n),
                RandomJam::new(*rho),
                lsb(0),
                &mut NoHooks,
            )
        };
        assert!(r.drained());
        tps.push(r.totals.throughput());
    }
    let max = tps.iter().cloned().fold(0.0f64, f64::max);
    let min = tps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 4.0,
        "throughput band too wide under jamming: {tps:?}"
    );
}

#[test]
fn clean_throughput_degrades_gracefully_not_catastrophically() {
    // The paper only guarantees (T+J)/S; the *clean* T/S necessarily decays
    // with the jam rate (jammed slots are lost) and, near ρ = 1/2, the last
    // packet's window excursions stretch S further. "Graceful" here means:
    // averaged over seeds, clean throughput keeps a positive floor at a
    // moderate rate, while the credited throughput stays constant.
    let n = 300u64;
    let seeds = 6u64;
    let mut clean = 0.0;
    let mut credited = 0.0;
    for seed in 0..seeds {
        let r = run_sparse(
            &SimConfig::new(seed),
            Batch::new(n),
            RandomJam::new(0.35),
            lsb(seed),
            &mut NoHooks,
        );
        assert!(r.drained(), "seed {seed} did not drain");
        clean += r.totals.clean_throughput() / seeds as f64;
        credited += r.totals.throughput() / seeds as f64;
    }
    assert!(clean > 0.02, "mean clean throughput {clean}");
    assert!(credited > 0.2, "mean credited throughput {credited}");
}

#[test]
fn reactive_sniper_hurts_beb_exponentially_more_than_lsb() {
    let budget = 10u64;
    let mean = |f: &dyn Fn(u64) -> f64| (0..8).map(f).sum::<f64>() / 8.0;
    let lsb_delay = mean(&|s| {
        run_sparse(
            &SimConfig::new(s),
            Batch::new(1),
            ReactiveTargeted::new(PacketId(0), budget),
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        )
        .totals
        .active_slots as f64
    });
    let beb_delay = mean(&|s| {
        run_sparse(
            &SimConfig::new(s),
            Batch::new(1),
            ReactiveTargeted::new(PacketId(0), budget),
            |rng| WindowedBeb::new(2, 40, rng),
            &mut NoHooks,
        )
        .totals
        .active_slots as f64
    });
    assert!(
        beb_delay > 5.0 * lsb_delay,
        "beb {beb_delay} vs lsb {lsb_delay}"
    );
    // BEB's delay is Θ(2^b): within a generous constant of 2^10.
    let ratio = beb_delay / (1u64 << budget) as f64;
    assert!(
        (0.3..10.0).contains(&ratio),
        "beb delay {beb_delay} not Θ(2^{budget})"
    );
}

#[test]
fn survives_background_noise_plus_reactive_sniper() {
    // The paper's strongest §1.3 adversary shape: ambient random jamming
    // composed with a reactive sniper on one packet.
    let n = 200u64;
    let r = run_sparse(
        &SimConfig::new(11),
        Batch::new(n),
        WithReactive::new(
            RandomJam::new(0.15),
            ReactiveTargeted::new(PacketId(0), 40),
        ),
        lsb(11),
        &mut NoHooks,
    );
    assert!(r.drained());
    assert!(r.totals.throughput() > 0.1, "{}", r.totals.throughput());
    // The sniped packet still completes, paying extra accesses.
    let ps = r.per_packet.as_ref().unwrap();
    assert!(ps[0].departed.is_some());
    let avg = r.access_counts().iter().sum::<u64>() as f64 / n as f64;
    assert!(
        ps[0].accesses() as f64 > avg,
        "target {} should pay above the average {avg}",
        ps[0].accesses()
    );
}

#[test]
fn jammed_slot_counts_are_consistent() {
    let n = 100u64;
    let r = run_sparse(
        &SimConfig::new(10),
        Batch::new(n),
        RandomJam::new(0.25),
        lsb(10),
        &mut NoHooks,
    );
    let t = &r.totals;
    // Partition invariant.
    assert_eq!(
        t.active_slots,
        t.empty_active + t.successes + t.collision_slots + t.jammed_active
    );
    // Jam fraction near the configured rate.
    let frac = t.jammed_active as f64 / t.active_slots as f64;
    assert!((frac - 0.25).abs() < 0.08, "jam fraction {frac}");
}
