//! Jamming robustness: `LOW-SENSING BACKOFF` under every adversary in the
//! arsenal, plus the asymmetries the paper predicts between it and
//! exponential backoff. All workloads are scenario descriptions.

use lowsense_baselines::WindowedBeb;
use lowsense_sim::prelude::*;

use lowsense::lsb;

#[test]
fn drains_under_every_bounded_jammer() {
    let n = 200u64;
    let arsenal: Vec<DynScenario> = vec![
        scenarios::random_jam_batch(n, 0.3).seed(1).boxed(),
        scenarios::burst_jam_batch(n, 16, 4).seed(2).boxed(),
        scenarios::batch_drain(n)
            .jammer(BudgetedRandomJam::new(0.5, 500))
            .seed(3)
            .boxed(),
        scenarios::batch_drain(n)
            .jammer(BacklogJam::new(0.6, 10).with_budget(800))
            .seed(4)
            .boxed(),
        scenarios::reactive_dos_batch(n, 300).seed(5).boxed(),
        scenarios::batch_drain(n)
            .jammer(ReactiveTargeted::new(PacketId(0), 50))
            .seed(6)
            .boxed(),
        scenarios::batch_drain(n)
            .jammer(WindowPrefixJam::new(0.2, 32))
            .seed(7)
            .boxed(),
    ];
    for scenario in &arsenal {
        let r = scenario.run_sparse(lsb());
        assert!(r.drained(), "{}: did not drain", scenario.name());
        assert!(
            r.totals.throughput() > 0.08,
            "{}: throughput {}",
            scenario.name(),
            r.totals.throughput()
        );
    }
}

#[test]
fn jam_credit_keeps_throughput_constant_as_jamming_scales() {
    // (T+J)/S stays in a narrow band as the jam rate rises — Cor 1.4's
    // definition absorbs the adversary's wasted slots.
    //
    // Rates stay below 1/2: at ρ ≥ 1/2 sustained forever, a lone packet's
    // window performs a non-returning multiplicative random walk (noise is
    // at least as likely as silence even on an idle channel), so the run
    // may never drain. The theorems still hold there — J_t → ∞ keeps the
    // implicit throughput Ω(1) — but a drain assertion would be wrong.
    let n = 400u64;
    let mut tps = Vec::new();
    for (i, rho) in [0.0, 0.15, 0.3, 0.4].iter().enumerate() {
        let r = if *rho == 0.0 {
            scenarios::batch_drain(n).seed(i as u64).run_sparse(lsb())
        } else {
            scenarios::random_jam_batch(n, *rho)
                .seed(i as u64)
                .run_sparse(lsb())
        };
        assert!(r.drained());
        tps.push(r.totals.throughput());
    }
    let max = tps.iter().cloned().fold(0.0f64, f64::max);
    let min = tps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 4.0,
        "throughput band too wide under jamming: {tps:?}"
    );
}

#[test]
fn clean_throughput_degrades_gracefully_not_catastrophically() {
    // The paper only guarantees (T+J)/S; the *clean* T/S necessarily decays
    // with the jam rate (jammed slots are lost) and, near ρ = 1/2, the last
    // packet's window excursions stretch S further. "Graceful" here means:
    // averaged over seeds, clean throughput keeps a positive floor at a
    // moderate rate, while the credited throughput stays constant.
    let scenario = scenarios::random_jam_batch(300, 0.35);
    let seeds = 6u64;
    let mut clean = 0.0;
    let mut credited = 0.0;
    for seed in 0..seeds {
        let r = scenario.seeded(seed).run_sparse(lsb());
        assert!(r.drained(), "seed {seed} did not drain");
        clean += r.totals.clean_throughput() / seeds as f64;
        credited += r.totals.throughput() / seeds as f64;
    }
    assert!(clean > 0.02, "mean clean throughput {clean}");
    assert!(credited > 0.2, "mean credited throughput {credited}");
}

#[test]
fn reactive_sniper_hurts_beb_exponentially_more_than_lsb() {
    let budget = 10u64;
    let sniped = scenarios::batch_drain(1).jammer(ReactiveTargeted::new(PacketId(0), budget));
    let mean = |f: &dyn Fn(u64) -> f64| (0..8).map(f).sum::<f64>() / 8.0;
    let lsb_delay = mean(&|s| sniped.seeded(s).run_sparse(lsb()).totals.active_slots as f64);
    let beb_delay = mean(&|s| {
        sniped
            .seeded(s)
            .run_sparse(|rng| WindowedBeb::new(2, 40, rng))
            .totals
            .active_slots as f64
    });
    assert!(
        beb_delay > 5.0 * lsb_delay,
        "beb {beb_delay} vs lsb {lsb_delay}"
    );
    // BEB's delay is Θ(2^b): within a generous constant of 2^10.
    let ratio = beb_delay / (1u64 << budget) as f64;
    assert!(
        (0.3..10.0).contains(&ratio),
        "beb delay {beb_delay} not Θ(2^{budget})"
    );
}

#[test]
fn survives_background_noise_plus_reactive_sniper() {
    // The paper's strongest §1.3 adversary shape: ambient random jamming
    // composed with a reactive sniper on one packet.
    let n = 200u64;
    let r = scenarios::batch_drain(n)
        .jammer(WithReactive::new(
            RandomJam::new(0.15),
            ReactiveTargeted::new(PacketId(0), 40),
        ))
        .seed(11)
        .run_sparse(lsb());
    assert!(r.drained());
    assert!(r.totals.throughput() > 0.1, "{}", r.totals.throughput());
    // The sniped packet still completes, paying extra accesses.
    let ps = r.per_packet.as_ref().unwrap();
    assert!(ps[0].departed.is_some());
    let avg = r.access_counts().iter().sum::<u64>() as f64 / n as f64;
    assert!(
        ps[0].accesses() as f64 > avg,
        "target {} should pay above the average {avg}",
        ps[0].accesses()
    );
}

#[test]
fn jammed_slot_counts_are_consistent() {
    let r = scenarios::random_jam_batch(100, 0.25)
        .seed(10)
        .run_sparse(lsb());
    let t = &r.totals;
    // Partition invariant.
    assert_eq!(
        t.active_slots,
        t.empty_active + t.successes + t.collision_slots + t.jammed_active
    );
    // Jam fraction near the configured rate.
    let frac = t.jammed_active as f64 / t.active_slots as f64;
    assert!((frac - 0.25).abs() < 0.08, "jam fraction {frac}");
}
