//! Pins the quantized window ladder to the arithmetic it replaced.
//!
//! The ladder (PR 6) precomputes per-rung what `LowSensing::recompute`
//! (PR 5) evaluated on the fly after every window change. These tests write
//! that reciprocal-form recompute out **literally, inline** — not by calling
//! `ladder::derive`, which would pin the ladder to itself — and require
//! every reachable rung of every registry ladder to match it bit for bit.
//! Boundary rungs (the `w_min` clamp at the bottom, saturation at the top)
//! and the continuous back-off/back-on orbits get dedicated checks.

use lowsense::{Ladder, LowSensing, Params};
use lowsense_sim::dist::fast_ln;
use lowsense_sim::feedback::{Feedback, Observation};
use lowsense_sim::protocol::Protocol;
use proptest::prelude::*;

/// The PR 5 on-the-fly recompute, transcribed from the pre-ladder
/// `LowSensing::recompute` body: one `fast_ln` of the window, the shared
/// reciprocal `x = 1/(c·ln w)`, listen probability in the direct form,
/// send-given-listen as pure multiplies (`1/(c·ln³w) = x³·c²`), and the
/// three-way guarded wake reciprocal. Returns
/// `(p_listen, p_send_given_listen, inv_ln_q_listen)`.
fn pr5_recompute(c: f64, w: f64) -> (f64, f64, f64) {
    let ln_w = fast_ln(w);
    let x = 1.0 / (c * ln_w);
    let p_listen = (c * ln_w.powi(3) / w).min(1.0);
    let p_send_given_listen = (x * x * x * (c * c)).min(1.0);
    let inv_ln_q_listen = if p_listen <= 0.0 || p_listen >= 1.0 {
        0.0
    } else if p_listen < 1e-8 {
        1.0 / (-p_listen).ln_1p()
    } else {
        1.0 / fast_ln(1.0 - p_listen)
    };
    (p_listen, p_send_given_listen, inv_ln_q_listen)
}

/// The PR 5 update factor `1 + 1/(c·ln w)` for the window at `w`.
fn pr5_factor(c: f64, w: f64) -> f64 {
    1.0 + 1.0 / (c * fast_ln(w))
}

fn assert_ladder_matches_pr5(params: Params, anchor: f64) {
    let ladder = Ladder::build(params, anchor);
    let c = params.c();
    assert!(
        ladder.saturated(),
        "ladder for c={c}, w_min={}, anchor={anchor} hit the rung cap \
         instead of the listen-probability floor",
        params.w_min()
    );
    for (lvl, row) in ladder.rows().iter().enumerate() {
        let (p_listen, p_send, inv_ln_q) = pr5_recompute(c, row.w);
        assert_eq!(
            row.p_listen.to_bits(),
            p_listen.to_bits(),
            "p_listen at rung {lvl} (w={})",
            row.w
        );
        assert_eq!(
            row.p_send_given_listen.to_bits(),
            p_send.to_bits(),
            "p_send_given_listen at rung {lvl} (w={})",
            row.w
        );
        assert_eq!(
            row.inv_ln_q_listen.to_bits(),
            inv_ln_q.to_bits(),
            "inv_ln_q_listen at rung {lvl} (w={})",
            row.w
        );
        // Rung geometry against the PR 5 factors — each orbit checked on
        // its own side of the anchor, because that is where the ladder
        // promises continuity. Above the anchor, rungs are the continuous
        // back-off orbit; below it, the continuous (reciprocal-multiply,
        // floor-clamped) back-on orbit. Cross-orbit steps are the
        // quantization itself and intentionally differ in the last bits.
        let lvl = lvl as u32;
        if lvl >= ladder.anchor_level() && lvl < ladder.top_level() {
            let up = ladder.row(lvl + 1).w;
            assert_eq!(
                up.to_bits(),
                (row.w * pr5_factor(c, row.w)).to_bits(),
                "back-off step at rung {lvl}"
            );
        }
        if lvl < ladder.anchor_level() {
            let up = ladder.row(lvl + 1).w;
            let back_on = 1.0 / pr5_factor(c, up);
            assert_eq!(
                (up * back_on).max(params.w_min()).to_bits(),
                row.w.to_bits(),
                "back-on step at rung {}",
                lvl + 1
            );
        }
    }
}

#[test]
fn registry_ladders_match_the_pr5_recompute_bitwise() {
    // The parameter sets the repo's suites exercise, each at the fresh
    // anchor and at the large anchors the equivalence tests use.
    let registry = [
        (Params::default(), 4.0),
        (Params::default(), 64.0),
        (Params::default(), 1e6),
        (Params::default(), 5e7),
        (Params::new(1.0, 8.0).unwrap(), 8.0),
        (Params::new(1.0, 8.0).unwrap(), 300.0),
        (Params::new(2.0, 4.0).unwrap(), 4.0),
    ];
    for (params, anchor) in registry {
        assert_ladder_matches_pr5(params, anchor);
    }
}

#[test]
fn bottom_rung_is_the_w_min_clamp() {
    // Rung 0 must be *exactly* `w_min` — not one back-on step that happens
    // to land near it — because the clamp `max(w/f, w_min)` produced it.
    for (params, anchor) in [
        (Params::default(), 4.0),
        (Params::default(), 1e5),
        (Params::new(1.0, 8.0).unwrap(), 8_000.0),
    ] {
        let ladder = Ladder::build(params, anchor);
        assert_eq!(ladder.row(0).w.to_bits(), params.w_min().to_bits());
        // And its derived row is the recompute *at* w_min, i.e. the state a
        // freshly injected packet carries.
        let (p_listen, p_send, inv_ln_q) = pr5_recompute(params.c(), params.w_min());
        assert_eq!(ladder.row(0).p_listen.to_bits(), p_listen.to_bits());
        assert_eq!(
            ladder.row(0).p_send_given_listen.to_bits(),
            p_send.to_bits()
        );
        assert_eq!(ladder.row(0).inv_ln_q_listen.to_bits(), inv_ln_q.to_bits());
    }
}

#[test]
fn saturation_rung_is_terminal_and_unobservable() {
    let params = Params::default();
    let ladder = Ladder::build(params, 4.0);
    let top = ladder.row(ladder.top_level());
    // Ascent stopped because listening became unobservable on any simulable
    // horizon: the mean wake gap 1/p_listen exceeds u64::MAX slots.
    assert!(ladder.saturated());
    assert!(1.0 / top.p_listen > u64::MAX as f64);
    // One rung down is still live — the ladder is minimal.
    assert!(1.0 / ladder.row(ladder.top_level() - 1).p_listen <= 1e21);
    // A packet parked on the top rung stays there under noise (bitwise
    // fixed point), and comes back down under silence.
    let mut p = LowSensing::new(params);
    while p.level() < ladder.top_level() {
        p.observe(&obs(Feedback::Noisy));
    }
    let parked = p;
    p.observe(&obs(Feedback::Noisy));
    assert!(p == parked, "noise at the top rung must be a no-op");
    p.observe(&obs(Feedback::Empty));
    assert_eq!(p.level(), ladder.top_level() - 1);
}

#[test]
fn anchors_are_exact_rungs() {
    // `with_window` must report exactly the requested window (the
    // tolerance tests in sparse_equivalence.rs compare send rates against
    // 1/w of these anchors).
    for anchor in [64.0, 1e6, 5e7] {
        let p = LowSensing::with_window(Params::default(), anchor);
        assert_eq!(p.window().to_bits(), anchor.to_bits());
    }
}

fn obs(feedback: Feedback) -> Observation {
    Observation {
        slot: 0,
        feedback,
        sent: false,
        succeeded: false,
    }
}

#[test]
fn pure_backoff_trajectory_is_bitwise_continuous() {
    // A trajectory that only backs off (all-noise) never revisits a rung,
    // so quantization cannot bind: the protocol must report the exact
    // windows the continuous PR 5 update would have produced.
    let params = Params::default();
    let mut p = LowSensing::new(params);
    let mut w = params.w_min();
    for step in 0..200 {
        p.observe(&obs(Feedback::Noisy));
        w *= pr5_factor(params.c(), w);
        assert_eq!(p.window().to_bits(), w.to_bits(), "step {step}");
    }
}

#[test]
fn pure_backon_trajectory_is_bitwise_continuous() {
    // Symmetric check from a high anchor: all-silence descent follows the
    // continuous floor-clamped divide until it parks on w_min.
    let params = Params::default();
    let mut p = LowSensing::with_window(params, 1e6);
    let mut w = 1e6;
    let mut step = 0;
    while w > params.w_min() {
        p.observe(&obs(Feedback::Empty));
        w = (w * (1.0 / pr5_factor(params.c(), w))).max(params.w_min());
        assert_eq!(p.window().to_bits(), w.to_bits(), "step {step}");
        step += 1;
    }
    // Parked on the floor: further silence is a bitwise no-op.
    let parked = p;
    p.observe(&obs(Feedback::Empty));
    assert!(p == parked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every rung of every ladder in the sampled parameter space carries
    /// bit-exactly the values the PR 5 recompute produced for that window.
    #[test]
    fn ladders_match_the_pr5_recompute_across_param_space(
        c in 0.4f64..3.0,
        w_min in 4.0f64..64.0,
        anchor_mult in 1.0f64..1e4,
    ) {
        prop_assume!(c * w_min.ln().powi(3) >= 1.0);
        let params = Params::new(c, w_min).unwrap();
        assert_ladder_matches_pr5(params, w_min * anchor_mult);
    }
}
