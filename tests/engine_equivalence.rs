//! Cross-engine equivalence: dense is the semantic oracle; sparse and
//! grouped must agree with it statistically (they are different exact
//! samplers of the same stochastic process).
//!
//! All workloads come from the scenario registry, so every engine faces the
//! byte-identical run description — including the jammed variants, where
//! the sparse engine's bulk gap accounting and the grouped engine's cohort
//! sampling must both reproduce the dense engine's jam statistics.

use lowsense_baselines::{CjpConfig, CjpMwu, SlottedAloha, WindowedBeb};
use lowsense_sim::prelude::*;

use lowsense::lsb;

const SEEDS: u64 = 10;

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Means across seeds must agree within `tol` relative error.
fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() / a.abs().max(1e-9) < tol,
        "{what}: {a} vs {b}"
    );
}

#[test]
fn lsb_dense_vs_sparse_active_slots_and_energy() {
    let scenario = scenarios::batch_drain(150);
    let dense: Vec<RunResult> = (0..SEEDS)
        .map(|s| scenario.seeded(s).run_dense(lsb()))
        .collect();
    let sparse: Vec<RunResult> = (100..100 + SEEDS)
        .map(|s| scenario.seeded(s).run_sparse(lsb()))
        .collect();
    assert_close(
        mean(dense.iter().map(|r| r.totals.active_slots as f64)),
        mean(sparse.iter().map(|r| r.totals.active_slots as f64)),
        0.2,
        "active slots",
    );
    assert_close(
        mean(dense.iter().map(|r| r.totals.accesses() as f64)),
        mean(sparse.iter().map(|r| r.totals.accesses() as f64)),
        0.2,
        "total accesses",
    );
    assert_close(
        mean(dense.iter().map(|r| r.totals.empty_active as f64)),
        mean(sparse.iter().map(|r| r.totals.empty_active as f64)),
        0.25,
        "empty slots",
    );
}

#[test]
fn lsb_dense_vs_sparse_under_random_jam() {
    let scenario = scenarios::random_jam_batch(100, 0.2);
    let d =
        mean((0..SEEDS).map(|s| scenario.seeded(s).run_dense(lsb()).totals.active_slots as f64));
    let sp = mean(
        (200..200 + SEEDS).map(|s| scenario.seeded(s).run_sparse(lsb()).totals.active_slots as f64),
    );
    assert_close(d, sp, 0.25, "jammed active slots");
}

#[test]
fn lsb_dense_vs_sparse_under_bursty_jam() {
    // Deterministic periodic bursts: besides the makespan, the *jam counts*
    // must agree tightly — the sparse engine reconstructs them from range
    // arithmetic while the dense engine visits every slot.
    let scenario = scenarios::burst_jam_batch(100, 16, 4);
    let dense: Vec<RunResult> = (0..SEEDS)
        .map(|s| scenario.seeded(s).run_dense(lsb()))
        .collect();
    let sparse: Vec<RunResult> = (300..300 + SEEDS)
        .map(|s| scenario.seeded(s).run_sparse(lsb()))
        .collect();
    assert_close(
        mean(dense.iter().map(|r| r.totals.active_slots as f64)),
        mean(sparse.iter().map(|r| r.totals.active_slots as f64)),
        0.25,
        "bursty active slots",
    );
    // Jam fraction is pinned at burst/period = 1/4 by the jammer itself.
    for r in dense.iter().chain(sparse.iter()) {
        let frac = r.totals.jammed_active as f64 / r.totals.active_slots as f64;
        assert!((frac - 0.25).abs() < 0.05, "jam fraction {frac}");
    }
}

#[test]
fn beb_dense_vs_sparse() {
    let scenario = scenarios::batch_drain(100);
    let d = mean((0..SEEDS).map(|s| {
        scenario
            .seeded(s)
            .run_dense(|rng| WindowedBeb::new(2, 20, rng))
            .totals
            .active_slots as f64
    }));
    let sp = mean((300..300 + SEEDS).map(|s| {
        scenario
            .seeded(s)
            .run_sparse(|rng| WindowedBeb::new(2, 20, rng))
            .totals
            .active_slots as f64
    }));
    assert_close(d, sp, 0.25, "beb active slots");
}

#[test]
fn cjp_dense_vs_grouped() {
    let scenario = scenarios::batch_drain(120);
    let d = mean((0..SEEDS).map(|s| {
        scenario
            .seeded(s)
            .run_dense(|_| CjpMwu::new(CjpConfig::default()))
            .totals
            .active_slots as f64
    }));
    let g = mean((400..400 + SEEDS).map(|s| {
        scenario
            .seeded(s)
            .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
            .totals
            .active_slots as f64
    }));
    assert_close(d, g, 0.25, "cjp active slots");
}

#[test]
fn cjp_dense_vs_grouped_under_random_jam() {
    // Grouped-vs-dense agreement must survive jamming: the cohort engine's
    // binomial sender sampling and the dense per-packet coin flips see the
    // same jam process.
    let scenario = scenarios::random_jam_batch(120, 0.2);
    let run_pair = |seed_base: u64, grouped: bool| {
        mean((seed_base..seed_base + SEEDS).map(|s| {
            let r = if grouped {
                scenario
                    .seeded(s)
                    .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
            } else {
                scenario
                    .seeded(s)
                    .run_dense(|_| CjpMwu::new(CjpConfig::default()))
            };
            assert!(r.drained(), "seed {s} did not drain");
            r.totals.active_slots as f64
        }))
    };
    let d = run_pair(0, false);
    let g = run_pair(500, true);
    assert_close(d, g, 0.25, "cjp jammed active slots");
}

#[test]
fn cjp_dense_vs_grouped_under_bursty_jam() {
    let scenario = scenarios::burst_jam_batch(120, 16, 4);
    let stats = |grouped: bool, seed_base: u64| {
        let runs: Vec<RunResult> = (seed_base..seed_base + SEEDS)
            .map(|s| {
                if grouped {
                    scenario
                        .seeded(s)
                        .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
                } else {
                    scenario
                        .seeded(s)
                        .run_dense(|_| CjpMwu::new(CjpConfig::default()))
                }
            })
            .collect();
        (
            mean(runs.iter().map(|r| r.totals.active_slots as f64)),
            mean(runs.iter().map(|r| r.totals.jammed_active as f64)),
        )
    };
    let (d_slots, d_jams) = stats(false, 0);
    let (g_slots, g_jams) = stats(true, 600);
    assert_close(d_slots, g_slots, 0.25, "bursty cjp active slots");
    assert_close(d_jams, g_jams, 0.25, "bursty cjp jam counts");
    // The periodic jammer pins the jam fraction at 1/4 for both engines.
    assert_close(d_jams / d_slots, 0.25, 0.2, "dense jam fraction");
    assert_close(g_jams / g_slots, 0.25, 0.2, "grouped jam fraction");
}

#[test]
fn registry_scenarios_agree_across_sparse_seeds() {
    // Smoke over the whole canned registry: the same description replays
    // identically under the same seed, and totals stay internally
    // consistent for every canonical workload.
    for scenario in scenarios::registry(48) {
        let a = scenario.seeded(9).run_sparse(lsb());
        let b = scenario.seeded(9).run_sparse(lsb());
        assert_eq!(a.totals, b.totals, "{} must replay", scenario.name());
        let t = &a.totals;
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active,
            "{}: slot classes must partition active slots",
            scenario.name()
        );
    }
}

#[test]
fn lone_aloha_packet_latency_matches_closed_form() {
    // One packet sending w.p. p per slot: E[latency] = 1/p exactly.
    let p = 0.05;
    let scenario = scenarios::batch_drain(1);
    for (engine, base) in [("dense", 0u64), ("sparse", 1000)] {
        let lat = mean((base..base + 40).map(|s| {
            let r = if engine == "dense" {
                scenario.seeded(s).run_dense(|_| SlottedAloha::new(p))
            } else {
                scenario.seeded(s).run_sparse(|_| SlottedAloha::new(p))
            };
            r.latencies()[0] as f64
        }));
        assert!(
            (lat - 1.0 / p).abs() / (1.0 / p) < 0.35,
            "{engine}: mean latency {lat} vs {}",
            1.0 / p
        );
    }
}

#[test]
fn sparse_gap_accounting_is_exact_for_deterministic_jammer() {
    // With a lone never-sending packet and a periodic jammer, the sparse
    // engine's bulk gap accounting must be slot-exact.
    #[derive(Clone)]
    struct Mute;
    impl Protocol for Mute {
        fn intent(&mut self, _rng: &mut SimRng) -> Intent {
            Intent::Sleep
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            0.0
        }
        fn next_wake(&mut self, _rng: &mut SimRng) -> Option<u64> {
            None
        }
    }
    impl SparseProtocol for Mute {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            false
        }
    }
    let r = Scenario::named("mute-under-periodic-jam")
        .arrivals(Batch::new(1))
        .jammer(PeriodicBurst::new(7, 2, 3))
        .seed(1)
        .until_slot(9_999)
        .run_sparse(|_| Mute);
    assert_eq!(r.totals.active_slots, 10_000);
    // Exact count of slots with (t - 3) mod 7 < 2 in [0, 10_000).
    let expect = (0u64..10_000).filter(|t| (t + 7 - 3) % 7 < 2).count() as u64;
    assert_eq!(r.totals.jammed_active, expect);
}
