//! Cross-engine equivalence: dense is the semantic oracle; sparse and
//! grouped must agree with it statistically (they are different exact
//! samplers of the same stochastic process).

use lowsense::{LowSensing, Params};
use lowsense_baselines::{CjpConfig, CjpMwu, SlottedAloha, WindowedBeb};
use lowsense_sim::prelude::*;

const SEEDS: u64 = 10;

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Means across seeds must agree within `tol` relative error.
fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() / a.abs().max(1e-9) < tol,
        "{what}: {a} vs {b}"
    );
}

#[test]
fn lsb_dense_vs_sparse_active_slots_and_energy() {
    let n = 150u64;
    let dense: Vec<RunResult> = (0..SEEDS)
        .map(|s| {
            run_dense(&SimConfig::new(s), Batch::new(n), NoJam, |_| {
                LowSensing::new(Params::default())
            }, &mut NoHooks)
        })
        .collect();
    let sparse: Vec<RunResult> = (100..100 + SEEDS)
        .map(|s| {
            run_sparse(&SimConfig::new(s), Batch::new(n), NoJam, |_| {
                LowSensing::new(Params::default())
            }, &mut NoHooks)
        })
        .collect();
    assert_close(
        mean(dense.iter().map(|r| r.totals.active_slots as f64)),
        mean(sparse.iter().map(|r| r.totals.active_slots as f64)),
        0.2,
        "active slots",
    );
    assert_close(
        mean(dense.iter().map(|r| r.totals.accesses() as f64)),
        mean(sparse.iter().map(|r| r.totals.accesses() as f64)),
        0.2,
        "total accesses",
    );
    assert_close(
        mean(dense.iter().map(|r| r.totals.empty_active as f64)),
        mean(sparse.iter().map(|r| r.totals.empty_active as f64)),
        0.25,
        "empty slots",
    );
}

#[test]
fn lsb_dense_vs_sparse_under_jamming() {
    let n = 100u64;
    let d = mean((0..SEEDS).map(|s| {
        run_dense(
            &SimConfig::new(s),
            Batch::new(n),
            RandomJam::new(0.2),
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        )
        .totals
        .active_slots as f64
    }));
    let sp = mean((200..200 + SEEDS).map(|s| {
        run_sparse(
            &SimConfig::new(s),
            Batch::new(n),
            RandomJam::new(0.2),
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        )
        .totals
        .active_slots as f64
    }));
    assert_close(d, sp, 0.25, "jammed active slots");
}

#[test]
fn beb_dense_vs_sparse() {
    let n = 100u64;
    let d = mean((0..SEEDS).map(|s| {
        run_dense(&SimConfig::new(s), Batch::new(n), NoJam, |rng| {
            WindowedBeb::new(2, 20, rng)
        }, &mut NoHooks)
        .totals
        .active_slots as f64
    }));
    let sp = mean((300..300 + SEEDS).map(|s| {
        run_sparse(&SimConfig::new(s), Batch::new(n), NoJam, |rng| {
            WindowedBeb::new(2, 20, rng)
        }, &mut NoHooks)
        .totals
        .active_slots as f64
    }));
    assert_close(d, sp, 0.25, "beb active slots");
}

#[test]
fn cjp_dense_vs_grouped() {
    let n = 120u64;
    let d = mean((0..SEEDS).map(|s| {
        run_dense(&SimConfig::new(s), Batch::new(n), NoJam, |_| {
            CjpMwu::new(CjpConfig::default())
        }, &mut NoHooks)
        .totals
        .active_slots as f64
    }));
    let g = mean((400..400 + SEEDS).map(|s| {
        run_grouped(&SimConfig::new(s), Batch::new(n), NoJam, |_| {
            CjpMwu::new(CjpConfig::default())
        })
        .totals
        .active_slots as f64
    }));
    assert_close(d, g, 0.25, "cjp active slots");
}

#[test]
fn lone_aloha_packet_latency_matches_closed_form() {
    // One packet sending w.p. p per slot: E[latency] = 1/p exactly.
    let p = 0.05;
    for (engine, base) in [("dense", 0u64), ("sparse", 1000)] {
        let lat = mean((base..base + 40).map(|s| {
            let r = if engine == "dense" {
                run_dense(&SimConfig::new(s), Batch::new(1), NoJam, |_| {
                    SlottedAloha::new(p)
                }, &mut NoHooks)
            } else {
                run_sparse(&SimConfig::new(s), Batch::new(1), NoJam, |_| {
                    SlottedAloha::new(p)
                }, &mut NoHooks)
            };
            r.latencies()[0] as f64
        }));
        assert!(
            (lat - 1.0 / p).abs() / (1.0 / p) < 0.35,
            "{engine}: mean latency {lat} vs {}",
            1.0 / p
        );
    }
}

#[test]
fn sparse_gap_accounting_is_exact_for_deterministic_jammer() {
    // With a lone never-sending packet and a periodic jammer, the sparse
    // engine's bulk gap accounting must be slot-exact.
    #[derive(Clone)]
    struct Mute;
    impl Protocol for Mute {
        fn intent(&mut self, _rng: &mut SimRng) -> Intent {
            Intent::Sleep
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            0.0
        }
    }
    impl SparseProtocol for Mute {
        fn next_access_delay(&mut self, _rng: &mut SimRng) -> u64 {
            u64::MAX
        }
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            false
        }
    }
    let cfg = SimConfig::new(1).limits(Limits::until_slot(9_999));
    let r = run_sparse(
        &cfg,
        Batch::new(1),
        PeriodicBurst::new(7, 2, 3),
        |_| Mute,
        &mut NoHooks,
    );
    assert_eq!(r.totals.active_slots, 10_000);
    // Exact count of slots with (t - 3) mod 7 < 2 in [0, 10_000).
    let expect = (0u64..10_000).filter(|t| (t + 7 - 3) % 7 < 2).count() as u64;
    assert_eq!(r.totals.jammed_active, expect);
}
