//! Potential-function invariants: the incremental tracker must agree with
//! brute-force recomputation at all times, and the interval recorder must
//! tile the execution exactly.

use lowsense::{IntervalRecorder, LowSensing, Params, PotentialTracker};
use lowsense_sim::feedback::SlotOutcome;
use lowsense_sim::hooks::Hooks;
use lowsense_sim::packet::PacketId;
use lowsense_sim::prelude::*;
use lowsense_sim::time::Slot;

/// Runs the incremental tracker and an exhaustive oracle side by side,
/// cross-checking every few slots.
struct OracleCheck {
    tracker: PotentialTracker,
    windows: Vec<Option<f64>>,
    slots_seen: u64,
    checks: u64,
}

impl OracleCheck {
    fn new() -> Self {
        OracleCheck {
            tracker: PotentialTracker::default(),
            windows: Vec::new(),
            slots_seen: 0,
            checks: 0,
        }
    }

    fn verify(&mut self) {
        self.checks += 1;
        let live: Vec<f64> = self.windows.iter().flatten().copied().collect();
        let n = live.len() as u64;
        let h: f64 = live.iter().map(|w| 1.0 / w.ln()).sum();
        let c: f64 = live.iter().map(|w| 1.0 / w).sum();
        let wmax = live.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(self.tracker.packets(), n, "N mismatch");
        assert!((self.tracker.h() - h).abs() < 1e-6, "H mismatch");
        assert!(
            (self.tracker.contention() - c).abs() < 1e-6,
            "C mismatch: {} vs {}",
            self.tracker.contention(),
            c
        );
        if n > 0 {
            assert_eq!(self.tracker.w_max(), Some(wmax), "w_max mismatch");
        } else {
            assert_eq!(self.tracker.w_max(), None);
        }
    }
}

impl Hooks<LowSensing> for OracleCheck {
    fn on_inject(&mut self, t: Slot, id: PacketId, s: &LowSensing) {
        self.tracker.on_inject(t, id, s);
        if self.windows.len() <= id.index() {
            self.windows.resize(id.index() + 1, None);
        }
        self.windows[id.index()] = Some(s.window());
    }
    fn on_depart(&mut self, t: Slot, id: PacketId, s: &LowSensing) {
        self.tracker.on_depart(t, id, s);
        self.windows[id.index()] = None;
    }
    fn on_observe(&mut self, t: Slot, id: PacketId, b: &LowSensing, a: &LowSensing) {
        self.tracker.on_observe(t, id, b, a);
        self.windows[id.index()] = Some(a.window());
    }
    fn on_slot(&mut self, t: Slot, o: &SlotOutcome) {
        self.tracker.on_slot(t, o);
        self.slots_seen += 1;
        if self.slots_seen.is_multiple_of(37) {
            self.verify();
        }
    }
    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.tracker.on_gap(from, to, jammed);
    }
}

#[test]
fn incremental_tracker_matches_oracle_throughout_run() {
    let mut oracle = OracleCheck::new();
    let r = scenarios::random_jam_batch(400, 0.1)
        .seed(1)
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut oracle);
    assert!(r.drained());
    oracle.verify();
    assert!(
        oracle.checks > 20,
        "oracle barely exercised: {}",
        oracle.checks
    );
    assert!(oracle.tracker.phi().abs() < 1e-9);
}

#[test]
fn oracle_holds_on_dense_engine_too() {
    let mut oracle = OracleCheck::new();
    let r = scenarios::batch_drain(150)
        .seed(2)
        .run_dense_hooked(|_| LowSensing::new(Params::default()), &mut oracle);
    assert!(r.drained());
    oracle.verify();
}

#[test]
fn intervals_tile_the_active_slots_exactly() {
    let mut rec = IntervalRecorder::new(1.0);
    let r = scenarios::random_jam_batch(600, 0.05)
        .seed(3)
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut rec);
    assert!(r.drained());
    let total_len: u64 = rec.records().iter().map(|iv| iv.len).sum();
    assert_eq!(total_len, r.totals.active_slots, "interval tiling");
    // Jams observed by intervals equal the run's jam count.
    let total_jams: u64 = rec.records().iter().map(|iv| iv.jams).sum();
    assert_eq!(total_jams, r.totals.jammed_active, "jam attribution");
    // Arrivals other than the opening batch land inside intervals.
    let total_arrivals: u64 = rec.records().iter().map(|iv| iv.arrivals).sum();
    assert_eq!(
        total_arrivals, 0,
        "batch arrives at the first interval's start"
    );
    // The last interval ends with the drain: Φ = 0.
    let last = rec.records().last().unwrap();
    assert!(last.drained);
    assert!(last.phi_end.abs() < 1e-9);
}

#[test]
fn total_potential_drop_matches_start_minus_end() {
    let mut rec = IntervalRecorder::new(1.0);
    let r = scenarios::batch_drain(300)
        .seed(4)
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut rec);
    assert!(r.drained());
    // Interval deltas telescope: Σ ΔΦ ≈ Φ(end) − Φ(start) = −Φ(start).
    // Boundary Φ samples are taken at slot starts (see intervals.rs docs),
    // so each of the k interior boundaries can slip by one slot's worth of
    // Φ change — tolerate O(k), which is ≪ Φ(start). Early boundaries land
    // while hundreds of packets sit near w_min, where a single slot moves Φ
    // by several units, so the per-boundary allowance is a few, not one.
    let sum: f64 = rec.records().iter().map(|iv| iv.delta_phi()).sum();
    let start = rec.records().first().unwrap().phi_start;
    let slack = 3.0 * rec.records().len() as f64;
    assert!(
        (sum + start).abs() < slack,
        "telescoping failed: Σ={sum}, Φ(0)={start}, slack={slack}"
    );
    // The drain itself is exact: the final record ends at Φ = 0.
    assert!(rec.records().last().unwrap().phi_end.abs() < 1e-9);
}

#[test]
fn regime_occupancy_partitions_active_slots() {
    let mut tracker = PotentialTracker::default();
    let r = scenarios::batch_drain(500)
        .seed(5)
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut tracker);
    assert!(r.drained());
    assert_eq!(tracker.occupancy().total(), r.totals.active_slots);
}
