//! Observability is out-of-band: attaching the full telemetry stack — the
//! flight recorder's periodic sampler plus its stall detector — to a sparse
//! run must leave the `RunResult` **bit-identical** to the bare run, for
//! every registry scenario under every channel model. The sampler reads only
//! already-final accounting state after a slot resolves; it draws no
//! randomness and reorders nothing, so equality here is exact, not
//! statistical.
//!
//! The suite has three layers:
//!
//! 1. **On/off equivalence** — every `(registry scenario, channel model)`
//!    combination is run twice, bare and with a [`FlightRecorder`]
//!    attached, and the full-result FNV hashes (totals, per-packet table,
//!    series, all f64s by bit pattern) must agree combo by combo.
//! 2. **Pinned grand hash** — the fold of all those per-combo hashes is
//!    pinned to a recorded constant, so the *runs themselves* cannot drift
//!    silently under cover of "both sides changed together".
//! 3. **Stall detection on real runs** — the recorder flags the no-CD
//!    low-sensing livelock (the PR 8 `nocd_batch` collapse) with a
//!    collision-dominated diagnosis naming the Jiang–Zheng channel, and
//!    stays silent on a healthy draining batch.

use lowsense::{LowSensing, Params};
use lowsense_obs::{FlightRecorder, StallConfig, StallDetector, StallKind};
use lowsense_sim::feedback::ChannelModel;
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::{scenarios, DynScenario};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Folds every field of a [`RunResult`] — counters, the per-packet table,
/// the trajectory series, floats by bit pattern — into one FNV-1a word.
/// Two results hash equal iff they are bit-identical.
fn result_hash(r: &RunResult) -> u64 {
    let mut h = mix(FNV_OFFSET, r.seed);
    let t = &r.totals;
    for v in [
        t.arrivals,
        t.successes,
        t.active_slots,
        t.jammed_active,
        t.empty_active,
        t.collision_slots,
        t.sends,
        t.listens,
        t.max_backlog,
        t.last_slot,
        t.overhead_slots,
    ] {
        h = mix(h, v);
    }
    match &r.per_packet {
        None => h = mix(h, u64::MAX),
        Some(ps) => {
            h = mix(h, ps.len() as u64);
            for p in ps {
                h = mix(h, p.injected);
                h = mix(h, p.departed.map_or(u64::MAX, |d| d));
                h = mix(h, ((p.sends as u64) << 32) | p.listens as u64);
            }
        }
    }
    h = mix(h, r.series.len() as u64);
    for s in &r.series {
        for v in [
            s.slot,
            s.active_slots,
            s.arrivals,
            s.jammed_active,
            s.backlog,
            s.sends,
            s.listens,
            s.overhead_slots,
            s.contention.to_bits(),
        ] {
            h = mix(h, v);
        }
    }
    h
}

/// The registry size the grid runs at, and the uniform horizon cap. The cap
/// matters: forcing `NoCollisionDetection` onto arrival-bounded scenarios
/// puts `LowSensing` into the Jiang–Zheng livelock, which never terminates
/// on its own.
const N: u64 = 24;
const HORIZON: u64 = 16_384;

/// Every `(registry entry, channel model)` cell of the equivalence grid,
/// horizon-capped and seeded identically on both sides.
fn grid() -> Vec<(DynScenario, &'static str)> {
    let models = [
        (ChannelModel::Ternary, "ternary"),
        (ChannelModel::NoCollisionDetection, "no-cd"),
        (ChannelModel::CostlyCollisions { alpha: 0.5 }, "costly"),
    ];
    let mut cells = Vec::new();
    for scenario in scenarios::registry(N) {
        for (model, tag) in models {
            cells.push((scenario.seeded(7).model(model).until_slot(HORIZON), tag));
        }
    }
    cells
}

fn bare_run(s: &DynScenario) -> RunResult {
    s.run_sparse(|_| LowSensing::new(Params::default()))
}

fn recorded_run(s: &DynScenario, rec: &mut FlightRecorder) -> RunResult {
    s.run_sparse_hooked(|_| LowSensing::new(Params::default()), rec)
}

/// Layer 1: telemetry on vs off, combo by combo. Any inequality is the
/// recorder perturbing the simulation — the one thing it must never do.
#[test]
fn flight_recorder_never_perturbs_any_registry_run() {
    let mut sampled = 0u64;
    for (scenario, tag) in grid() {
        let off = bare_run(&scenario);
        let mut rec = FlightRecorder::new(scenario.name(), 64, 256);
        let on = recorded_run(&scenario, &mut rec);
        assert_eq!(
            result_hash(&off),
            result_hash(&on),
            "{} [{tag}]: attaching the flight recorder changed the run",
            scenario.name()
        );
        sampled += rec.samples().len() as u64 + rec.dropped();
    }
    // Equivalence must not be vacuous: the recorder really was sampling.
    assert!(sampled > 0, "no combo produced a single flight sample");
}

/// Layer 2: the grand fold of every per-combo hash, pinned. If this moves
/// without an intentional engine/protocol change, the runs drifted.
#[test]
fn equivalence_grid_grand_hash_is_pinned() {
    let mut grand = FNV_OFFSET;
    for (scenario, _) in grid() {
        grand = mix(grand, result_hash(&bare_run(&scenario)));
    }
    assert_eq!(
        grand, GRAND_HASH,
        "observability equivalence grid drifted (got 0x{grand:016x}); \
         if the engine or LowSensing changed intentionally, re-pin"
    );
}

/// Recorded from the grid above (registry n=24, seed 7, horizon 16384).
const GRAND_HASH: u64 = 0x2f4aa5e23a14763a;

/// Layer 3a: the PR 8 collapse, observed live. `LowSensing` under the
/// no-CD channel reads collisions as silence, holds its window small, and
/// collides forever; the stall detector must flag the stretch as
/// collision-dominated and the rendered diagnosis must name the channel.
#[test]
fn stall_detector_flags_nocd_lsb_livelock() {
    let scenario = scenarios::nocd_batch(64).until_slot(64 * 200).seeded(3);
    let mut rec = FlightRecorder::new("nocd-livelock", 16, 4096).with_detector(StallDetector::new(
        StallConfig {
            window: 512,
            dominance: 0.9,
        },
    ));
    let result = scenario
        .boxed()
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut rec);
    assert!(!result.drained(), "nocd_batch unexpectedly drained");
    assert!(
        !rec.stalls().is_empty(),
        "no stall flagged on the no-CD livelock run"
    );
    let stall = &rec.stalls()[0];
    assert_eq!(stall.kind, StallKind::CollisionDominated);
    let diagnosis = stall.diagnosis();
    assert!(
        diagnosis.contains("2111.06650"),
        "diagnosis does not name the Jiang-Zheng no-CD channel: {diagnosis}"
    );
    // The exported flight log carries the stall record end to end.
    let jsonl = rec.to_jsonl();
    assert!(jsonl.contains("\"t\":\"stall\""));
    assert!(jsonl.contains("collision-dominated"));
}

/// Layer 3b: no false positives on a healthy drain — same detector
/// settings, a scenario that empties its backlog.
#[test]
fn stall_detector_silent_on_draining_batch() {
    let scenario = scenarios::batch_drain(64).seeded(3);
    let mut rec =
        FlightRecorder::new("drain", 16, 4096).with_detector(StallDetector::new(StallConfig {
            window: 512,
            dominance: 0.9,
        }));
    let result = scenario
        .boxed()
        .run_sparse_hooked(|_| LowSensing::new(Params::default()), &mut rec);
    assert!(result.drained(), "batch_drain failed to drain");
    assert!(
        rec.stalls().is_empty(),
        "false-positive stall on a draining run: {:?}",
        rec.stalls()[0].diagnosis()
    );
}
