//! Adversarial-queuing stability (Corollary 1.5): bounded backlog at every
//! placement, invariant to the horizon, across granularities.

use lowsense::{LowSensing, Params};
use lowsense_sim::prelude::*;

fn run(rate: f64, s: u64, placement: Placement, horizon: u64, seed: u64) -> RunResult {
    scenarios::adversarial_queuing(rate, s, placement)
        .until_slot(horizon)
        .totals_only()
        .seed(seed)
        .run_sparse(|_| LowSensing::new(Params::default()))
}

#[test]
fn backlog_bounded_for_every_placement() {
    let s = 128u64;
    for placement in [Placement::Front, Placement::Spread, Placement::Random] {
        let r = run(0.1, s, placement, 150 * s, 1);
        assert!(
            r.totals.max_backlog < 8 * s,
            "{placement:?}: max backlog {} >> S={s}",
            r.totals.max_backlog
        );
        // The system keeps up: deliveries track arrivals.
        assert!(
            r.totals.successes as f64 > 0.8 * r.totals.arrivals as f64,
            "{placement:?}: fell behind ({} of {})",
            r.totals.successes,
            r.totals.arrivals
        );
    }
}

#[test]
fn backlog_does_not_grow_with_horizon() {
    // Stability: doubling the stream length must not move the max backlog.
    let s = 128u64;
    let short = run(0.12, s, Placement::Front, 100 * s, 2);
    let long = run(0.12, s, Placement::Front, 400 * s, 2);
    assert!(
        long.totals.max_backlog <= 3 * short.totals.max_backlog.max(s),
        "backlog grew with time: {} → {}",
        short.totals.max_backlog,
        long.totals.max_backlog
    );
}

#[test]
fn backlog_scales_with_granularity_not_above() {
    let mut ratios = Vec::new();
    for &s in &[64u64, 256, 1024] {
        let r = run(0.1, s, Placement::Front, 120 * s, 3);
        ratios.push(r.totals.max_backlog as f64 / s as f64);
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(max < 10.0, "backlog/S ratios {ratios:?}");
}

#[test]
fn with_joint_jam_budget_system_remains_stable() {
    let s = 128u64;
    let horizon = 150 * s;
    let r = scenarios::queuing_jammed(0.08, 0.05, s)
        .until_slot(horizon)
        .seed(4)
        .run_sparse(|_| LowSensing::new(Params::default()));
    assert!(
        r.totals.max_backlog < 8 * s,
        "max backlog {}",
        r.totals.max_backlog
    );
    assert!(
        r.totals.implicit_throughput() > 0.1,
        "implicit throughput {}",
        r.totals.implicit_throughput()
    );
}

#[test]
fn higher_rate_still_stable_at_moderate_lambda() {
    // λ = 0.2 (twice the experiments' default) is still far below the
    // algorithm's saturation point.
    let s = 128u64;
    let r = run(0.2, s, Placement::Front, 150 * s, 5);
    assert!(
        r.totals.max_backlog < 12 * s,
        "max backlog {}",
        r.totals.max_backlog
    );
}
