//! Energy-bound checks distilled from the T4–T9 experiments, runnable as
//! fast regression tests.

use lowsense::theory;
use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_sim::prelude::*;

use lowsense::lsb;

#[test]
fn max_accesses_within_ln4_envelope() {
    for &(n, seed) in &[(256u64, 1u64), (1024, 2), (4096, 3)] {
        let r = scenarios::batch_drain(n).seed(seed).run_sparse(lsb());
        let max = *r.access_counts().iter().max().unwrap() as f64;
        let bound = theory::energy_bound_finite(n, 0);
        assert!(
            max < bound,
            "N={n}: max accesses {max} exceeds ln⁴ envelope {bound}"
        );
    }
}

#[test]
fn energy_growth_is_strongly_sublinear() {
    let mean_at = |n: u64, seed: u64| {
        let r = scenarios::batch_drain(n).seed(seed).run_sparse(lsb());
        let counts = r.access_counts();
        counts.iter().sum::<u64>() as f64 / counts.len() as f64
    };
    let small = mean_at(512, 1);
    let large = mean_at(8192, 2);
    // 16× more packets, energy grows ≪ 16× (measured ≈ 2.5–3×).
    assert!(
        large / small < 6.0,
        "energy grew {}× over a 16× input growth",
        large / small
    );
}

#[test]
fn sends_are_nearly_constant_listens_carry_the_polylog() {
    let r = scenarios::batch_drain(4096).seed(3).run_sparse(lsb());
    let ps = r.per_packet.as_ref().unwrap();
    let sends = ps.iter().map(|p| p.sends as f64).sum::<f64>() / ps.len() as f64;
    let listens = ps.iter().map(|p| p.listens as f64).sum::<f64>() / ps.len() as f64;
    assert!(
        sends < 10.0,
        "mean sends {sends} should be a small constant"
    );
    assert!(listens > sends, "listening dominates sending");
}

#[test]
fn cjp_pays_linear_listening_energy() {
    let energy = |n: u64| {
        let r = scenarios::batch_drain(n)
            .seed(1)
            .run_grouped(|_| CjpMwu::new(CjpConfig::default()));
        let counts = r.access_counts();
        counts.iter().sum::<u64>() as f64 / counts.len() as f64
    };
    let (small, large) = (energy(256), energy(4096));
    // CJP mean accesses ≈ mean lifetime ≈ Θ(N): 16× input ⇒ ≈ 8–16×.
    assert!(
        large / small > 6.0,
        "CJP energy should scale ~linearly: {small} → {large}"
    );
}

#[test]
fn reactive_jamming_leaves_population_average_unmoved() {
    let avg_with_budget = |j: u64| {
        let r = scenarios::batch_drain(1024)
            .jammer(ReactiveTargeted::new(PacketId(0), j))
            .seed(7)
            .run_sparse(lsb());
        let counts = r.access_counts();
        counts.iter().sum::<u64>() as f64 / counts.len() as f64
    };
    let clean = avg_with_budget(0);
    let jammed = avg_with_budget(128);
    assert!(
        (jammed - clean).abs() / clean < 0.25,
        "population average moved: {clean} → {jammed}"
    );
}

#[test]
fn target_accesses_grow_with_reactive_budget() {
    let target_accesses = |j: u64, seed: u64| {
        let r = scenarios::batch_drain(512)
            .jammer(ReactiveTargeted::new(PacketId(0), j))
            .seed(seed)
            .run_sparse(lsb());
        r.per_packet.as_ref().unwrap()[0].accesses() as f64
    };
    let mean = |j: u64| (0..6).map(|s| target_accesses(j, s)).sum::<f64>() / 6.0;
    let calm = mean(0);
    let sniped = mean(128);
    assert!(
        sniped > 1.5 * calm,
        "target should pay for the jams: {calm} → {sniped}"
    );
    // …but stays within the paper's (J+1)·polylog budget.
    let bound = theory::energy_bound_reactive(512, 128);
    assert!(
        sniped < bound,
        "target accesses {sniped} exceed bound {bound}"
    );
}
