//! Pre-refactor recordings of the ternary observation stream.
//!
//! The pinned hashes below were captured from the engines **before** the
//! channel model became a first-class `FeedbackModel` axis, by folding
//! every [`Observation`] delivered to any packet (slot, feedback, sent,
//! succeeded — in delivery order) into one FNV-1a accumulator per run.
//! The `Ternary` model must reproduce this stream bit for bit: any drift
//! here means the refactor changed what protocols perceive, even if the
//! aggregate `RunResult`s still happened to agree.
//!
//! Two layers of pinning:
//!
//! 1. **Recorded streams** — the tables below, checked by scenario *name*
//!    against the registry (the registry has since grown model-variant
//!    entries appended at the end; the original entries are unchanged).
//! 2. **Mapping replica** — a proptest holds `Ternary`'s listener and
//!    sender mappings to an inline copy of the pre-refactor code, where a
//!    single `outcome.feedback()` value served both roles and no outcome
//!    dilated the clock. Together with layer 1 this pins the whole
//!    observation stream: the mapping is the old mapping, and the streams
//!    it produces are the old streams.

use std::cell::RefCell;
use std::rc::Rc;

use lowsense::{LowSensing, Params};
use lowsense_baselines::WindowedBeb;
use lowsense_sim::feedback::{
    resolve_slot, Feedback, FeedbackModel, Intent, Observation, SlotOutcome, Ternary,
};
use lowsense_sim::packet::PacketId;
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::{scenarios, DynScenario};
use proptest::prelude::*;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Encodes one observation exactly as the recording harness did:
/// slot, the ternary feedback as 0/1/2, then the sent/succeeded bits.
fn encode(obs: &Observation) -> u64 {
    let fb = match obs.feedback {
        Feedback::Empty => 0u64,
        Feedback::Success => 1,
        Feedback::Noisy => 2,
    };
    mix(
        mix(mix(FNV_OFFSET, obs.slot), fb),
        ((obs.sent as u64) << 1) | obs.succeeded as u64,
    )
}

/// A transparent wrapper that folds every delivered observation into a
/// shared accumulator, then forwards it to the wrapped protocol. It adds
/// no randomness and relies on the default batched surface (four scalar
/// calls), which the batch contract pins bit-identical to any override.
#[derive(Clone)]
struct Tap<P> {
    inner: P,
    log: Rc<RefCell<u64>>,
}

impl<P: Protocol> Protocol for Tap<P> {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        self.inner.intent(rng)
    }
    fn observe(&mut self, obs: &Observation) {
        let mut h = self.log.borrow_mut();
        *h = mix(*h, encode(obs));
        self.inner.observe(obs);
    }
    fn send_probability(&self) -> f64 {
        self.inner.send_probability()
    }
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        self.inner.next_wake(rng)
    }
}

impl<P: SparseProtocol> SparseProtocol for Tap<P> {
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        self.inner.send_on_access(rng)
    }
}

/// Observation-stream hash of one sparse run of `Tap<LowSensing>`.
fn lsb_sparse_hash(scenario: &DynScenario, seed: u64) -> u64 {
    let log = Rc::new(RefCell::new(FNV_OFFSET));
    let sink = log.clone();
    let _ = scenario.seeded(seed).run_sparse(move |_| Tap {
        inner: LowSensing::new(Params::default()),
        log: sink.clone(),
    });
    let h = *log.borrow();
    h
}

/// Observation-stream hash of one dense run of `Tap<LowSensing>`.
fn lsb_dense_hash(scenario: &DynScenario, seed: u64) -> u64 {
    let log = Rc::new(RefCell::new(FNV_OFFSET));
    let sink = log.clone();
    let _ = scenario.seeded(seed).run_dense(move |_| Tap {
        inner: LowSensing::new(Params::default()),
        log: sink.clone(),
    });
    let h = *log.borrow();
    h
}

/// Observation-stream hash of one sparse run of `Tap<WindowedBeb>` —
/// a sender-only stream (BEB never listens), covering the sender
/// observation path in isolation.
fn beb_sparse_hash(scenario: &DynScenario, seed: u64) -> u64 {
    let log = Rc::new(RefCell::new(FNV_OFFSET));
    let sink = log.clone();
    let _ = scenario.seeded(seed).run_sparse(move |rng| Tap {
        inner: WindowedBeb::new(2, 16, rng),
        log: sink.clone(),
    });
    let h = *log.borrow();
    h
}

/// The registry size the recordings were taken at.
const N: u64 = 48;

/// Sparse engine, `LowSensing`, every pre-refactor registry scenario,
/// seeds 1 and 2. Captured at the commit before `FeedbackModel` existed.
const SPARSE_LSB: &[(&str, u64, u64)] = &[
    ("batch-drain(n=48)", 1, 0xb623282b0fe39fcf),
    ("batch-drain(n=48)", 2, 0x97591f4d8f1763ec),
    ("random-jam-batch(n=48,rho=0.2)", 1, 0xddd1a69884057b72),
    ("random-jam-batch(n=48,rho=0.2)", 2, 0xbc5c02d5cbedf0bb),
    ("burst-jam-batch(n=48,4/16)", 1, 0x90fcedd6d7beaf07),
    ("burst-jam-batch(n=48,4/16)", 2, 0xf006b9054eb43d52),
    ("reactive-dos-batch(n=48,budget=12)", 1, 0xe03fcf9afdd156f2),
    ("reactive-dos-batch(n=48,budget=12)", 2, 0x474802be906a4671),
    ("poisson-stream(rate=0.05,total=48)", 1, 0x519d475e6c1993f0),
    ("poisson-stream(rate=0.05,total=48)", 2, 0x1ed34fcdfe4ee1ea),
    (
        "bernoulli-stream(rate=0.02,total=48)",
        1,
        0x7fd3586bd16aeb67,
    ),
    (
        "bernoulli-stream(rate=0.02,total=48)",
        2,
        0x62abe3e427c6a15b,
    ),
    (
        "adversarial-queuing(lambda=0.1,S=128,Front)",
        1,
        0xd18ac357bb5c9cbc,
    ),
    (
        "adversarial-queuing(lambda=0.1,S=128,Front)",
        2,
        0xb3b99cf0b8703700,
    ),
    (
        "queuing-jammed(arr=0.08,jam=0.05,S=128)",
        1,
        0x5c7fe51425bc9d85,
    ),
    (
        "queuing-jammed(arr=0.08,jam=0.05,S=128)",
        2,
        0x471ec60316d1e634,
    ),
    ("saturated(burst=32,total=48)", 1, 0x7b3e2c845386619a),
    ("saturated(burst=32,total=48)", 2, 0x7a5e3b8a3ccfd01c),
    ("protocol-faceoff(n=48)", 1, 0xb623282b0fe39fcf),
    ("protocol-faceoff(n=48)", 2, 0x97591f4d8f1763ec),
];

/// Dense engine spot checks (same protocol, the slot-by-slot oracle).
const DENSE_LSB: &[(&str, u64, u64)] = &[
    ("batch-drain(n=48)", 1, 0x824f93f4e99163ac),
    ("random-jam-batch(n=48,rho=0.2)", 1, 0x1bf07387ffb157eb),
    ("burst-jam-batch(n=48,4/16)", 1, 0x4e8a7846338b8721),
];

/// Sender-only spot checks (`WindowedBeb` never listens, so these pin the
/// sender observation path — the path whose feedback now flows through
/// `sender_feedback` — in isolation from the listener cohorts).
const SPARSE_BEB: &[(&str, u64, u64)] = &[
    ("batch-drain(n=48)", 1, 0x0adec22f1c0d733c),
    ("random-jam-batch(n=48,rho=0.2)", 1, 0xe09c03cae040d4c8),
    ("burst-jam-batch(n=48,4/16)", 1, 0x9218f3677ffa21a3),
];

/// Looks a scenario up by exact name in the canonical registry. The
/// recordings predate the appended model-variant entries, so position is
/// not load-bearing — the name is.
fn by_name(name: &str) -> DynScenario {
    scenarios::registry(N)
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("scenario {name:?} missing from registry"))
}

#[test]
fn sparse_lsb_streams_match_pre_refactor_recordings() {
    for &(name, seed, expected) in SPARSE_LSB {
        let got = lsb_sparse_hash(&by_name(name), seed);
        assert_eq!(
            got, expected,
            "{name} (seed {seed}): sparse LSB observation stream drifted \
             from the pre-refactor recording (got 0x{got:016x})"
        );
    }
}

#[test]
fn dense_lsb_streams_match_pre_refactor_recordings() {
    for &(name, seed, expected) in DENSE_LSB {
        let got = lsb_dense_hash(&by_name(name), seed);
        assert_eq!(
            got, expected,
            "{name} (seed {seed}): dense LSB observation stream drifted \
             from the pre-refactor recording (got 0x{got:016x})"
        );
    }
}

#[test]
fn sender_only_streams_match_pre_refactor_recordings() {
    for &(name, seed, expected) in SPARSE_BEB {
        let got = beb_sparse_hash(&by_name(name), seed);
        assert_eq!(
            got, expected,
            "{name} (seed {seed}): sender-only BEB observation stream \
             drifted from the pre-refactor recording (got 0x{got:016x})"
        );
    }
}

/// The inline pre-refactor replica: one `outcome.feedback()` value served
/// listeners and senders alike, and nothing stretched the clock. Copied
/// (not imported) from the pre-refactor engine code on purpose — if the
/// shared mapping changes, this copy keeps remembering the original.
fn old_ternary_feedback(outcome: &SlotOutcome) -> Feedback {
    match outcome {
        SlotOutcome::Empty => Feedback::Empty,
        SlotOutcome::Success { .. } => Feedback::Success,
        SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => Feedback::Noisy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Ternary` is the pre-refactor channel, observation for observation:
    /// for every reachable slot outcome, the listener mapping, the sender
    /// mapping (regardless of the `succeeded` flag the engine now passes
    /// alongside), and the zero clock overhead all match the inline
    /// replica of the old code.
    #[test]
    fn ternary_mappings_replicate_the_pre_refactor_channel(
        senders in 0usize..40,
        jammed_bit in 0u8..2,
        succeeded_bit in 0u8..2,
    ) {
        let (jammed, succeeded) = (jammed_bit == 1, succeeded_bit == 1);
        let ids: Vec<PacketId> = (0..senders as u32).map(PacketId).collect();
        let outcome = resolve_slot(jammed, &ids);
        let old = old_ternary_feedback(&outcome);
        prop_assert_eq!(Ternary.listener_feedback(&outcome), old);
        prop_assert_eq!(Ternary.sender_feedback(&outcome, succeeded), old);
        prop_assert_eq!(Ternary.overhead_slots(&outcome), 0);
    }

    /// The scenario layer's default channel is `Ternary`: an explicit
    /// `.model(ChannelModel::Ternary)` produces the exact stream of the
    /// default builder, so the recordings above pin the model axis too.
    #[test]
    fn default_channel_is_ternary_stream_for_stream(
        scenario_idx in 0usize..10,
        seed in 1u64..1_000,
    ) {
        use lowsense_sim::feedback::ChannelModel;
        let registry = scenarios::registry(24);
        let s = &registry[scenario_idx % 10];
        let log_default = Rc::new(RefCell::new(FNV_OFFSET));
        let sink = log_default.clone();
        let _ = s.seeded(seed).run_sparse(move |_| Tap {
            inner: LowSensing::new(Params::default()),
            log: sink.clone(),
        });
        let log_explicit = Rc::new(RefCell::new(FNV_OFFSET));
        let sink = log_explicit.clone();
        let _ = s.seeded(seed).model(ChannelModel::Ternary).run_sparse(move |_| Tap {
            inner: LowSensing::new(Params::default()),
            log: sink.clone(),
        });
        prop_assert_eq!(*log_default.borrow(), *log_explicit.borrow());
    }
}
