//! The acceptance pin for the campaign subsystem: the ported face-off
//! sweep's artifact is **byte-identical across shard counts {1, 2, 8}**
//! on the same campaign seed, and equal to the serial reference executor.
//! (The CI canary additionally diffs the `campaign` binary's on-disk
//! artifacts at 1 vs 4 shards.)

use lowsense_experiments::campaigns;
use lowsense_experiments::exp::{t4, t7};

#[test]
fn faceoff_artifact_is_byte_identical_across_shard_counts() {
    let spec = campaigns::faceoff_small_spec(42);
    let oracle = spec.run_serial();
    let json = oracle.to_json();
    assert!(json.contains("\"schema\": \"lowsense-campaign/2\""));
    for shards in [1, 2, 8] {
        let run = spec.run_sharded(shards);
        assert_eq!(run, oracle, "cell statistics drifted at {shards} shards");
        assert_eq!(
            run.to_json(),
            json,
            "artifact bytes drifted at {shards} shards"
        );
    }
}

#[test]
fn feedback_grid_artifact_is_byte_identical_across_shard_counts() {
    let spec = campaigns::feedback_grid_small_spec(42);
    let oracle = spec.run_serial();
    let json = oracle.to_json();
    assert!(json.contains("\"models\": [\"ternary\", \"no-cd\", \"costly(alpha=0.5)\"]"));
    for shards in [1, 4] {
        let run = spec.run_sharded(shards);
        assert_eq!(run, oracle, "cell statistics drifted at {shards} shards");
        assert_eq!(
            run.to_json(),
            json,
            "artifact bytes drifted at {shards} shards"
        );
    }
}

#[test]
fn faceoff_campaign_seed_is_load_bearing() {
    let a = campaigns::faceoff_small_spec(1).run_sharded(2).to_json();
    let b = campaigns::faceoff_small_spec(2).run_sharded(2).to_json();
    assert_ne!(a, b, "different campaign seeds must give different sweeps");
}

#[test]
fn ported_energy_campaign_is_shard_count_invariant() {
    // The T4 energy sweep exercises per-packet accumulators (Welford +
    // sketch + histogram); pin those across shard counts too.
    let spec = t4::energy_spec(&[64, 128], 3, 7);
    let oracle = spec.run_serial();
    for shards in [2, 8] {
        assert_eq!(spec.run_sharded(shards), oracle, "{shards} shards");
    }
}

#[test]
fn ported_reactive_campaign_is_shard_count_invariant() {
    // The T7 sweep adds a custom metric; its accumulator must merge in
    // canonical order as well.
    let spec = t7::reactive_spec(128, &[0, 8], 3, 9);
    let oracle = spec.run_serial();
    let json = oracle.to_json();
    assert!(json.contains("target_accesses"));
    for shards in [2, 8] {
        assert_eq!(spec.run_sharded(shards).to_json(), json, "{shards} shards");
    }
}
