//! Property-based tests: engine invariants hold for randomized workloads,
//! jam rates, parameters, and seeds.

use lowsense::{LowSensing, Params};
use lowsense_sim::prelude::*;
use proptest::prelude::*;

/// Invariants every finished run must satisfy, regardless of configuration.
fn check_invariants(r: &RunResult) {
    let t = &r.totals;
    assert!(t.successes <= t.arrivals, "more successes than arrivals");
    assert_eq!(
        t.active_slots,
        t.empty_active + t.successes + t.collision_slots + t.jammed_active,
        "slot classes must partition active slots"
    );
    assert!(t.max_backlog <= t.arrivals);
    assert!(t.successes <= t.sends, "each success is a send");
    if let Some(ps) = &r.per_packet {
        let sends: u64 = ps.iter().map(|p| p.sends as u64).sum();
        let listens: u64 = ps.iter().map(|p| p.listens as u64).sum();
        assert_eq!(sends, t.sends, "per-packet sends sum to total");
        assert_eq!(listens, t.listens, "per-packet listens sum to total");
        for p in ps {
            if let Some(d) = p.departed {
                assert!(d >= p.injected, "departure before injection");
                assert!(p.sends >= 1, "delivered packets sent at least once");
            }
        }
        let delivered = ps.iter().filter(|p| p.departed.is_some()).count() as u64;
        assert_eq!(delivered, t.successes, "departures equal successes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse-engine invariants across random batch sizes, jam rates, seeds.
    #[test]
    fn sparse_run_invariants(
        n in 1u64..300,
        rho in 0.0f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let r = scenarios::random_jam_batch(n, rho)
            .seed(seed)
            .run_sparse(|_| LowSensing::new(Params::default()));
        prop_assert!(r.drained());
        check_invariants(&r);
    }

    /// Dense-engine invariants on smaller instances.
    #[test]
    fn dense_run_invariants(
        n in 1u64..80,
        rho in 0.0f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let r = scenarios::random_jam_batch(n, rho)
            .seed(seed)
            .run_dense(|_| LowSensing::new(Params::default()));
        prop_assert!(r.drained());
        check_invariants(&r);
    }

    /// Valid parameter space: any admissible (c, w_min) still drains.
    #[test]
    fn any_valid_params_drain(
        c in 0.4f64..3.0,
        w_min in 4.0f64..64.0,
        seed in 0u64..100_000,
    ) {
        prop_assume!(c * w_min.ln().powi(3) >= 1.0);
        let params = Params::new(c, w_min).expect("assumed valid");
        let r = scenarios::batch_drain(64)
            .seed(seed)
            .run_sparse(|_| LowSensing::new(params));
        prop_assert!(r.drained());
        check_invariants(&r);
    }

    /// Runs are pure functions of (workload, params, seed).
    #[test]
    fn determinism(seed in 0u64..1_000_000) {
        let scenario = scenarios::random_jam_batch(50, 0.2).seed(seed);
        let go = || scenario.run_sparse(|_| LowSensing::new(Params::default()));
        let (a, b) = (go(), go());
        prop_assert_eq!(a.totals, b.totals);
        prop_assert_eq!(a.per_packet, b.per_packet);
    }

    /// Stream workloads with limits never violate accounting invariants,
    /// drained or not.
    #[test]
    fn truncated_streams_keep_invariants(
        rate in 0.01f64..0.2,
        horizon in 500u64..5_000,
        seed in 0u64..100_000,
    ) {
        let r = Scenario::named("truncated-bernoulli+jam")
            .arrivals(Bernoulli::new(rate))
            .jammer(RandomJam::new(0.1))
            .until_slot(horizon)
            .seed(seed)
            .run_sparse(|_| LowSensing::new(Params::default()));
        check_invariants(&r);
        prop_assert!(r.totals.last_slot <= horizon);
    }
}
