//! Property tests for the simulator substrate: samplers match their
//! distributions, deterministic jammers agree with their range counters,
//! arrival processes honour their contracts, the engines coincide exactly
//! on deterministic protocols, and the staged gather/scatter primitives
//! agree with per-element lane access.

use lowsense_sim::engine::table::PacketTable;
use lowsense_sim::packet::PacketId;

use lowsense_sim::arrivals::{AdversarialQueuing, ArrivalProcess, Placement, Trace};
use lowsense_sim::config::SimConfig;
use lowsense_sim::dist::{geometric, poisson, Binomial};
use lowsense_sim::engine::{run_dense, run_sparse};
use lowsense_sim::feedback::{Intent, Observation};
use lowsense_sim::hooks::NoHooks;
use lowsense_sim::jamming::{Jammer, NoJam, PeriodicBurst, WindowPrefixJam};
use lowsense_sim::metrics::Totals;
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;
use lowsense_sim::view::SystemView;
use proptest::prelude::*;

fn view(totals: &Totals) -> SystemView<'_> {
    SystemView {
        slot: 0,
        backlog: 1,
        contention: 0.0,
        totals,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Geometric samples have the right head probability P(X = 0) = p.
    #[test]
    fn geometric_head_probability(p in 0.05f64..0.95, seed in 0u64..10_000) {
        let mut rng = SimRng::new(seed);
        let n = 4_000;
        let zeros = (0..n).filter(|_| geometric(&mut rng, p) == 0).count();
        let rate = zeros as f64 / n as f64;
        // 5 sigma of a Bernoulli(p) sample of 4000.
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((rate - p).abs() < 5.0 * sigma + 0.01, "p={p}, rate={rate}");
    }

    /// Binomial samples stay in range and match the mean within 6σ.
    #[test]
    fn binomial_range_and_mean(
        n in 1u64..50_000,
        p in 0.0001f64..0.9999,
        seed in 0u64..10_000,
    ) {
        let mut rng = SimRng::new(seed);
        let d = Binomial::new(n, p);
        let reps = 400;
        let mut sum = 0u64;
        for _ in 0..reps {
            let x = d.sample(&mut rng);
            prop_assert!(x <= n);
            sum += x;
        }
        let mean = sum as f64 / reps as f64;
        let expect = n as f64 * p;
        let sigma = (n as f64 * p * (1.0 - p) / reps as f64).sqrt();
        prop_assert!(
            (mean - expect).abs() < 6.0 * sigma + 0.05,
            "n={n} p={p}: mean {mean} vs {expect}"
        );
    }

    /// Poisson mean matches λ within 6σ (both regimes of the sampler).
    #[test]
    fn poisson_mean(lambda in 0.01f64..100.0, seed in 0u64..10_000) {
        let mut rng = SimRng::new(seed);
        let reps = 500;
        let sum: u64 = (0..reps).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / reps as f64;
        let sigma = (lambda / reps as f64).sqrt();
        prop_assert!(
            (mean - lambda).abs() < 6.0 * sigma + 0.05,
            "λ={lambda}: mean {mean}"
        );
    }

    /// Deterministic jammers: `count_range` equals the per-slot sum on
    /// arbitrary ranges.
    #[test]
    fn periodic_burst_count_matches_enumeration(
        period in 1u64..50,
        burst in 1u64..50,
        phase in 0u64..100,
        a in 0u64..1_000,
        len in 0u64..500,
    ) {
        prop_assume!(burst <= period);
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut j1 = PeriodicBurst::new(period, burst, phase);
        let mut j2 = PeriodicBurst::new(period, burst, phase);
        let b = a + len;
        let by_range = j1.count_range(a, b, &view(&totals), &mut rng);
        let by_slot = (a..b)
            .filter(|&t| j2.jams(t, &view(&totals), &mut rng))
            .count() as u64;
        prop_assert_eq!(by_range, by_slot);
    }

    /// Same for the window-prefix (adversarial-queuing) jammer, including
    /// fractional budgets.
    #[test]
    fn window_prefix_count_matches_enumeration(
        rate in 0.0f64..0.99,
        s in 1u64..64,
        a in 0u64..2_000,
        len in 0u64..700,
    ) {
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut j1 = WindowPrefixJam::new(rate, s);
        let mut j2 = WindowPrefixJam::new(rate, s);
        let b = a + len;
        let by_range = j1.count_range(a, b, &view(&totals), &mut rng);
        let by_slot = (a..b)
            .filter(|&t| j2.jams(t, &view(&totals), &mut rng))
            .count() as u64;
        prop_assert_eq!(by_range, by_slot);
    }

    /// Adversarial-queuing arrivals: event slots are nondecreasing, window
    /// budgets are respected, totals are exact.
    #[test]
    fn queuing_arrivals_contract(
        rate in 0.01f64..0.9,
        s in 1u64..128,
        total in 1u64..400,
        placement in prop_oneof![
            Just(Placement::Front),
            Just(Placement::Spread),
            Just(Placement::Random)
        ],
        seed in 0u64..10_000,
    ) {
        let totals = Totals::default();
        let mut rng = SimRng::new(seed);
        let mut p = AdversarialQueuing::new(rate, s, placement).with_total(total);
        let mut cursor = 0u64;
        let mut injected = 0u64;
        let mut per_window = std::collections::HashMap::new();
        while let Some((slot, count)) = p.next_arrival(cursor, &view(&totals), &mut rng) {
            prop_assert!(slot >= cursor, "event slot moved backwards");
            prop_assert!(count >= 1);
            cursor = slot + 1;
            injected += count as u64;
            *per_window.entry(slot / s).or_insert(0u64) += count as u64;
        }
        prop_assert_eq!(injected, total);
        let cap = (rate * s as f64).ceil() as u64;
        for (&w, &c) in &per_window {
            prop_assert!(c <= cap.max(1), "window {w} got {c} > {cap}");
        }
    }

    /// Trace arrivals replay exactly.
    #[test]
    fn trace_replays_exactly(events in proptest::collection::vec((0u64..10_000, 1u32..50), 0..20)) {
        let mut sorted = events;
        sorted.sort_by_key(|e| e.0);
        sorted.dedup_by_key(|e| e.0);
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut t = Trace::new(sorted.clone());
        let mut cursor = 0;
        for &(slot, count) in &sorted {
            let got = t.next_arrival(cursor, &view(&totals), &mut rng);
            prop_assert_eq!(got, Some((slot, count)));
            cursor = slot + 1;
        }
        prop_assert_eq!(t.next_arrival(cursor, &view(&totals), &mut rng), None);
    }
}

/// A deterministic protocol consuming no randomness: both engines must
/// produce *identical* executions, not merely statistically equal ones.
#[derive(Clone)]
struct Greedy;

impl Protocol for Greedy {
    fn intent(&mut self, _rng: &mut SimRng) -> Intent {
        Intent::Send
    }
    fn observe(&mut self, _obs: &Observation) {}
    fn send_probability(&self) -> f64 {
        1.0
    }
    fn next_wake(&mut self, _rng: &mut SimRng) -> Option<u64> {
        Some(0)
    }
}

impl SparseProtocol for Greedy {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact dense/sparse agreement on the deterministic protocol, for
    /// arbitrary batch traces and horizons.
    #[test]
    fn engines_coincide_exactly_on_deterministic_protocol(
        first in 1u32..5,
        gap in 1u64..100,
        second in 0u32..5,
        horizon in 1u64..300,
        seed in 0u64..1_000,
    ) {
        let mk_trace = || {
            let mut v = vec![(0u64, first)];
            if second > 0 {
                v.push((gap, second));
            }
            Trace::new(v)
        };
        let cfg = SimConfig::new(seed)
            .limits(lowsense_sim::config::Limits::until_slot(horizon));
        let dense = run_dense(&cfg, mk_trace(), NoJam, |_| Greedy, &mut NoHooks);
        let sparse = run_sparse(&cfg, mk_trace(), NoJam, |_| Greedy, &mut NoHooks);
        prop_assert_eq!(dense.totals, sparse.totals);
        prop_assert_eq!(dense.per_packet, sparse.per_packet);
    }

    /// The calendar-queue sparse engine and the retained heap-based loop
    /// produce bit-identical executions for arbitrary stochastic protocols,
    /// traces, jamming rates, and horizons.
    #[test]
    fn sparse_engines_bit_identical_on_random_workloads(
        p in 0.001f64..1.0,
        first in 1u32..40,
        gap in 1u64..5_000,
        second in 0u32..40,
        rho in 0.0f64..0.6,
        horizon in 1u64..20_000,
        seed in 0u64..10_000,
    ) {
        #[derive(Clone)]
        struct Fixed(f64);
        impl Protocol for Fixed {
            fn intent(&mut self, rng: &mut SimRng) -> Intent {
                if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
            }
            fn observe(&mut self, _obs: &Observation) {}
            fn send_probability(&self) -> f64 {
                self.0
            }
            fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
                Some(geometric(rng, self.0))
            }
        }
        impl SparseProtocol for Fixed {
            fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
                rng.bernoulli(0.8)
            }
        }
        let mk_trace = || {
            let mut v = vec![(0u64, first)];
            if second > 0 {
                v.push((gap, second));
            }
            Trace::new(v)
        };
        let cfg = SimConfig::new(seed)
            .limits(lowsense_sim::config::Limits::until_slot(horizon));
        let fast = run_sparse(
            &cfg,
            mk_trace(),
            lowsense_sim::jamming::RandomJam::new(rho),
            |_| Fixed(p),
            &mut NoHooks,
        );
        let reference = lowsense_sim::engine::run_sparse_reference(
            &cfg,
            mk_trace(),
            lowsense_sim::jamming::RandomJam::new(rho),
            |_| Fixed(p),
            &mut NoHooks,
        );
        prop_assert_eq!(fast.totals, reference.totals);
        prop_assert_eq!(fast.per_packet, reference.per_packet);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The staged gather/scatter primitives agree exactly with per-element
    /// lane access: for an arbitrary live set (mid-slot departures
    /// included), an arbitrary gather permutation over an arbitrary cohort,
    /// and across a compaction boundary, gather → mutate → scatter leaves
    /// the table bit-identical to the same mutations applied one lane at a
    /// time through `state_at_mut` on a twin table.
    #[test]
    fn gather_scatter_matches_per_element_access(
        n in 1usize..120,
        dead_picks in proptest::collection::vec(0usize..1_000_000, 0..48),
        priorities in proptest::collection::vec(0u32..1_000_000_000, 120..121),
        frac in 0.0f64..1.001,
    ) {
        let mut staged: PacketTable<u64> = PacketTable::new();
        let mut direct: PacketTable<u64> = PacketTable::new();
        for id in 0..n {
            let state = id as u64 * 1_000_003 + 7;
            staged.insert(PacketId(id as u32), state);
            direct.insert(PacketId(id as u32), state);
        }

        // Mid-slot departures: an arbitrary subset retires before the
        // staging runs, so gathered handles skip over vacant entries.
        let mut alive = vec![true; n];
        for &pick in &dead_picks {
            let id = pick % n;
            if alive[id] {
                alive[id] = false;
                staged.retire(PacketId(id as u32));
                direct.retire(PacketId(id as u32));
            }
        }
        let mut survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        // Arbitrary gather order: argsort by the fuzzed priorities. An
        // arbitrary prefix of it forms the cohort, so some live lanes
        // stay outside the round-trip and must come through untouched.
        survivors.sort_by_key(|&i| (priorities[i], i));
        let take_n = ((survivors.len() as f64) * frac).round() as usize;
        let cohort = &survivors[..take_n.min(survivors.len())];

        let handles: Vec<_> = cohort
            .iter()
            .map(|&i| staged.resolve(PacketId(i as u32)))
            .collect();
        let mut scratch: Vec<u64> = Vec::new();
        staged.gather_into(&handles, &mut scratch);
        for (j, &i) in cohort.iter().enumerate() {
            prop_assert_eq!(scratch[j], *direct.state(PacketId(i as u32)));
        }
        // The same mutation through both routes: contiguous scratch on the
        // staged table, one lane at a time on the direct one.
        for (j, s) in scratch.iter_mut().enumerate() {
            *s = s.wrapping_mul(31).wrapping_add(j as u64);
        }
        for (j, &i) in cohort.iter().enumerate() {
            let d = direct.resolve(PacketId(i as u32));
            let p = direct.state_at_mut(d);
            *p = p.wrapping_mul(31).wrapping_add(j as u64);
        }
        staged.scatter_from(&handles, &scratch);
        for &i in &survivors {
            prop_assert_eq!(
                staged.state(PacketId(i as u32)),
                direct.state(PacketId(i as u32))
            );
        }

        // Across the compaction boundary: compact only the staged table
        // (old handles die with the epoch; fresh ones re-resolve), then
        // round-trip the full survivor set once more and compare.
        staged.compact();
        let handles: Vec<_> = survivors
            .iter()
            .map(|&i| staged.resolve(PacketId(i as u32)))
            .collect();
        staged.gather_into(&handles, &mut scratch);
        for (j, s) in scratch.iter_mut().enumerate() {
            *s ^= 0x9e37_79b9_7f4a_7c15 ^ j as u64;
        }
        for (j, &i) in survivors.iter().enumerate() {
            let d = direct.resolve(PacketId(i as u32));
            let p = direct.state_at_mut(d);
            *p ^= 0x9e37_79b9_7f4a_7c15 ^ j as u64;
        }
        staged.scatter_from(&handles, &scratch);
        for &i in &survivors {
            prop_assert_eq!(
                staged.state(PacketId(i as u32)),
                direct.state(PacketId(i as u32))
            );
        }
    }
}
