//! Packet-arrival adversaries.
//!
//! The paper's adversary decides, for each slot, how many packets to inject
//! (§1.1). This module provides the arrival strategies the experiments need:
//! batches, stochastic streams, the *adversarial-queuing* model of
//! Corollary 1.5 (rate `λ`, granularity `S`), explicit traces, and an
//! adaptive strategy that reads the system state.
//!
//! # Contract
//!
//! Engines query [`ArrivalProcess::next_arrival`] with nondecreasing `after`
//! values. For non-adaptive processes ([`ArrivalProcess::is_adaptive`]
//! `== false`) every returned event is consumed exactly once, so processes
//! may treat calls as consuming (e.g. decrement a remaining-packet budget).
//! Adaptive processes are re-queried whenever the system state changes and
//! must therefore derive any budget from the [`SystemView`] (e.g. from
//! `view.totals.arrivals`) instead of internal counters.

use crate::dist::geometric;
use crate::rng::SimRng;
use crate::time::{offset, Slot};
use crate::view::SystemView;

/// A strategy for injecting packets over time.
pub trait ArrivalProcess {
    /// Returns the next arrival event at or after slot `after`:
    /// `(slot, packet count ≥ 1)`, or `None` if the process is exhausted.
    fn next_arrival(
        &mut self,
        after: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)>;

    /// Whether the process reads the system state (see module contract).
    fn is_adaptive(&self) -> bool {
        false
    }

    /// Total number of packets this process will ever inject, if known.
    fn total_hint(&self) -> Option<u64> {
        None
    }
}

/// All `count` packets arrive in a single slot.
///
/// # Examples
///
/// ```
/// use lowsense_sim::prelude::*;
/// use lowsense_sim::metrics::Totals;
///
/// let totals = Totals::default();
/// let view = SystemView { slot: 0, backlog: 0, contention: 0.0, totals: &totals };
/// let mut rng = SimRng::new(1);
/// let mut batch = Batch::new(100);
/// assert_eq!(batch.next_arrival(0, &view, &mut rng), Some((0, 100)));
/// assert_eq!(batch.next_arrival(1, &view, &mut rng), None);
/// ```
#[derive(Debug, Clone)]
pub struct Batch {
    at: Slot,
    count: u64,
    emitted: bool,
}

impl Batch {
    /// `count` packets at slot 0 — the classical batch/static instance.
    pub fn new(count: u64) -> Self {
        Batch {
            at: 0,
            count,
            emitted: false,
        }
    }

    /// `count` packets at slot `at`.
    pub fn at(at: Slot, count: u64) -> Self {
        Batch {
            at,
            count,
            emitted: false,
        }
    }
}

impl ArrivalProcess for Batch {
    fn next_arrival(
        &mut self,
        after: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        if self.emitted || self.count == 0 || self.at < after {
            return None;
        }
        self.emitted = true;
        // Batches larger than u32 are emitted as one event of saturated size;
        // experiments never exceed this.
        Some((self.at, self.count.min(u32::MAX as u64) as u32))
    }

    fn total_hint(&self) -> Option<u64> {
        Some(self.count)
    }
}

/// An explicit arrival schedule: `(slot, count)` pairs in increasing slot
/// order.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<(Slot, u32)>,
    cursor: usize,
}

impl Trace {
    /// Creates a trace from events sorted by slot.
    ///
    /// # Panics
    ///
    /// Panics if slots are not strictly increasing or any count is zero.
    pub fn new(events: Vec<(Slot, u32)>) -> Self {
        for w in events.windows(2) {
            assert!(w[0].0 < w[1].0, "trace slots must be strictly increasing");
        }
        assert!(
            events.iter().all(|&(_, c)| c > 0),
            "trace counts must be positive"
        );
        Trace { events, cursor: 0 }
    }
}

impl ArrivalProcess for Trace {
    fn next_arrival(
        &mut self,
        after: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        while let Some(&(slot, count)) = self.events.get(self.cursor) {
            self.cursor += 1;
            if slot >= after {
                return Some((slot, count));
            }
        }
        None
    }

    fn total_hint(&self) -> Option<u64> {
        Some(self.events.iter().map(|&(_, c)| c as u64).sum())
    }
}

/// One packet per slot with probability `rate`, independently.
#[derive(Debug, Clone)]
pub struct Bernoulli {
    rate: f64,
    remaining: Option<u64>,
    total: Option<u64>,
}

impl Bernoulli {
    /// Unbounded Bernoulli(`rate`) stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate {rate} out of (0,1]");
        Bernoulli {
            rate,
            remaining: None,
            total: None,
        }
    }

    /// Stops after `total` packets.
    pub fn with_total(mut self, total: u64) -> Self {
        self.remaining = Some(total);
        self.total = Some(total);
        self
    }
}

impl ArrivalProcess for Bernoulli {
    fn next_arrival(
        &mut self,
        after: Slot,
        _view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        if self.remaining == Some(0) {
            return None;
        }
        let gap = geometric(rng, self.rate);
        let slot = offset(after, gap);
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Some((slot, 1))
    }

    fn total_hint(&self) -> Option<u64> {
        self.total
    }
}

/// `Poisson(rate)` packets per slot, independently.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
    remaining: Option<u64>,
    total: Option<u64>,
}

impl PoissonArrivals {
    /// Unbounded Poisson stream with mean `rate` packets per slot.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        PoissonArrivals {
            rate,
            remaining: None,
            total: None,
        }
    }

    /// Stops once `total` packets have been injected (the final event is
    /// truncated to fit).
    pub fn with_total(mut self, total: u64) -> Self {
        self.remaining = Some(total);
        self.total = Some(total);
        self
    }
}

/// Samples `Poisson(lambda)` conditioned on being ≥ 1, by inverse transform
/// on the truncated pmf (exact; O(result)).
fn poisson_at_least_one(rng: &mut SimRng, lambda: f64) -> u64 {
    let norm = -(-lambda).exp_m1(); // 1 - e^-λ
    let u = rng.f64() * norm;
    let mut term = lambda * (-lambda).exp();
    let mut cum = term;
    let mut k = 1u64;
    while u >= cum && k < 10_000 {
        k += 1;
        term *= lambda / k as f64;
        cum += term;
    }
    k
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(
        &mut self,
        after: Slot,
        _view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        if self.remaining == Some(0) {
            return None;
        }
        // A slot has ≥1 arrival with probability 1 - e^-λ; the gap to the
        // next such slot is geometric, and the count there is a ≥1-truncated
        // Poisson. Exact decomposition of the i.i.d. per-slot process.
        let p_any = -(-self.rate).exp_m1();
        let gap = geometric(rng, p_any);
        let slot = offset(after, gap);
        let mut count = poisson_at_least_one(rng, self.rate);
        if let Some(r) = &mut self.remaining {
            count = count.min(*r);
            *r -= count;
        }
        Some((slot, count.min(u32::MAX as u64) as u32))
    }

    fn total_hint(&self) -> Option<u64> {
        self.total
    }
}

/// How an adversarial-queuing window distributes its packet budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The whole budget lands on the first slot of the window (burstiest).
    Front,
    /// The budget is spread evenly across the window.
    Spread,
    /// Each packet picks a uniformly random slot in the window.
    Random,
}

/// Adversarial-queuing arrivals (paper §1.1, Corollary 1.5): in every window
/// of `granularity` consecutive slots at most `rate · granularity` packets
/// arrive, placed adversarially within the window.
///
/// Fractional budgets are carried across windows so the long-run rate is
/// exactly `rate`.
#[derive(Debug, Clone)]
pub struct AdversarialQueuing {
    rate: f64,
    granularity: u64,
    placement: Placement,
    total: Option<u64>,
    injected: u64,
    window: u64,
    /// Pending events for the current window, reverse-sorted by slot.
    pending: Vec<(Slot, u32)>,
}

impl AdversarialQueuing {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate < 1` and `granularity ≥ 1`.
    pub fn new(rate: f64, granularity: u64, placement: Placement) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "rate {rate} out of (0,1)");
        assert!(granularity >= 1, "granularity must be at least 1");
        AdversarialQueuing {
            rate,
            granularity,
            placement,
            total: None,
            injected: 0,
            window: 0,
            pending: Vec::new(),
        }
    }

    /// Stops once `total` packets have been injected.
    pub fn with_total(mut self, total: u64) -> Self {
        self.total = Some(total);
        self
    }

    /// Budget of window `w` with fractional carry: `⌊r·S·(w+1)⌋ − ⌊r·S·w⌋`.
    fn window_budget(&self, w: u64) -> u64 {
        let rs = self.rate * self.granularity as f64;
        ((w + 1) as f64 * rs).floor() as u64 - (w as f64 * rs).floor() as u64
    }

    fn fill_window(&mut self, w: u64, rng: &mut SimRng) {
        let mut budget = self.window_budget(w);
        if let Some(total) = self.total {
            budget = budget.min(total - self.injected);
        }
        if budget == 0 {
            return;
        }
        let start = w * self.granularity;
        let s = self.granularity;
        match self.placement {
            Placement::Front => self.pending.push((start, budget as u32)),
            Placement::Spread => {
                // One packet every S/budget slots (integer spacing).
                let step = (s / budget).max(1);
                let mut events: Vec<(Slot, u32)> = Vec::new();
                for i in 0..budget {
                    let slot = start + (i * step).min(s - 1);
                    match events.last_mut() {
                        Some((last, c)) if *last == slot => *c += 1,
                        _ => events.push((slot, 1)),
                    }
                }
                events.reverse();
                self.pending = events;
            }
            Placement::Random => {
                let mut slots: Vec<Slot> = (0..budget).map(|_| start + rng.range_u64(s)).collect();
                slots.sort_unstable();
                let mut events: Vec<(Slot, u32)> = Vec::new();
                for slot in slots {
                    match events.last_mut() {
                        Some((last, c)) if *last == slot => *c += 1,
                        _ => events.push((slot, 1)),
                    }
                }
                events.reverse();
                self.pending = events;
            }
        }
        self.injected += budget;
    }
}

impl ArrivalProcess for AdversarialQueuing {
    fn next_arrival(
        &mut self,
        after: Slot,
        _view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        loop {
            while let Some(&(slot, count)) = self.pending.last() {
                self.pending.pop();
                if slot >= after {
                    return Some((slot, count));
                }
            }
            if self.total.is_some_and(|t| self.injected >= t) {
                return None;
            }
            // Advance to the window containing `after` (or the next one).
            let w_after = after / self.granularity;
            if self.window < w_after {
                // Skip windows the engine has already passed; their budget
                // is forfeited (slots went by without arrivals).
                self.window = w_after;
            }
            let w = self.window;
            self.window += 1;
            self.fill_window(w, rng);
            if self.pending.is_empty() && self.total.is_none() {
                // Zero-budget window (rate·S < 1 with carry); keep rolling.
                continue;
            }
        }
    }

    fn total_hint(&self) -> Option<u64> {
        self.total
    }
}

/// Adaptive strategy: inject a burst of `burst` packets whenever the system
/// drains, keeping it permanently busy (up to `total` packets).
///
/// Derives its budget from `view.totals.arrivals` per the module contract.
#[derive(Debug, Clone)]
pub struct BacklogTriggered {
    burst: u32,
    total: u64,
}

impl BacklogTriggered {
    /// Creates the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `burst == 0`.
    pub fn new(burst: u32, total: u64) -> Self {
        assert!(burst > 0, "burst must be positive");
        BacklogTriggered { burst, total }
    }
}

impl ArrivalProcess for BacklogTriggered {
    fn next_arrival(
        &mut self,
        after: Slot,
        view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        let injected = view.totals.arrivals;
        if injected >= self.total {
            return None;
        }
        if view.backlog > 0 {
            // System busy: no injection planned yet; the engine re-queries
            // after the next event.
            return None;
        }
        let count = (self.total - injected).min(self.burst as u64) as u32;
        Some((after, count))
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn total_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Totals;

    fn view(totals: &Totals) -> SystemView<'_> {
        SystemView {
            slot: 0,
            backlog: totals.arrivals - totals.successes,
            contention: 0.0,
            totals,
        }
    }

    #[test]
    fn batch_emits_once() {
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut b = Batch::new(100);
        assert_eq!(b.next_arrival(0, &view(&totals), &mut rng), Some((0, 100)));
        assert_eq!(b.next_arrival(1, &view(&totals), &mut rng), None);
        assert_eq!(b.total_hint(), Some(100));
    }

    #[test]
    fn batch_missed_slot_is_dropped() {
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut b = Batch::at(5, 10);
        assert_eq!(b.next_arrival(6, &view(&totals), &mut rng), None);
    }

    #[test]
    fn trace_in_order() {
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut t = Trace::new(vec![(2, 1), (5, 3), (9, 2)]);
        assert_eq!(t.next_arrival(0, &view(&totals), &mut rng), Some((2, 1)));
        assert_eq!(t.next_arrival(3, &view(&totals), &mut rng), Some((5, 3)));
        assert_eq!(t.next_arrival(6, &view(&totals), &mut rng), Some((9, 2)));
        assert_eq!(t.next_arrival(10, &view(&totals), &mut rng), None);
        assert_eq!(
            Trace::new(vec![(2, 1), (5, 3), (9, 2)]).total_hint(),
            Some(6)
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn trace_rejects_unsorted() {
        Trace::new(vec![(5, 1), (2, 1)]);
    }

    #[test]
    fn bernoulli_rate_and_total() {
        let totals = Totals::default();
        let mut rng = SimRng::new(2);
        let mut p = Bernoulli::new(0.1).with_total(1000);
        let mut slot = 0;
        let mut n = 0u64;
        while let Some((s, c)) = p.next_arrival(slot, &view(&totals), &mut rng) {
            assert!(s >= slot);
            slot = s + 1;
            n += c as u64;
        }
        assert_eq!(n, 1000);
        // Empirical rate ≈ 0.1: 1000 packets over ~10000 slots.
        let rate = n as f64 / slot as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn poisson_arrivals_rate() {
        let totals = Totals::default();
        let mut rng = SimRng::new(3);
        let mut p = PoissonArrivals::new(0.5).with_total(20_000);
        let mut slot = 0;
        let mut n = 0u64;
        while let Some((s, c)) = p.next_arrival(slot, &view(&totals), &mut rng) {
            assert!(c >= 1);
            slot = s + 1;
            n += c as u64;
        }
        assert_eq!(n, 20_000);
        let rate = n as f64 / slot as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn poisson_at_least_one_matches_conditional_mean() {
        let mut rng = SimRng::new(4);
        let lambda: f64 = 0.3;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| poisson_at_least_one(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        let expect = lambda / -(-lambda).exp_m1(); // λ / (1 - e^-λ)
        assert!((mean - expect).abs() < 0.01, "mean {mean} expect {expect}");
    }

    #[test]
    fn queuing_respects_window_budget() {
        let totals = Totals::default();
        let mut rng = SimRng::new(5);
        for placement in [Placement::Front, Placement::Spread, Placement::Random] {
            let (rate, s) = (0.25, 64u64);
            let mut p = AdversarialQueuing::new(rate, s, placement).with_total(1600);
            let mut slot = 0;
            let mut per_window = std::collections::HashMap::new();
            let mut n = 0u64;
            while let Some((sl, c)) = p.next_arrival(slot, &view(&totals), &mut rng) {
                *per_window.entry(sl / s).or_insert(0u64) += c as u64;
                n += c as u64;
                slot = sl + 1;
            }
            assert_eq!(n, 1600, "{placement:?}");
            let cap = (rate * s as f64).ceil() as u64;
            for (&w, &cnt) in &per_window {
                assert!(cnt <= cap, "{placement:?}: window {w} got {cnt} > {cap}");
            }
        }
    }

    #[test]
    fn queuing_fractional_budget_carries() {
        // rate·S = 0.8 < 1: some windows inject 1, some 0, long-run ≈ 0.8/S.
        let totals = Totals::default();
        let mut rng = SimRng::new(6);
        let mut p = AdversarialQueuing::new(0.08, 10, Placement::Front).with_total(80);
        let mut slot = 0;
        let mut n = 0u64;
        while let Some((sl, c)) = p.next_arrival(slot, &view(&totals), &mut rng) {
            n += c as u64;
            slot = sl + 1;
        }
        assert_eq!(n, 80);
        // 80 packets at ~0.8/window of 10 slots ⇒ about 1000 slots.
        assert!((800..=1200).contains(&slot), "final slot {slot}");
    }

    #[test]
    fn backlog_triggered_uses_view() {
        let mut totals = Totals::default();
        let mut rng = SimRng::new(7);
        let mut p = BacklogTriggered::new(10, 25);
        assert!(p.is_adaptive());
        // Empty system: inject.
        assert_eq!(p.next_arrival(0, &view(&totals), &mut rng), Some((0, 10)));
        totals.arrivals = 10;
        // Busy system: hold off.
        assert_eq!(p.next_arrival(1, &view(&totals), &mut rng), None);
        totals.successes = 10;
        // Drained again: next burst.
        assert_eq!(p.next_arrival(2, &view(&totals), &mut rng), Some((2, 10)));
        totals.arrivals = 20;
        totals.successes = 20;
        // Final truncated burst.
        assert_eq!(p.next_arrival(3, &view(&totals), &mut rng), Some((3, 5)));
        totals.arrivals = 25;
        totals.successes = 25;
        assert_eq!(p.next_arrival(4, &view(&totals), &mut rng), None);
    }
}
