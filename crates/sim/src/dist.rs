//! Exact samplers for the distributions the simulator needs.
//!
//! * [`geometric`] — delay until the first success of a Bernoulli(p) process;
//!   the workhorse of the event-driven engine (§5 of `DESIGN.md`).
//! * [`Binomial`] — sender counts for grouped symmetric protocols and jam
//!   counts over skipped slot ranges. Uses the exact BINV inverse transform
//!   for `n·min(p,1-p) ≤ 30` and the BTPE rejection algorithm of
//!   Kachitvichyanukul & Schmeiser (1988) above it.
//! * [`poisson`] — arrival counts. Knuth's product method for `λ ≤ 30`; a
//!   rounded-normal approximation above (documented: only bulk accounting
//!   paths ever see large `λ`).
//!
//! # Examples
//!
//! ```
//! use lowsense_sim::rng::SimRng;
//! use lowsense_sim::dist::{geometric, Binomial};
//!
//! let mut rng = SimRng::new(1);
//! let delay = geometric(&mut rng, 0.25);
//! let senders = Binomial::new(100, 0.01).sample(&mut rng);
//! assert!(senders <= 100);
//! let _ = delay;
//! ```

use crate::rng::SimRng;

/// Fast inlineable natural logarithm for finite positive inputs.
///
/// `std`'s `f64::ln` is an out-of-line libm call; at ~6 ns per call it is
/// one of the largest single costs of an event-driven simulation step (the
/// backoff window update and every geometric delay draw take one). This
/// routine is the classic argument-reduction + `atanh` series evaluation,
/// fully inlinable and branch-light so hot loops can pipeline it.
///
/// Accuracy: a few ulp (relative error < 1e-14 over the normal range, see
/// the distribution tests) — far below Monte Carlo resolution. It is *not*
/// correctly rounded; code that needs the exact `libm` bits should call
/// `f64::ln`. Inputs must be finite and positive; the subnormal range
/// `< 2^-1022` (whose exponent field the bit-level reduction cannot
/// decode) takes a cold branch to `f64::ln`, so the contract is "finite
/// positive", not "finite positive normal". For normal inputs the branch
/// is a single well-predicted compare in front of the unchanged fast path.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    debug_assert!(
        x > 0.0 && x <= f64::MAX,
        "fast_ln input {x} out of the positive finite range"
    );
    if x < f64::MIN_POSITIVE {
        // Subnormal (or zero/negative under a violated contract): the
        // exponent bits are no longer `biased exponent + mantissa`, so the
        // reduction below would return garbage. This is far off every hot
        // path — take the exact libm call.
        return x.ln();
    }
    fast_ln_normal(x)
}

/// The normal-range core of [`fast_ln`], shared verbatim with [`fast_ln4`]
/// so scalar and 4-lane evaluations are bit-identical per lane.
#[inline(always)]
fn fast_ln_normal(x: f64) -> f64 {
    let bits = x.to_bits();
    let e_raw = ((bits >> 52) & 0x7FF) as i64 - 1023;
    // Mantissa in [1, 2).
    let m_raw = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Shift to m ∈ [√½, √2) so the series argument is small.
    let big = m_raw >= std::f64::consts::SQRT_2;
    let m = if big { 0.5 * m_raw } else { m_raw };
    let e = (e_raw + big as i64) as f64;
    // ln m = 2·atanh(s) with s = (m-1)/(m+1), |s| ≤ 0.1716:
    // 2s·(1 + s²/3 + s⁴/5 + … + s¹⁴/15), truncation < 1e-15 relative.
    // Estrin evaluation keeps the dependency chain short so independent
    // calls pipeline (a Horner chain here is slower than libm).
    let s = (m - 1.0) / (m + 1.0);
    let t = s * s;
    let t2 = t * t;
    let t4 = t2 * t2;
    let p01 = (1.0 / 3.0) * t + 1.0;
    let p23 = (1.0 / 7.0) * t + 1.0 / 5.0;
    let p45 = (1.0 / 11.0) * t + 1.0 / 9.0;
    let p67 = (1.0 / 15.0) * t + 1.0 / 13.0;
    let q0 = p23 * t2 + p01;
    let q1 = p67 * t2 + p45;
    let p = q1 * t4 + q0;
    2.0 * s * p + e * std::f64::consts::LN_2
}

/// Four independent [`fast_ln`] evaluations, laid out for the
/// auto-vectorizer.
///
/// Each lane computes **exactly** the operations of the scalar [`fast_ln`]
/// on its input, so `fast_ln4([a, b, c, d])` is bit-identical to
/// `[fast_ln(a), fast_ln(b), fast_ln(c), fast_ln(d)]` — the property the
/// batched observe/draw protocol path relies on to keep `RunResult`s
/// bit-equal to the scalar engines. Lanes are independent straight-line
/// arithmetic on a fixed-size array (no `std::simd` needed); when every
/// lane is in the normal range the whole array goes through the SIMD-friendly
/// core, and the rare subnormal lane falls back to per-lane scalar calls
/// (which share the same core, so the result is unchanged).
#[inline]
pub fn fast_ln4(x: [f64; 4]) -> [f64; 4] {
    if x.iter().all(|&v| v >= f64::MIN_POSITIVE) {
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = fast_ln_normal(x[i]);
        }
        out
    } else {
        x.map(fast_ln)
    }
}

/// Samples the number of failures before the first success of independent
/// Bernoulli(`p`) trials: `P(X = k) = (1-p)^k · p`.
///
/// Returns `u64::MAX` ("never") when `p <= 0`, and `0` when `p >= 1`.
///
/// # Panics
///
/// Panics (debug builds) if `p` is NaN.
#[inline]
pub fn geometric(rng: &mut SimRng, p: f64) -> u64 {
    debug_assert!(!p.is_nan(), "geometric probability must not be NaN");
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    geometric_with_ln_q(rng, (-p).ln_1p())
}

/// [`geometric`] with the caller supplying `ln(1-p)` (which must be
/// negative, i.e. `0 < p < 1`).
///
/// Protocols that draw many delays at the same success probability cache
/// `(-p).ln_1p()` alongside `p` and skip one transcendental per draw; the
/// division below is unchanged, so results are bit-identical to
/// [`geometric`] called with the same `p`.
#[inline]
pub fn geometric_with_ln_q(rng: &mut SimRng, ln_q: f64) -> u64 {
    debug_assert!(ln_q < 0.0, "ln(1-p) must be negative");
    // U uniform in (0, 1]; k = floor(ln U / ln(1-p)) is exactly geometric.
    let u = 1.0 - rng.f64();
    saturating_count(u.ln() / ln_q)
}

/// Converts a real-valued slot count to `u64`, saturating at `u64::MAX`
/// ("never") for NaN and for anything at or past the representable top.
///
/// The boundary deserves spelling out, because `u64::MAX as f64` does not
/// equal `u64::MAX`: `2^64 - 1` is not representable in `f64`, and the
/// conversion rounds *up* to exactly `2^64` (nearest representable,
/// ties-to-even; the candidates are `2^64 - 2048` and `2^64`, and
/// `2^64 - 1` is nearer the latter). So the comparison below saturates
/// every `k ≥ 2^64`. That leaves `[2^63, 2^64)` flowing into the `as u64`
/// cast — which is safe: every `f64` in that range is an exact integer
/// (the mantissa spacing there is ≥ 1024), the largest being
/// `2^64 - 2048`, so the cast truncates nothing and can never wrap.
/// (Rust's float→int `as` additionally saturates rather than wrapping,
/// but this function does not rely on that backstop.) The
/// `saturation_boundary` tests pin each of these cases.
#[inline]
pub fn saturating_count(k: f64) -> u64 {
    // `u64::MAX as f64` == 2^64 exactly; see above.
    if k.is_nan() || k >= u64::MAX as f64 {
        u64::MAX
    } else {
        k as u64
    }
}

/// `ln(1 - p)` for the fast geometric samplers, with full precision for
/// tiny `p`.
///
/// For `p < 1e-8` the rounding of `1 - p` would lose the entire signal, so
/// `ln_1p` is used; above that threshold the subtraction is exact to ~1e-8
/// relative and the inlinable [`fast_ln`] applies. The threshold mirrors
/// the cached-reciprocal path in `LowSensing::recompute`.
#[inline]
fn ln_q_fast(p: f64) -> f64 {
    if p < 1e-8 {
        (-p).ln_1p()
    } else {
        fast_ln(1.0 - p)
    }
}

/// [`geometric`] with the transcendentals routed through [`fast_ln`] /
/// [`ln_1p`](f64::ln_1p): the scalar companion of [`geometric4`].
///
/// Statistically indistinguishable from [`geometric`] (the log is accurate
/// to ~1e-14 relative) but *not* bit-identical to it — protocols choose one
/// family and stay with it. `geometric_fast` and [`geometric4`] **are**
/// bit-identical lane-for-lane, which is what lets a protocol use the
/// scalar form in `next_wake` and the 4-wide form in `next_wake4` while
/// the engines stay bit-equal.
///
/// # Panics
///
/// Panics (debug builds) if `p` is NaN.
#[inline]
pub fn geometric_fast(rng: &mut SimRng, p: f64) -> u64 {
    debug_assert!(!p.is_nan(), "geometric probability must not be NaN");
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    let u = 1.0 - rng.f64();
    saturating_count(fast_ln(u) / ln_q_fast(p))
}

/// Geometric draw with the logarithm of `1-p` pre-inverted: the delay is
/// `⌊fast_ln(U) · inv_ln_q⌋`, one inlined transcendental and one multiply.
///
/// This is the steady-state wake draw of the cached protocols: they keep
/// `inv_ln_q = 1/ln(1-p)` alongside `p` (recomputed only when the state
/// changes — for the ladder protocols, read straight from a table row) and
/// pay neither the `ln(1-p)` nor the divide per draw. The guards mirror
/// [`geometric_fast`]'s, and the degenerate cases (`p ≤ 0`, `p ≥ 1`) never
/// read `inv_ln_q`, so callers may cache `0` there.
///
/// # Panics
///
/// Panics (debug builds) if `p` is NaN.
#[inline]
pub fn geometric_inv(rng: &mut SimRng, p: f64, inv_ln_q: f64) -> u64 {
    debug_assert!(!p.is_nan(), "geometric probability must not be NaN");
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    let u = 1.0 - rng.f64();
    saturating_count(fast_ln(u) * inv_ln_q)
}

/// Four [`geometric_inv`] draws, 4-wide, bit-identical lane-for-lane to
/// four sequential scalar calls.
///
/// RNG values are drawn **in ascending lane order** with degenerate lanes
/// drawing nothing (the batched-wake contract); the uniforms' logarithms
/// evaluate through [`fast_ln4`], whose per-lane arithmetic is the scalar
/// [`fast_ln`]'s, so the sparse engine's 4-wide wake pass and the reference
/// engine's scalar draws stay bit-equal.
///
/// # Panics
///
/// Panics (debug builds) if any `p` is NaN.
#[inline]
// The negated guards reproduce `geometric_inv`'s exact branch structure
// (including where a contract-violating NaN would flow), which the
// bit-identity contract of the batch pins.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn geometric4_inv(rng: &mut SimRng, p: [f64; 4], inv_ln_q: [f64; 4]) -> [u64; 4] {
    let mut u = [1.0f64; 4];
    let mut live = [false; 4];
    for i in 0..4 {
        debug_assert!(!p[i].is_nan(), "geometric probability must not be NaN");
        if !(p[i] >= 1.0) && !(p[i] <= 0.0) {
            u[i] = 1.0 - rng.f64();
            live[i] = true;
        }
    }
    let ln_u = fast_ln4(u);
    let mut out = [0u64; 4];
    for i in 0..4 {
        out[i] = if live[i] {
            saturating_count(ln_u[i] * inv_ln_q[i])
        } else if p[i] >= 1.0 {
            0
        } else {
            u64::MAX
        };
    }
    out
}

/// Four geometric draws at per-lane success probabilities, 4-wide.
///
/// Consumes the RNG **in ascending lane order**, with degenerate lanes
/// (`p ≤ 0` or `p ≥ 1`) drawing nothing — exactly the consumption pattern
/// of four sequential [`geometric_fast`] calls, which this function is
/// bit-identical to (the `geometric4_matches_scalar_bitwise` test pins
/// it). The uniform draws are serialized by the RNG, but both logarithms
/// evaluate through [`fast_ln4`]-style independent lanes the
/// auto-vectorizer can overlap.
///
/// # Panics
///
/// Panics (debug builds) if any `p` is NaN.
#[inline]
// The negated guards reproduce `geometric_fast`'s exact branch structure
// (including where a contract-violating NaN would flow), which the
// bit-identity contract of the batch pins.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn geometric4(rng: &mut SimRng, p: [f64; 4]) -> [u64; 4] {
    let mut u = [1.0f64; 4];
    let mut q = [0.5f64; 4];
    let mut live = [false; 4];
    for i in 0..4 {
        debug_assert!(!p[i].is_nan(), "geometric probability must not be NaN");
        // Mirror geometric_fast's guard structure exactly (`!(..)` so a
        // contract-violating NaN takes the same path as the scalar form).
        if !(p[i] >= 1.0) && !(p[i] <= 0.0) {
            u[i] = 1.0 - rng.f64();
            q[i] = 1.0 - p[i];
            live[i] = true;
        }
    }
    let ln_u = fast_ln4(u);
    let ln_q = fast_ln4(q);
    let mut out = [0u64; 4];
    for i in 0..4 {
        out[i] = if live[i] {
            let lq = if p[i] < 1e-8 {
                (-p[i]).ln_1p()
            } else {
                ln_q[i]
            };
            saturating_count(ln_u[i] / lq)
        } else if p[i] >= 1.0 {
            0
        } else {
            u64::MAX
        };
    }
    out
}

/// Binomial(`n`, `p`) sampler.
///
/// Construction validates the parameters once so repeated sampling in a hot
/// loop pays no checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a sampler for `Binomial(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or is NaN.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial probability {p} out of [0,1]"
        );
        Binomial { n, p }
    }

    /// Number of trials `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Work with r = min(p, 1-p) and flip at the end if needed.
        let flipped = p > 0.5;
        let r = if flipped { 1.0 - p } else { p };
        let k = if (n as f64) * r <= 30.0 {
            binv(rng, n, r)
        } else {
            btpe(rng, n, r)
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

/// BINV: exact inverse transform via the pmf recurrence. Expected time
/// `O(1 + n·p)`; requires `n·p` modest to stay within float range.
fn binv(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // q^n underflows only when n·p >> 700, far outside the BINV regime.
    let r0 = (n as f64 * q.ln()).exp();
    loop {
        let mut r = r0;
        let mut u = rng.f64();
        let mut x: u64 = 0;
        // The cutoff guards against float underflow in pathological tails;
        // restarting is statistically sound (rejection of a measure-zero-ish
        // failure event).
        let cutoff = 110.max(10 * (n as f64 * p) as u64 + 20);
        loop {
            if u < r {
                return x.min(n);
            }
            u -= r;
            x += 1;
            if x > cutoff {
                break; // restart outer loop with a fresh uniform
            }
            r *= a / (x as f64) - s;
        }
    }
}

/// BTPE rejection sampler (Kachitvichyanukul & Schmeiser 1988) for
/// `n·p > 30`, `p ≤ 0.5`. Exact.
fn btpe(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let r = p;
    let q = 1.0 - r;
    let nrq = nf * r * q;
    let fm = nf * r + r;
    let m = fm.floor();
    let p1 = (2.195 * nrq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = m + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let mut a = (fm - xl) / (fm - xl * r);
    let lambda_l = a * (1.0 + 0.5 * a);
    a = (xr - fm) / (xr * q);
    let lambda_r = a * (1.0 + 0.5 * a);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u = rng.f64() * p4;
        let mut v = rng.f64();
        let y: f64;
        if u <= p1 {
            // Triangular central region: accept immediately.
            y = (xm - p1 * v + u).floor();
            return y as u64;
        } else if u <= p2 {
            // Parallelogram region.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        let k = (y - m).abs();
        if k <= 20.0 || k >= nrq / 2.0 - 1.0 {
            // Explicit pmf-ratio evaluation by recurrence.
            let s = r / q;
            let aa = s * (nf + 1.0);
            let mut f = 1.0;
            if m < y {
                let mut i = m + 1.0;
                while i <= y {
                    f *= aa / i - s;
                    i += 1.0;
                }
            } else if m > y {
                let mut i = y + 1.0;
                while i <= m {
                    f /= aa / i - s;
                    i += 1.0;
                }
            }
            if v <= f {
                return y as u64;
            }
            continue;
        }

        // Squeeze acceptance/rejection.
        let rho = (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        let t = -k * k / (2.0 * nrq);
        let alpha = v.ln();
        if alpha < t - rho {
            return y as u64;
        }
        if alpha > t + rho {
            continue;
        }

        // Final comparison with the exact log-pmf ratio via Stirling series.
        let x1 = y + 1.0;
        let f1 = m + 1.0;
        let z = nf + 1.0 - m;
        let w = nf - y + 1.0;
        let z2 = z * z;
        let x2 = x1 * x1;
        let f2 = f1 * f1;
        let w2 = w * w;
        let bound = xm * (f1 / x1).ln()
            + (nf - m + 0.5) * (z / w).ln()
            + (y - m) * (w * r / (x1 * q)).ln()
            + stirling_correction(f1, f2)
            + stirling_correction(z, z2)
            + stirling_correction(x1, x2)
            + stirling_correction(w, w2);
        if alpha <= bound {
            return y as u64;
        }
    }
}

/// Truncated Stirling series term used by BTPE's final comparison.
#[inline]
fn stirling_correction(x: f64, x2: f64) -> f64 {
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) / x / 166320.0
}

/// Samples `Poisson(lambda)`.
///
/// Exact (Knuth's product method) for `λ ≤ 30`. For larger `λ` a rounded
/// normal approximation is used; in this codebase only bulk-accounting paths
/// (never per-slot decisions) see large `λ`, where the relative error of the
/// approximation is far below Monte Carlo noise.
///
/// # Panics
///
/// Panics (debug builds) if `lambda` is negative or NaN.
pub fn poisson(rng: &mut SimRng, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0, "poisson rate must be non-negative");
    if lambda <= 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = 1.0;
        loop {
            prod *= rng.f64();
            if prod <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let z = standard_normal(rng);
        rounded_normal_count(lambda, z)
    }
}

/// The rounded-normal branch of [`poisson`]: `⌊λ + √λ·z + ½⌋` clamped into
/// `[0, u64::MAX]`.
///
/// A sufficiently negative draw (`z < -(√λ + ½/√λ)`, a ~5.6σ event at the
/// λ ≈ 30 switchover) makes the continuity-corrected value negative; the
/// count must clamp to 0, never wrap. The top end goes through
/// [`saturating_count`] for the same audit as the geometric samplers
/// (astronomical λ saturates to `u64::MAX` instead of relying on cast
/// semantics). Exposed at crate level so the clamp has a direct
/// regression test that does not depend on hunting a 5.6σ seed.
#[inline]
pub fn rounded_normal_count(lambda: f64, z: f64) -> u64 {
    let x = lambda + lambda.sqrt() * z + 0.5;
    if x < 0.0 {
        0
    } else {
        saturating_count(x)
    }
}

/// Samples a standard normal via Box–Muller (one value per call; simple and
/// branch-free enough for the rare large-λ path).
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u1 = rng.f64();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2 = rng.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn fast_ln_matches_std_ln() {
        let mut rng = SimRng::new(77);
        // Uniforms in (0,1] (the geometric sampler's input) and wide
        // log-uniform positives (window sizes).
        for _ in 0..200_000 {
            let u = 1.0 - rng.f64();
            let rel = (fast_ln(u) - u.ln()).abs() / u.ln().abs().max(1e-300);
            assert!(rel < 1e-13, "u={u}: fast {} vs std {}", fast_ln(u), u.ln());
            let x = (rng.f64() * 1380.0 - 690.0).exp2();
            let rel = (fast_ln(x) - x.ln()).abs() / x.ln().abs().max(1e-13);
            assert!(rel < 1e-13, "x={x}: fast {} vs std {}", fast_ln(x), x.ln());
        }
    }

    #[test]
    fn fast_ln_subnormal_falls_back_to_libm() {
        // Regression (release builds used to return garbage here): the
        // contract is now "finite positive", subnormals included.
        let subnormals = [
            f64::from_bits(1),            // smallest positive subnormal
            f64::from_bits(0xF_FFFF),     // mid subnormal
            f64::MIN_POSITIVE / 2.0,      // large subnormal
            f64::MIN_POSITIVE * 0.999999, // just below the normal range
        ];
        for x in subnormals {
            assert!(
                x > 0.0 && x < f64::MIN_POSITIVE,
                "test input {x} not subnormal"
            );
            assert_eq!(fast_ln(x), x.ln(), "x={x:e}");
        }
        // The boundary itself still takes the fast path.
        let x = f64::MIN_POSITIVE;
        let rel = (fast_ln(x) - x.ln()).abs() / x.ln().abs();
        assert!(rel < 1e-13, "boundary x={x:e}");
    }

    #[test]
    fn fast_ln4_matches_scalar_bitwise() {
        let mut rng = SimRng::new(99);
        for _ in 0..50_000 {
            let lanes = [
                1.0 - rng.f64(),
                (rng.f64() * 1380.0 - 690.0).exp2(),
                rng.f64() + 0.5,
                (rng.f64() * 100.0).exp(),
            ];
            assert_eq!(fast_ln4(lanes), lanes.map(fast_ln), "lanes {lanes:?}");
        }
        // A subnormal lane forces the fallback; the other lanes must be
        // unchanged relative to their scalar results.
        let mixed = [f64::from_bits(3), 0.25, 1.0, 3e200];
        assert_eq!(fast_ln4(mixed), mixed.map(fast_ln));
    }

    #[test]
    fn fast_ln_exact_points() {
        assert_eq!(fast_ln(1.0), 0.0);
        assert!((fast_ln(std::f64::consts::E) - 1.0).abs() < 1e-14);
        assert!((fast_ln(2.0) - std::f64::consts::LN_2).abs() < 1e-15);
        assert!((fast_ln(0.5) + std::f64::consts::LN_2).abs() < 1e-15);
    }

    #[test]
    fn geometric_with_ln_q_matches_geometric() {
        // Same rng state + the same precomputed ln(1-p) must reproduce
        // geometric() draws bit-for-bit.
        for p in [0.9f64, 0.5, 0.1, 1e-3, 1e-9] {
            let ln_q = (-p).ln_1p();
            let mut a = SimRng::new(5);
            let mut b = SimRng::new(5);
            for _ in 0..10_000 {
                assert_eq!(
                    geometric(&mut a, p),
                    geometric_with_ln_q(&mut b, ln_q),
                    "p={p}"
                );
            }
        }
    }

    #[test]
    fn saturation_boundary() {
        // `u64::MAX as f64` rounds up to exactly 2^64 (see saturating_count
        // docs); everything at or past it must saturate, everything below
        // must cast exactly.
        assert_eq!(u64::MAX as f64, 2f64.powi(64));
        assert_eq!(saturating_count(2f64.powi(64)), u64::MAX);
        assert_eq!(saturating_count(f64::INFINITY), u64::MAX);
        assert_eq!(saturating_count(f64::NAN), u64::MAX);
        // Largest f64 below 2^64: 2^64 - 2048, an exact integer.
        let top = f64::from_bits(2f64.powi(64).to_bits() - 1);
        assert_eq!(top, 18_446_744_073_709_549_568.0);
        assert_eq!(saturating_count(top), u64::MAX - 2047);
        // The [2^63, 2^64) band that a wrapping cast would mangle.
        assert_eq!(saturating_count(2f64.powi(63)), 1u64 << 63);
        assert_eq!(saturating_count(2f64.powi(63) * 1.5), 3u64 << 62);
        assert_eq!(saturating_count(0.0), 0);
        assert_eq!(saturating_count(1e18), 1_000_000_000_000_000_000);
    }

    #[test]
    fn geometric_tiny_p_saturation_regression() {
        // p small enough that ln U / ln(1-p) lands at or beyond 2^64: the
        // draw must saturate to "never", not wrap. With p = 1e-300,
        // ln_q ≈ -1e-300 and |ln U| ≥ ~1e-16 ⇒ k ≥ ~1e284 >> 2^64.
        let mut rng = SimRng::new(15);
        let ln_q = -1e-300;
        for _ in 0..1_000 {
            assert_eq!(geometric_with_ln_q(&mut rng, ln_q), u64::MAX);
        }
        // And a regime where draws straddle the [2^63, 2^64) band: every
        // result must be either saturated or an in-range exact cast, and
        // at least one draw must actually exercise the band.
        let mut rng = SimRng::new(16);
        let ln_q = -1.0 / 6e18; // mean ≈ 6e18 ∈ [2^62, 2^64)
        let mut in_band = 0u32;
        for _ in 0..2_000 {
            let k = geometric_with_ln_q(&mut rng, ln_q);
            if (1u64 << 63..u64::MAX).contains(&k) {
                in_band += 1;
            }
        }
        assert!(in_band > 100, "only {in_band} draws hit [2^63, 2^64)");
    }

    #[test]
    fn rounded_normal_count_clamps_at_zero() {
        // Regression for the poisson large-λ branch: a deep-left draw must
        // clamp to 0, never wrap. λ = 31 is just above the switchover.
        assert_eq!(rounded_normal_count(31.0, -10.0), 0);
        assert_eq!(rounded_normal_count(31.0, -6.0), 0);
        assert_eq!(rounded_normal_count(100.0, -1e6), 0);
        // Just inside vs. just outside the clamp.
        assert_eq!(rounded_normal_count(31.0, -5.0), 3);
        assert!(rounded_normal_count(31.0, 0.0) == 31);
        // Top end saturates instead of relying on cast semantics.
        assert_eq!(rounded_normal_count(1e300, 0.0), u64::MAX);
    }

    #[test]
    fn poisson_large_lambda_never_panics_on_extreme_seeds() {
        // Sweep many seeds through the rounded-normal branch; all counts
        // must be valid u64s (the clamp path is hit or not, silently).
        for seed in 0..200 {
            let mut rng = SimRng::new(seed);
            for _ in 0..500 {
                let _ = poisson(&mut rng, 31.0);
            }
        }
    }

    #[test]
    fn geometric_fast_moments_and_edges() {
        let mut rng = SimRng::new(31);
        assert_eq!(geometric_fast(&mut rng, 1.0), 0);
        assert_eq!(geometric_fast(&mut rng, 1.5), 0);
        assert_eq!(geometric_fast(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric_fast(&mut rng, -1.0), u64::MAX);
        let p = 0.2;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| geometric_fast(&mut rng, p) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 20.0).abs() < 1.0, "var {var}");
        // Tiny p exercises the ln_1p branch.
        let mut rng = SimRng::new(32);
        let x = geometric_fast(&mut rng, 1e-12);
        assert!(x > 1_000, "x = {x}");
    }

    #[test]
    fn geometric4_matches_scalar_bitwise() {
        // Same seed ⇒ geometric4 must reproduce four sequential
        // geometric_fast draws exactly, including degenerate lanes that
        // consume no randomness.
        let lane_sets: [[f64; 4]; 5] = [
            [0.3, 0.3, 0.3, 0.3],
            [0.9, 0.01, 1e-10, 0.5],
            [1.0, 0.2, 0.0, 0.7],  // mixed degenerate / live
            [0.0, 1.0, 2.0, -0.5], // all degenerate: no RNG consumed
            [1e-9, 1e-7, 0.999, 0.5],
        ];
        for p in lane_sets {
            let mut a = SimRng::new(77);
            let mut b = SimRng::new(77);
            for _ in 0..5_000 {
                let batch = geometric4(&mut a, p);
                let scalar = [
                    geometric_fast(&mut b, p[0]),
                    geometric_fast(&mut b, p[1]),
                    geometric_fast(&mut b, p[2]),
                    geometric_fast(&mut b, p[3]),
                ];
                assert_eq!(batch, scalar, "p={p:?}");
            }
            // Streams must be in lockstep afterwards too.
            assert_eq!(a.next_u64(), b.next_u64(), "p={p:?}");
        }
    }

    #[test]
    fn geometric_inv_matches_divide_form_statistically_and_guards() {
        let mut rng = SimRng::new(40);
        // Degenerate guards never read inv_ln_q (0 is the cached dummy).
        assert_eq!(geometric_inv(&mut rng, 1.0, 0.0), 0);
        assert_eq!(geometric_inv(&mut rng, 1.5, 0.0), 0);
        assert_eq!(geometric_inv(&mut rng, 0.0, 0.0), u64::MAX);
        assert_eq!(geometric_inv(&mut rng, -1.0, 0.0), u64::MAX);
        let p = 0.2;
        let inv = 1.0 / fast_ln(1.0 - p);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| geometric_inv(&mut rng, p, inv) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 20.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn geometric4_inv_matches_scalar_bitwise() {
        // Same seed ⇒ geometric4_inv must reproduce four sequential
        // geometric_inv draws exactly, including degenerate lanes that
        // consume no randomness.
        let lane_sets: [[f64; 4]; 4] = [
            [0.3, 0.3, 0.3, 0.3],
            [0.9, 0.01, 1e-10, 0.5],
            [1.0, 0.2, 0.0, 0.7],  // mixed degenerate / live
            [0.0, 1.0, 2.0, -0.5], // all degenerate: no RNG consumed
        ];
        for p in lane_sets {
            let inv = p.map(|pi| {
                if pi <= 0.0 || pi >= 1.0 {
                    0.0
                } else if pi < 1e-8 {
                    1.0 / (-pi).ln_1p()
                } else {
                    1.0 / fast_ln(1.0 - pi)
                }
            });
            let mut a = SimRng::new(78);
            let mut b = SimRng::new(78);
            for _ in 0..5_000 {
                let batch = geometric4_inv(&mut a, p, inv);
                let scalar = [
                    geometric_inv(&mut b, p[0], inv[0]),
                    geometric_inv(&mut b, p[1], inv[1]),
                    geometric_inv(&mut b, p[2], inv[2]),
                    geometric_inv(&mut b, p[3], inv[3]),
                ];
                assert_eq!(batch, scalar, "p={p:?}");
            }
            assert_eq!(a.next_u64(), b.next_u64(), "p={p:?}");
        }
    }

    #[test]
    fn geometric_edge_cases() {
        let mut rng = SimRng::new(1);
        assert_eq!(geometric(&mut rng, 1.0), 0);
        assert_eq!(geometric(&mut rng, 2.0), 0);
        assert_eq!(geometric(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric(&mut rng, -1.0), u64::MAX);
    }

    #[test]
    fn geometric_moments() {
        let mut rng = SimRng::new(2);
        let p = 0.2;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| geometric(&mut rng, p) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        // E[X] = (1-p)/p = 4, Var = (1-p)/p^2 = 20.
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 20.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn geometric_tiny_p_is_large() {
        let mut rng = SimRng::new(3);
        let x = geometric(&mut rng, 1e-12);
        assert!(x > 1_000, "x = {x}");
    }

    #[test]
    fn geometric_pmf_head() {
        // P(X = 0) = p.
        let mut rng = SimRng::new(4);
        let p = 0.37;
        let n = 200_000;
        let zeros = (0..n).filter(|_| geometric(&mut rng, p) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - p).abs() < 0.01, "P(X=0) = {frac}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SimRng::new(5);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut rng), 10);
        assert_eq!(Binomial::new(1, 1.0).sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn binomial_invalid_p_panics() {
        Binomial::new(10, 1.5);
    }

    #[test]
    fn binomial_binv_moments() {
        let mut rng = SimRng::new(6);
        let d = Binomial::new(50, 0.1); // np = 5 -> BINV
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn binomial_btpe_moments() {
        let mut rng = SimRng::new(7);
        let d = Binomial::new(1000, 0.2); // np = 200 -> BTPE
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
        assert!((var - 160.0).abs() < 4.0, "var {var}");
    }

    #[test]
    fn binomial_btpe_flipped_moments() {
        let mut rng = SimRng::new(8);
        let d = Binomial::new(500, 0.9); // flips to r = 0.1, nr = 50 -> BTPE
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 450.0).abs() < 0.5, "mean {mean}");
        assert!((var - 45.0).abs() < 2.0, "var {var}");
    }

    #[test]
    fn binomial_btpe_matches_exact_pmf() {
        // Chi-square-ish agreement of BTPE samples with the exact pmf at
        // n = 400, p = 0.1 (np = 40, just above the BINV/BTPE switch).
        let (n, p) = (400u64, 0.1);
        let mut rng = SimRng::new(9);
        let d = Binomial::new(n, p);
        let trials = 300_000usize;
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..trials {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        // Exact pmf via recurrence.
        let q = 1.0 - p;
        let mut pmf = vec![0.0f64; (n + 1) as usize];
        pmf[0] = (n as f64 * q.ln()).exp();
        for k in 1..=n as usize {
            pmf[k] = pmf[k - 1] * ((n as usize - k + 1) as f64 / k as f64) * (p / q);
        }
        // Compare on the bulk (pmf > 1e-4); each bucket within 5 sigma.
        for k in 0..=n as usize {
            if pmf[k] > 1e-4 {
                let expect = pmf[k] * trials as f64;
                let sigma = (expect * (1.0 - pmf[k])).sqrt();
                let diff = (counts[k] as f64 - expect).abs();
                assert!(
                    diff < 5.0 * sigma + 3.0,
                    "k={k} count={} expect={expect:.1} sigma={sigma:.1}",
                    counts[k]
                );
            }
        }
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = SimRng::new(10);
        for &(n, p) in &[(10u64, 0.99), (1000, 0.5), (5, 0.01), (100_000, 0.001)] {
            let d = Binomial::new(n, p);
            for _ in 0..2_000 {
                assert!(d.sample(&mut rng) <= n);
            }
        }
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = SimRng::new(11);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| poisson(&mut rng, 3.0) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = SimRng::new(12);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| poisson(&mut rng, 500.0) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 500.0).abs() < 1.0, "mean {mean}");
        assert!((var - 500.0).abs() < 15.0, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SimRng::new(13);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(14);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
