//! # lowsense-sim — slotted multiple-access channel simulator
//!
//! The substrate for reproducing *"Fully Energy-Efficient Randomized
//! Backoff: Slow Feedback Loops Yield Fast Contention Resolution"* (Bender,
//! Fineman, Gilbert, Kuszmaul, Young — PODC 2024): a discrete-slot
//! multiple-access channel with **ternary feedback**, adversarial packet
//! **arrivals**, adaptive and reactive **jamming**, and exact simulation
//! engines.
//!
//! The model (paper §1.1): time is slotted; each active packet per slot
//! either sleeps, listens, or sends. A slot with exactly one sender is a
//! *success* and the sender departs; with two or more senders, a
//! *collision*; jammed slots are noisy for everyone. Listeners learn only
//! the ternary outcome (empty / success / noisy) under the default model;
//! [`feedback`] also provides the related papers' channel models
//! (no collision detection, costly collisions) as first-class
//! [`FeedbackModel`](feedback::FeedbackModel)s every engine is generic
//! over.
//!
//! ## Quick start
//!
//! ```
//! use lowsense_sim::prelude::*;
//! use lowsense_sim::dist::geometric;
//!
//! /// Slotted-ALOHA-style protocol: send with fixed probability.
//! #[derive(Clone)]
//! struct Aloha(f64);
//!
//! impl Protocol for Aloha {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(geometric(rng, self.0))
//!     }
//! }
//!
//! impl SparseProtocol for Aloha {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! let result = run_sparse(
//!     &SimConfig::new(7),
//!     Batch::new(32),
//!     NoJam,
//!     |_rng| Aloha(1.0 / 32.0),
//!     &mut NoHooks,
//! );
//! assert_eq!(result.totals.successes, 32);
//! assert!(result.totals.throughput() > 0.05);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`rng`], [`dist`] | deterministic PRNG + exact samplers |
//! | [`time`], [`packet`], [`feedback`] | model vocabulary |
//! | [`protocol`] | [`Protocol`](protocol::Protocol) / [`SparseProtocol`](protocol::SparseProtocol) traits |
//! | [`arrivals`], [`jamming`] | adversary strategies |
//! | [`engine`] | shared [`EngineCore`](engine::EngineCore) + dense / sparse / grouped strategies |
//! | [`scenario`] | declarative run descriptions + the canonical scenario registry |
//! | [`metrics`] | totals, per-packet stats, trajectory series |
//! | [`hooks`] | zero-cost analysis callbacks |
//! | [`trace`] | bounded event log for debugging protocol implementations |

// Deny, not forbid: the one sanctioned exception is the effect-free
// `prefetcht0` hint in `engine::table` (see `prefetch_read` there), which
// carries its own narrowly-scoped `allow`.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod dist;
pub mod engine;
pub mod feedback;
pub mod hooks;
pub mod jamming;
pub mod metrics;
pub mod packet;
pub mod protocol;
pub mod rng;
pub mod scenario;
pub mod time;
pub mod trace;
pub mod view;

/// Convenient glob import for simulation code.
pub mod prelude {
    pub use crate::arrivals::{
        AdversarialQueuing, ArrivalProcess, BacklogTriggered, Batch, Bernoulli, Placement,
        PoissonArrivals, Trace,
    };
    pub use crate::config::{Limits, SimConfig};
    pub use crate::engine::{
        run_dense, run_dense_model, run_grouped, run_grouped_model, run_sparse, run_sparse_flat,
        run_sparse_flat_model, run_sparse_model, run_sparse_reference, run_sparse_reference_model,
        SymmetricProtocol,
    };
    pub use crate::feedback::{
        resolve_slot, ChannelModel, CostlyCollisions, Feedback, FeedbackModel, Intent,
        NoCollisionDetection, Observation, SlotOutcome, Ternary,
    };
    pub use crate::hooks::{Both, EngineSample, Hooks, NoHooks};
    pub use crate::jamming::{
        BacklogJam, BudgetedRandomJam, Jammer, NoJam, PeriodicBurst, RandomJam, ReactiveAny,
        ReactiveTargeted, WindowPrefixJam, WithReactive,
    };
    pub use crate::metrics::{Metrics, MetricsConfig, RunResult, SeriesPoint, Totals};
    pub use crate::packet::{PacketId, PacketStats};
    pub use crate::protocol::{Protocol, SparseProtocol};
    pub use crate::rng::SimRng;
    pub use crate::scenario::{scenarios, DynScenario, Scenario};
    pub use crate::time::Slot;
    pub use crate::view::SystemView;
}
