//! The adversary's view of the system.
//!
//! The paper's *adaptive* adversary decides arrivals and jamming for slot `t`
//! from the entire system state up to the end of slot `t − 1` (§1.1). The
//! engines hand adversary strategies a [`SystemView`] carrying exactly that:
//! aggregate state as of the end of the previous slot. Reactive jamming
//! (§1.3) additionally sees the current slot's sender set, which the
//! [`Jammer`](crate::jamming::Jammer) trait models separately.

use crate::metrics::Totals;
use crate::time::Slot;

/// Read-only snapshot handed to arrival processes and jammers.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// The slot the adversary is deciding about.
    pub slot: Slot,
    /// Number of packets currently in the system (as of end of `slot − 1`).
    pub backlog: u64,
    /// Current contention `C = Σ_u p_u` — the adaptive adversary knows all
    /// packet state, so exposing the aggregate is sound.
    pub contention: f64,
    /// Cumulative counters up to the end of the previous slot.
    pub totals: &'a Totals,
}

impl<'a> SystemView<'a> {
    /// Whether any packet is active.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.backlog > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_activity() {
        let totals = Totals::default();
        let v = SystemView {
            slot: 3,
            backlog: 0,
            contention: 0.0,
            totals: &totals,
        };
        assert!(!v.is_active());
        let v2 = SystemView { backlog: 2, ..v };
        assert!(v2.is_active());
    }
}
