//! Discrete time.
//!
//! The channel model divides time into synchronized slots, each wide enough
//! for one packet transmission (paper §1.1). Slots are plain `u64` indices;
//! the alias exists to keep signatures self-describing.

/// Index of a time slot. Slot 0 is the first slot of the execution.
pub type Slot = u64;

/// Sentinel for "no such slot" / "never" in delay arithmetic.
pub const NEVER: Slot = u64::MAX;

/// Saturating `slot + delay`, mapping overflow to [`NEVER`].
#[inline]
pub fn offset(slot: Slot, delay: u64) -> Slot {
    slot.saturating_add(delay)
}

/// Resolves a protocol's wake delay (see
/// [`Protocol::next_wake`](crate::protocol::Protocol::next_wake)) into an
/// absolute wake slot, or `None` when the packet never wakes.
///
/// Both "never" encodings — a `None` delay and the [`NEVER`] sentinel used
/// by [`geometric`](crate::dist::geometric) — collapse here, and so does a
/// finite delay whose absolute slot saturates past the representable
/// horizon (such an event could never be processed; scheduling it would
/// park it in a wake set forever). Both sparse engines route every
/// scheduling decision through this one helper so they stay bit-identical.
#[inline]
pub fn wake_slot(from: Slot, delay: Option<u64>) -> Option<Slot> {
    match delay {
        Some(d) if d != NEVER => match offset(from, d) {
            NEVER => None,
            s => Some(s),
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_saturates() {
        assert_eq!(offset(5, 10), 15);
        assert_eq!(offset(NEVER - 1, 10), NEVER);
        assert_eq!(offset(3, NEVER), NEVER);
    }
}
