//! Discrete time.
//!
//! The channel model divides time into synchronized slots, each wide enough
//! for one packet transmission (paper §1.1). Slots are plain `u64` indices;
//! the alias exists to keep signatures self-describing.

/// Index of a time slot. Slot 0 is the first slot of the execution.
pub type Slot = u64;

/// Sentinel for "no such slot" / "never" in delay arithmetic.
pub const NEVER: Slot = u64::MAX;

/// Saturating `slot + delay`, mapping overflow to [`NEVER`].
#[inline]
pub fn offset(slot: Slot, delay: u64) -> Slot {
    slot.saturating_add(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_saturates() {
        assert_eq!(offset(5, 10), 15);
        assert_eq!(offset(NEVER - 1, 10), NEVER);
        assert_eq!(offset(3, NEVER), NEVER);
    }
}
