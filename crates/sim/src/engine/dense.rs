//! The dense (slot-by-slot) reference engine.
//!
//! Simulates every active slot explicitly: each active packet draws an
//! [`Intent`] per slot, the channel resolves, observations are delivered.
//! Cost is `O(active packets)` per slot, so this engine is the semantic
//! oracle for tests and small runs; large-scale experiments use the
//! [sparse engine](crate::engine::sparse), which is validated against this
//! one.
//!
//! The engine is a stepping strategy over the shared
//! [`EngineCore`]: it owns only the packet table
//! and the slot-by-slot visit order.

use crate::arrivals::ArrivalProcess;
use crate::config::SimConfig;
use crate::engine::core::EngineCore;
use crate::feedback::{FeedbackModel, Intent, Observation, SlotOutcome, Ternary};
use crate::hooks::Hooks;
use crate::jamming::Jammer;
use crate::metrics::RunResult;
use crate::packet::PacketId;
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::time::Slot;

/// Runs a dense simulation.
///
/// `factory` creates the protocol state for each injected packet. The run
/// ends when the arrival process is exhausted and no packet remains, or when
/// a [limit](crate::config::Limits) trips.
///
/// # Examples
///
/// ```
/// use lowsense_sim::prelude::*;
///
/// // Two packets with a fixed send probability resolve quickly.
/// #[derive(Clone)]
/// struct Fixed(f64);
/// impl Protocol for Fixed {
///     fn intent(&mut self, rng: &mut SimRng) -> Intent {
///         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
///     }
///     fn observe(&mut self, _obs: &Observation) {}
///     fn send_probability(&self) -> f64 { self.0 }
/// }
///
/// let result = run_dense(
///     &SimConfig::new(1),
///     Batch::new(2),
///     NoJam,
///     |_rng| Fixed(0.3),
///     &mut NoHooks,
/// );
/// assert_eq!(result.totals.successes, 2);
/// ```
pub fn run_dense<P, F, A, J, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: Protocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    H: Hooks<P>,
{
    run_dense_model(cfg, arrivals, jammer, Ternary, factory, hooks)
}

/// Runs a dense simulation under an explicit [`FeedbackModel`].
///
/// [`run_dense`] is this with the [`Ternary`] model; both monomorphize, so
/// the ternary slot loop is unchanged machine code.
pub fn run_dense_model<P, F, A, J, M, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    mut factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: Protocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
{
    let mut core = EngineCore::with_model(cfg, arrivals, jammer, model);

    // Packet table indexed by id; `active` lists live ids with `pos` as the
    // reverse index so departures are O(1).
    let mut packets: Vec<Option<P>> = Vec::new();
    let mut active: Vec<PacketId> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();
    let mut contention = 0.0f64;

    let mut senders: Vec<PacketId> = Vec::new();
    let mut listeners: Vec<PacketId> = Vec::new();

    let mut t: Slot = 0;

    loop {
        if !core.within_limits(t) {
            break;
        }
        // Peek the next arrival with the pre-slot view.
        let next_arrival = core.peek_arrival(t, active.len() as u64, contention);
        if active.is_empty() {
            match next_arrival {
                Some((ta, _)) if ta > t => {
                    // Inactive gap: skipped, not accounted (paper ignores
                    // inactive slots).
                    t = ta;
                    continue;
                }
                Some(_) => {}
                None => break,
            }
        }

        // Inject all arrival events that target slot t.
        while let Some((ta, count)) = core.peek_arrival(t, active.len() as u64, contention) {
            if ta != t {
                break;
            }
            core.consume_arrival();
            for _ in 0..count {
                let id = core.note_inject(t);
                let p = factory(&mut core.rng);
                contention += p.send_probability();
                hooks.on_inject(t, id, &p);
                debug_assert_eq!(packets.len(), id.index());
                packets.push(Some(p));
                pos.push(active.len() as u32);
                active.push(id);
            }
        }

        // Draw per-packet intents.
        senders.clear();
        listeners.clear();
        for &id in &active {
            let p = packets[id.index()].as_mut().expect("active packet state");
            match p.intent(&mut core.rng) {
                Intent::Send => senders.push(id),
                Intent::Listen => listeners.push(id),
                Intent::Sleep => {}
            }
        }

        let jam = core.jam_decision(t, active.len() as u64, contention, &senders);
        let outcome = core.resolve(t, jam, &senders);
        hooks.on_slot(t, &outcome);
        let fb = model.listener_feedback(&outcome);

        // Pure listeners.
        for &id in &listeners {
            core.metrics.note_listen(id);
            let slot_obs = Observation::listener(t, fb);
            let p = packets[id.index()].as_mut().expect("listener state");
            let before = p.clone();
            p.observe(&slot_obs);
            contention += p.send_probability() - before.send_probability();
            hooks.on_observe(t, id, &before, p);
        }

        // Senders (the winner, if any, departs after observing).
        let winner = match outcome {
            SlotOutcome::Success { id } => Some(id),
            _ => None,
        };
        for &id in &senders {
            core.metrics.note_send(id);
            let succeeded = winner == Some(id);
            let slot_obs =
                Observation::sender(t, model.sender_feedback(&outcome, succeeded), succeeded);
            let p = packets[id.index()].as_mut().expect("sender state");
            let before = p.clone();
            p.observe(&slot_obs);
            contention += p.send_probability() - before.send_probability();
            hooks.on_observe(t, id, &before, p);
        }
        if let Some(id) = winner {
            let p = packets[id.index()].take().expect("winner state");
            contention -= p.send_probability();
            hooks.on_depart(t, id, &p);
            core.note_depart(id, t);
            // O(1) removal from `active` via the position index.
            let i = pos[id.index()] as usize;
            let last = *active.last().expect("non-empty active list");
            active.swap_remove(i);
            if i < active.len() {
                pos[last.index()] = i as u32;
            }
        }

        core.checkpoint(t, active.len() as u64, contention);
        t += 1;
        core.step_done();
    }

    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{Batch, Trace};
    use crate::config::Limits;
    use crate::hooks::NoHooks;
    use crate::jamming::{NoJam, PeriodicBurst, RandomJam};
    use crate::metrics::MetricsConfig;

    /// Always-send protocol: a batch of one succeeds instantly; more than
    /// one livelocks (bounded by limits).
    #[derive(Clone)]
    struct Greedy;
    impl Protocol for Greedy {
        fn intent(&mut self, _rng: &mut SimRng) -> Intent {
            Intent::Send
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            1.0
        }
    }

    /// Memoryless p-sender.
    #[derive(Clone)]
    struct Fixed(f64);
    impl Protocol for Fixed {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(self.0) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            self.0
        }
    }

    #[test]
    fn single_greedy_packet_succeeds_immediately() {
        let r = run_dense(
            &SimConfig::new(1),
            Batch::new(1),
            NoJam,
            |_| Greedy,
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 1);
        assert_eq!(r.totals.active_slots, 1);
        assert_eq!(r.totals.sends, 1);
        assert!(r.drained());
        assert_eq!(r.latencies(), vec![1]);
    }

    #[test]
    fn two_greedy_packets_livelock_until_limit() {
        let cfg = SimConfig::new(1).limits(Limits::until_slot(99));
        let r = run_dense(&cfg, Batch::new(2), NoJam, |_| Greedy, &mut NoHooks);
        assert_eq!(r.totals.successes, 0);
        assert_eq!(r.totals.collision_slots, 100);
        assert_eq!(r.totals.backlog(), 2);
    }

    #[test]
    fn batch_of_fixed_senders_drains() {
        let r = run_dense(
            &SimConfig::new(2),
            Batch::new(20),
            NoJam,
            |_| Fixed(0.05),
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 20);
        assert!(r.drained());
        // Slot classification partitions active slots.
        let t = &r.totals;
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active
        );
    }

    #[test]
    fn inactive_gaps_are_not_accounted() {
        // Two single-packet batches far apart: active slots ≪ wall clock.
        let r = run_dense(
            &SimConfig::new(3),
            Trace::new(vec![(0, 1), (1000, 1)]),
            NoJam,
            |_| Greedy,
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 2);
        assert_eq!(r.totals.active_slots, 2);
        assert_eq!(r.totals.last_slot, 1000);
    }

    #[test]
    fn jammed_slots_block_success_and_are_counted() {
        // Jam every slot: the greedy singleton can never succeed.
        let cfg = SimConfig::new(4).limits(Limits::until_slot(49));
        let r = run_dense(
            &cfg,
            Batch::new(1),
            PeriodicBurst::new(1, 1, 0),
            |_| Greedy,
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 0);
        assert_eq!(r.totals.jammed_active, 50);
    }

    #[test]
    fn random_jam_rate_reflected_in_totals() {
        let cfg = SimConfig::new(5).limits(Limits::until_slot(20_000));
        let r = run_dense(
            &cfg,
            Batch::new(2),
            RandomJam::new(0.25),
            |_| Fixed(0.0001), // nearly never sends; slots are mostly empty/jam
            &mut NoHooks,
        );
        let frac = r.totals.jammed_active as f64 / r.totals.active_slots as f64;
        assert!((frac - 0.25).abs() < 0.02, "jam fraction {frac}");
    }

    #[test]
    fn energy_accounting_matches_outcomes() {
        let r = run_dense(
            &SimConfig::new(6),
            Batch::new(10),
            NoJam,
            |_| Fixed(0.1),
            &mut NoHooks,
        );
        // Every success is one send; collisions are ≥2 sends each.
        let t = &r.totals;
        assert!(t.sends >= t.successes + 2 * t.collision_slots);
        assert_eq!(t.listens, 0, "Fixed never listens");
        let per_packet: u64 = r.access_counts().iter().sum();
        assert_eq!(per_packet, t.sends);
    }

    #[test]
    fn series_checkpoints_record_trajectory() {
        let cfg = SimConfig::new(7).metrics(MetricsConfig::default().with_series(1.5));
        let r = run_dense(&cfg, Batch::new(50), NoJam, |_| Fixed(0.02), &mut NoHooks);
        assert!(!r.series.is_empty());
        // Implicit throughput at the end equals overall throughput (drained).
        assert!(r.drained());
        let last = r.series.last().unwrap();
        assert!(last.active_slots <= r.totals.active_slots);
        // Backlog is monotonically drained for a batch workload.
        let first = r.series.first().unwrap();
        assert!(first.backlog >= last.backlog);
    }

    #[test]
    fn hooks_see_every_transition() {
        #[derive(Default)]
        struct Count {
            injects: u64,
            departs: u64,
            observes: u64,
            slots: u64,
        }
        impl Hooks<Fixed> for Count {
            fn on_inject(&mut self, _t: Slot, _id: PacketId, _s: &Fixed) {
                self.injects += 1;
            }
            fn on_depart(&mut self, _t: Slot, _id: PacketId, _s: &Fixed) {
                self.departs += 1;
            }
            fn on_observe(&mut self, _t: Slot, _id: PacketId, _b: &Fixed, _a: &Fixed) {
                self.observes += 1;
            }
            fn on_slot(&mut self, _t: Slot, _o: &SlotOutcome) {
                self.slots += 1;
            }
        }
        let mut hooks = Count::default();
        let r = run_dense(
            &SimConfig::new(8),
            Batch::new(10),
            NoJam,
            |_| Fixed(0.1),
            &mut hooks,
        );
        assert_eq!(hooks.injects, 10);
        assert_eq!(hooks.departs, 10);
        assert_eq!(hooks.slots, r.totals.active_slots);
        // Every send produced exactly one observation (Fixed never listens).
        assert_eq!(hooks.observes, r.totals.sends);
    }

    #[test]
    fn costly_collisions_dilate_the_clock_but_not_the_logic() {
        use crate::feedback::CostlyCollisions;
        let cfg = SimConfig::new(1).limits(Limits::until_slot(99));
        let r = run_dense(&cfg, Batch::new(2), NoJam, |_| Greedy, &mut NoHooks);
        let rc = run_dense_model(
            &cfg,
            Batch::new(2),
            NoJam,
            CostlyCollisions::new(0.5),
            |_| Greedy,
            &mut NoHooks,
        );
        // Same logical trajectory: 100 two-way collisions either way.
        assert_eq!(r.totals.collision_slots, 100);
        assert_eq!(rc.totals.collision_slots, 100);
        assert_eq!(rc.totals.sends, r.totals.sends);
        // Each 2-way collision charges ceil(0.5·2) = 1 extra physical slot.
        assert_eq!(rc.totals.overhead_slots, 100);
        // The final slot is recorded at physical time: logical 99 shifted by
        // the 99 collisions resolved before it.
        assert_eq!(r.totals.last_slot, 99);
        assert_eq!(rc.totals.last_slot, 99 + 99);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_dense(
                &SimConfig::new(99),
                Batch::new(30),
                RandomJam::new(0.1),
                |_| Fixed(0.05),
                &mut NoHooks,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.access_counts(), b.access_counts());
    }
}
