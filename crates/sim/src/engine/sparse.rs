//! The sparse (event-driven) engine.
//!
//! Exploits the [`SparseProtocol`] contract — per-packet state is frozen
//! between channel accesses — to jump directly from access to access. Slots
//! in which no packet accesses the channel are provably silent for every
//! would-be listener, so they are accounted in bulk (`O(1)` per gap, with
//! jam counts drawn from the jammer's range sampler) instead of simulated.
//!
//! Scheduling runs on the hierarchical timing-wheel
//! [`WakeQueue`](crate::engine::wake) rather than a binary heap, so a
//! channel access costs `O(1)` amortized bookkeeping instead of `O(log n)`
//! scattered heap traffic even at million-station horizons; per-packet
//! state lives in the epoch-compacted
//! [`PacketTable`], which keeps the live
//! population dense in memory as the run drains; and the listener loop runs
//! four packets at a time through the protocol layer's batched observe/draw
//! surface ([`SparseProtocol::observe4`] / [`SparseProtocol::next_wake4`]),
//! which evaluates the per-listen transcendentals SIMD-wide (see
//! `BENCH_engine.json`, which records this engine and the reference on a
//! bit-identical workload).
//!
//! The loop body is generic over the wake set (the `WakeSet` trait): the
//! production entry point [`run_sparse`] instantiates it with the wheel,
//! while [`run_sparse_flat`] runs the *same* body over the retained flat
//! calendar ring ([`FlatWakeQueue`](crate::engine::wake_flat)) — a second,
//! structurally different oracle used by the three-way equivalence tests.
//! Within a slot, the passes address states by per-slot *position*, with
//! two position spaces behind one generic pass body (`slot_passes`, over
//! the [`SlotArena`](crate::engine::stage) arena trait). On the **direct**
//! path the split pass resolves each participant's id → dense index
//! **once**, and the observe/wake passes touch only the hot state lane
//! (see [`table`](crate::engine::table)), never re-reading the remap. On
//! the **staged** path — taken when the participant set is large *and* the
//! state lane has outgrown the cache
//! ([`staging_applies`]) — the
//! engine radix-sorts the participants by dense address, **gathers** their
//! states into prefetched contiguous scratch sweeps, runs the same
//! passes against the scratch in canonical insertion order via the inverse
//! permutation, and **scatters** the mutated states back before the depart
//! path reads the table (see [`stage`](crate::engine::stage)). Either way,
//! handles never span a compaction: the engine compacts only at
//! end-of-slot, after a depart.
//!
//! Within one slot, packets are processed in **insertion order** — the
//! order their wake events were scheduled — which the calendar queue hands
//! back for free, with no per-slot sort. The previous heap-based loop is
//! retained as
//! [`run_sparse_reference`](crate::engine::sparse_reference::run_sparse_reference)
//! with its heap re-keyed on `(slot, insertion_seq)` so it pops the exact
//! same order, and the `sparse_equivalence` tests pin this engine to
//! **bit-identical** [`RunResult`]s against it: same RNG draw order, same
//! floating-point accumulation order, same hook sequence. Any edit here
//! must preserve that ordering exactly.
//!
//! Cost: `O(accesses + arrivals + event slots · log participants)` in
//! total. Because `LOW-SENSING BACKOFF` performs only polylog accesses per
//! packet — the very property the paper proves — million-packet Monte Carlo
//! runs are cheap. Exactness relative to the dense engine is enforced by
//! the cross-engine statistical tests.

use crate::arrivals::ArrivalProcess;
use crate::config::SimConfig;
use crate::engine::core::EngineCore;
use crate::engine::stage::{staging_applies, SlotArena, StagePlan};
use crate::engine::table::PacketTable;
use crate::engine::wake::{cap_scratch, WakeQueue, WakeSet, SCRATCH_CAP};
use crate::engine::wake_flat::FlatWakeQueue;
use crate::feedback::{FeedbackModel, Observation, SlotOutcome, Ternary};
use crate::hooks::{EngineSample, Hooks};
use crate::jamming::Jammer;
use crate::metrics::{RunResult, Totals};
use crate::packet::PacketId;
use crate::protocol::SparseProtocol;
use crate::rng::SimRng;
use crate::time::{offset, wake_slot, Slot};

/// Runs an event-driven simulation.
///
/// Semantically equivalent to [`run_dense`](crate::engine::dense::run_dense)
/// for protocols honouring the [`SparseProtocol`] contract, but exponentially
/// faster when packets sleep most of the time.
///
/// # Examples
///
/// ```
/// use lowsense_sim::prelude::*;
/// use lowsense_sim::dist::geometric;
///
/// #[derive(Clone)]
/// struct Fixed(f64);
/// impl Protocol for Fixed {
///     fn intent(&mut self, rng: &mut SimRng) -> Intent {
///         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
///     }
///     fn observe(&mut self, _obs: &Observation) {}
///     fn send_probability(&self) -> f64 { self.0 }
///     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
///         Some(geometric(rng, self.0))
///     }
/// }
/// impl SparseProtocol for Fixed {
///     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
/// }
///
/// let result = run_sparse(
///     &SimConfig::new(1),
///     Batch::new(4),
///     NoJam,
///     |_rng| Fixed(0.05),
///     &mut NoHooks,
/// );
/// assert_eq!(result.totals.successes, 4);
/// ```
pub fn run_sparse<P, F, A, J, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    H: Hooks<P>,
{
    run_sparse_with::<P, F, A, J, Ternary, H, WakeQueue>(
        cfg, arrivals, jammer, Ternary, factory, hooks,
    )
}

/// [`run_sparse`] under an explicit [`FeedbackModel`].
///
/// The model is a monomorphization parameter: dispatch happens once per
/// run, never inside the slot loop, and the [`Ternary`] instantiation is
/// the exact pre-model machine code.
pub fn run_sparse_model<P, F, A, J, M, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
{
    run_sparse_with::<P, F, A, J, M, H, WakeQueue>(cfg, arrivals, jammer, model, factory, hooks)
}

/// [`run_sparse`], but scheduling on the retained flat calendar ring
/// ([`crate::engine::wake_flat::FlatWakeQueue`]) instead of
/// the hierarchical wheel.
///
/// Same generic loop body, different wake set: this is a *validation*
/// entry point, the second oracle of the three-way equivalence suite
/// (wheel vs flat ring vs heap reference, all bit-identical). Benchmarks
/// and production callers should use [`run_sparse`]; the flat ring's far
/// heap degrades on the long-gap workloads the wheel exists for.
pub fn run_sparse_flat<P, F, A, J, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    H: Hooks<P>,
{
    run_sparse_with::<P, F, A, J, Ternary, H, FlatWakeQueue>(
        cfg, arrivals, jammer, Ternary, factory, hooks,
    )
}

/// [`run_sparse_flat`] under an explicit [`FeedbackModel`], for the
/// three-way equivalence suite's non-ternary runs.
pub fn run_sparse_flat_model<P, F, A, J, M, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
{
    run_sparse_with::<P, F, A, J, M, H, FlatWakeQueue>(cfg, arrivals, jammer, model, factory, hooks)
}

/// The slot's listener (observe + wake) and sender passes, generic over
/// the [`SlotArena`] the participant states live in: the packet table on
/// the direct path (a position is a dense-lane index), the staged scratch
/// on the staged path (a position is a scratch index, routed through the
/// stage plan's inverse permutation by the caller). Both paths are this
/// one function monomorphized, so every RNG draw, observation, hook call,
/// and contention accumulation happens in the same canonical insertion
/// order on either path — bit-identity between the paths is by
/// construction, not by keeping two loop bodies in sync.
///
/// The listener loop is split into an observation pass, a wake-draw pass,
/// and a schedule pass, each sweeping the whole cohort before the next
/// starts. Observations draw no randomness and scheduling draws nothing
/// and touches no state, so the only RNG draws are the wake draws — and
/// those run in the slot's insertion order in all three shapes
/// (interleaved reference loop, two-pass, three-pass): the RNG stream,
/// the hook sequence, the contention accumulation order, and the
/// `queue.schedule` call order are all exactly the reference oracle's.
/// The observe and wake passes run four listeners at a time through the
/// protocol's batched observe/draw surface (`observe4` / `next_wake4`),
/// whose contract is bit-identical lanes in cohort order; the wake pass
/// parks its `wake_slot` results in the caller's `wakes` buffer so the
/// schedule pass streams the queue without re-touching the state arena.
/// Cohort collection is trivial: `listeners` is already in the slot's
/// insertion order (the reference oracle's processing order), so the
/// cohorts are consecutive quadruples, with the tail (< 4 packets) going
/// through the scalar methods the defaults fall back to anyway.
#[allow(clippy::too_many_arguments)]
fn slot_passes<P, A, J, M, H, Q, S>(
    arena: &mut S,
    core: &mut EngineCore<A, J, M>,
    queue: &mut Q,
    hooks: &mut H,
    te: Slot,
    outcome: &SlotOutcome,
    model: M,
    contention: &mut f64,
    senders: &[PacketId],
    senders_pos: &[u32],
    listeners: &[PacketId],
    listeners_pos: &[u32],
    wakes: &mut Vec<Option<Slot>>,
) where
    P: SparseProtocol,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
    Q: WakeSet,
    S: SlotArena<P>,
{
    let fb = model.listener_feedback(outcome);
    let obs = Observation::listener(te, fb);

    // Observation pass: every listener sees the slot's feedback before any
    // wake draw happens. Observations draw no randomness, so reordering
    // them ahead of the draws leaves the RNG stream untouched, and the
    // contention f64s are added in the same insertion order as the
    // reference loop.
    let mut quads = listeners.chunks_exact(4);
    let mut quads_pos = listeners_pos.chunks_exact(4);
    for (quad, quad_pos) in quads.by_ref().zip(quads_pos.by_ref()) {
        let mut lanes = arena.four_at([quad_pos[0], quad_pos[1], quad_pos[2], quad_pos[3]]);
        if hooks.wants_observe() {
            let before = [
                lanes[0].clone(),
                lanes[1].clone(),
                lanes[2].clone(),
                lanes[3].clone(),
            ];
            P::observe4(&mut lanes, &obs);
            for (k, &id) in quad.iter().enumerate() {
                core.metrics.note_listen(id);
                *contention += lanes[k].send_probability() - before[k].send_probability();
                hooks.on_observe(te, id, &before[k], &*lanes[k]);
            }
        } else {
            // Inert hooks: the `before` states exist only to feed
            // `on_observe`, so skip the clones and keep just the prior
            // send probabilities. The contention update below adds the
            // exact same f64s in the exact same order as the cloning
            // branch, so results stay bit-identical.
            let before_sp = [
                lanes[0].send_probability(),
                lanes[1].send_probability(),
                lanes[2].send_probability(),
                lanes[3].send_probability(),
            ];
            P::observe4(&mut lanes, &obs);
            for (k, &id) in quad.iter().enumerate() {
                core.metrics.note_listen(id);
                *contention += lanes[k].send_probability() - before_sp[k];
            }
        }
    }
    for (&id, &pos) in quads.remainder().iter().zip(quads_pos.remainder()) {
        core.metrics.note_listen(id);
        let p = arena.at_mut(pos);
        if hooks.wants_observe() {
            let before = p.clone();
            p.observe(&obs);
            *contention += p.send_probability() - before.send_probability();
            hooks.on_observe(te, id, &before, p);
        } else {
            // Same clone elision as the quad path (see above): identical
            // arithmetic, no state pair materialized for inert hooks.
            let before_sp = p.send_probability();
            p.observe(&obs);
            *contention += p.send_probability() - before_sp;
        }
    }

    // Wake-draw pass: the slot's only RNG draws, in the slot's insertion
    // order — exactly the reference loop's stream. The resolved wake
    // slots park in `wakes` (parallel to `listeners`) instead of going to
    // the queue one by one.
    wakes.clear();
    let mut quads_pos = listeners_pos.chunks_exact(4);
    for quad_pos in quads_pos.by_ref() {
        let mut lanes = arena.four_at([quad_pos[0], quad_pos[1], quad_pos[2], quad_pos[3]]);
        let delays = P::next_wake4(&mut lanes, &mut core.rng);
        wakes.extend(delays.iter().map(|&d| wake_slot(te + 1, d)));
    }
    for &pos in quads_pos.remainder() {
        let delay = arena.at_mut(pos).next_wake(&mut core.rng);
        wakes.push(wake_slot(te + 1, delay));
    }

    // Schedule pass: pure queue traffic, no state-arena or RNG touches,
    // same `queue.schedule` call sequence as the reference loop (listener
    // insertion order), so every bucket's insertion order is preserved.
    // The lookahead hints the bucket a few pushes out — a dense slot
    // scatters its schedules across the whole wheel, so each push would
    // otherwise stall on a cold bucket line.
    for (i, (&id, &wake)) in listeners.iter().zip(wakes.iter()).enumerate() {
        if let Some(&Some(ahead)) = wakes.get(i + 16) {
            queue.prefetch_schedule(ahead);
        }
        if let Some(slot) = wake {
            queue.schedule(slot, id.0);
        }
    }

    let winner = match *outcome {
        SlotOutcome::Success { id } => Some(id),
        _ => None,
    };
    for (&id, &pos) in senders.iter().zip(senders_pos) {
        core.metrics.note_send(id);
        let succeeded = winner == Some(id);
        let obs = Observation::sender(te, model.sender_feedback(outcome, succeeded), succeeded);
        let p = arena.at_mut(pos);
        if hooks.wants_observe() {
            let before = p.clone();
            p.observe(&obs);
            *contention += p.send_probability() - before.send_probability();
            hooks.on_observe(te, id, &before, p);
        } else {
            // Same clone elision as the listener paths above.
            let before_sp = p.send_probability();
            p.observe(&obs);
            *contention += p.send_probability() - before_sp;
        }
        if !succeeded {
            let delay = p.next_wake(&mut core.rng);
            if let Some(slot) = wake_slot(te + 1, delay) {
                queue.schedule(slot, id.0);
            }
        }
    }
}

/// The sparse loop body, generic over the wake set. Every ordering-visible
/// statement is shared by both instantiations, so agreement between
/// [`run_sparse`] and [`run_sparse_flat`] pins exactly the queues' drain
/// orders against each other.
fn run_sparse_with<P, F, A, J, M, H, Q>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    mut factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
    Q: WakeSet,
{
    let mut core = EngineCore::with_model(cfg, arrivals, jammer, model);

    // Epoch-compacted packet table: live states stay dense in memory as
    // the run drains, and the id → dense-index remap keeps original ids
    // valid for the queue, hooks, metrics, and traces throughout.
    let mut packets: PacketTable<P> = PacketTable::new();
    // Each live packet has exactly one scheduled access event in the queue.
    let mut queue = Q::new();
    let mut active_count: u64 = 0;
    let mut contention = 0.0f64;

    let mut participants: Vec<u32> = Vec::new();
    let mut senders: Vec<PacketId> = Vec::new();
    let mut listeners: Vec<PacketId> = Vec::new();
    // Per-slot arena positions, parallel to `senders` / `listeners`: dense
    // indices on the direct path (the id → index remap is paid once in the
    // split pass), scratch indices on the staged path. The observe and
    // wake passes index the slot's arena directly either way.
    let mut senders_pos: Vec<u32> = Vec::new();
    let mut listeners_pos: Vec<u32> = Vec::new();
    // Resolved wake slots, parallel to `listeners`, handed from the
    // wake-draw pass to the schedule pass (see `slot_passes`).
    let mut wakes: Vec<Option<Slot>> = Vec::new();
    // Staged gather/scatter state (see crate::engine::stage): the address
    // permutation plan and the contiguous per-slot state scratch. Only
    // touched for slots past the staging gate.
    let mut stage = StagePlan::new();
    let mut scratch: Vec<P> = Vec::new();

    // First slot not yet accounted.
    let mut now: Slot = 0;

    // Out-of-band flight-recorder sampling, clocked on processed event
    // slots. `sample_period` is contractually constant, so with the
    // `NoHooks` default the whole branch is dead code after monomorphization
    // — and even when live, a sample only *reads* accounting state the
    // engine already maintains (after the slot resolved), so sampled and
    // unsampled runs stay bit-identical.
    let sample_every: Option<u64> = hooks.sample_period();
    let mut event_slots: u64 = 0;

    // Builds one snapshot from already-final accounting state.
    fn engine_sample(
        totals: &Totals,
        te: Slot,
        event_slots: u64,
        backlog: u64,
        contention: f64,
        footprint_bytes: u64,
        state_bytes: u64,
    ) -> EngineSample {
        EngineSample {
            slot: te,
            event_slots,
            backlog,
            arrivals: totals.arrivals,
            successes: totals.successes,
            active_slots: totals.active_slots,
            empty_active: totals.empty_active,
            collision_slots: totals.collision_slots,
            jammed_active: totals.jammed_active,
            sends: totals.sends,
            listens: totals.listens,
            overhead_slots: totals.overhead_slots,
            contention,
            footprint_bytes,
            state_bytes,
        }
    }

    // Accounts a silent gap `[from, to)`, forwarding active gaps to hooks.
    fn gap<A: ArrivalProcess, J: Jammer, M: FeedbackModel, P, H: Hooks<P>>(
        core: &mut EngineCore<A, J, M>,
        hooks: &mut H,
        from: Slot,
        to: Slot,
        backlog: u64,
        contention: f64,
    ) {
        if let Some(jammed) = core.account_gap(from, to, backlog, contention) {
            hooks.on_gap(from, to, jammed);
        }
    }

    loop {
        if core.steps_exhausted() {
            break;
        }
        let next_access: Option<Slot> = queue.next_slot();
        let next_arrival: Option<Slot> = core
            .peek_arrival(now, active_count, contention)
            .map(|(s, _)| s);
        let te = match (next_access, next_arrival) {
            (None, None) => {
                // Nothing will ever happen again. If packets remain (a
                // degenerate protocol that never accesses), the rest of the
                // horizon is provably silent: account it in bulk, then stop.
                if active_count > 0 {
                    let end = offset(core.limits().max_slot, 1);
                    if end > now {
                        gap(&mut core, hooks, now, end, active_count, contention);
                    }
                }
                break;
            }
            (a, b) => a.unwrap_or(Slot::MAX).min(b.unwrap_or(Slot::MAX)),
        };
        if te > core.limits().max_slot {
            // Account the remaining gap up to the limit, then stop.
            let end = offset(core.limits().max_slot, 1);
            if end > now {
                gap(&mut core, hooks, now, end, active_count, contention);
            }
            break;
        }

        // Account the silent gap [now, te).
        if te > now {
            gap(&mut core, hooks, now, te, active_count, contention);
            core.checkpoint(te - 1, active_count, contention);
        }

        // Slide the calendar window up to the slot being processed.
        queue.advance_to(te);

        // Inject all arrivals scheduled for slot te.
        while let Some((ta, count)) = core.peek_arrival(te, active_count, contention) {
            if ta != te {
                break;
            }
            core.consume_arrival();
            for _ in 0..count {
                let id = core.note_inject(te);
                let mut p = factory(&mut core.rng);
                contention += p.send_probability();
                hooks.on_inject(te, id, &p);
                active_count += 1;
                // Fresh packets may access from their injection slot onward.
                let delay = p.next_wake(&mut core.rng);
                packets.insert(id, p);
                if let Some(slot) = wake_slot(te, delay) {
                    queue.schedule(slot, id.0);
                }
            }
        }

        // Collect every packet accessing the channel in slot te, in
        // insertion order (the (slot, seq)-keyed reference heap's pop
        // order).
        participants.clear();
        queue.take(te, &mut participants);

        if participants.is_empty() {
            // Arrival-only slot: nobody accesses; resolve as empty/jammed
            // for accounting (no listener exists to observe it).
            if active_count > 0 {
                let jam = core.adaptive_jam(te, active_count, contention);
                let outcome = core.resolve(te, jam, &[]);
                hooks.on_slot(te, &outcome);
                core.checkpoint(te, active_count, contention);
            }
            event_slots += 1;
            if let Some(period) = sample_every {
                if event_slots.is_multiple_of(period) {
                    hooks.on_sample(&engine_sample(
                        &core.metrics.totals,
                        te,
                        event_slots,
                        active_count,
                        contention,
                        queue.footprint_bytes() as u64,
                        packets.lane_bytes() as u64,
                    ));
                }
            }
            now = te + 1;
            core.step_done();
            continue;
        }

        // Split participants into senders and pure listeners. Below the
        // staging gate (the direct path) the split resolves each packet's
        // dense handle exactly once and later passes index the hot state
        // lane through it. Past the gate — a high-fanout slot over a
        // cache-busting state lane — the slot is staged: the participants'
        // states are gathered into `scratch` in ascending dense-address
        // order (one streaming sweep instead of a miss per packet), the
        // split and every later pass run against the scratch in canonical
        // insertion order via the plan's inverse permutation, and the
        // mutated states are scattered back before the depart path reads
        // the table. Either way no handle survives past this slot's
        // (potential) end-of-slot compaction.
        let staged = staging_applies(
            participants.len(),
            packets.dense_len() * std::mem::size_of::<P>(),
        );
        senders.clear();
        listeners.clear();
        senders_pos.clear();
        listeners_pos.clear();
        if staged {
            // Ordering and gather draw no randomness, so the RNG stream
            // starts exactly where the direct path's split would start it.
            // `build_order` sorts the ids in L1 (id order is dense-address
            // order); `gather` resolves and copies in two prefetched
            // ascending sweeps.
            stage.build_order(&participants);
            stage.gather(&packets, &mut scratch);
            let pos_of = stage.pos_of();
            for (k, &id) in participants.iter().enumerate() {
                let pos = pos_of[k];
                if scratch[pos as usize].send_on_access(&mut core.rng) {
                    senders.push(PacketId(id));
                    senders_pos.push(pos);
                } else {
                    listeners.push(PacketId(id));
                    listeners_pos.push(pos);
                }
            }
        } else {
            for &id in &participants {
                let d = packets.resolve(PacketId(id));
                if packets.state_at_mut(d).send_on_access(&mut core.rng) {
                    senders.push(PacketId(id));
                    senders_pos.push(d.0);
                } else {
                    listeners.push(PacketId(id));
                    listeners_pos.push(d.0);
                }
            }
        }

        let jam = core.jam_decision(te, active_count, contention, &senders);
        let outcome = core.resolve(te, jam, &senders);
        hooks.on_slot(te, &outcome);

        // The observe/wake/sender passes, against whichever arena holds
        // this slot's states (see `slot_passes`). On the staged path the
        // mutated scratch is scattered back through the address-sorted
        // handles before the winner's depart block below reads the table.
        if staged {
            slot_passes(
                &mut scratch,
                &mut core,
                &mut queue,
                hooks,
                te,
                &outcome,
                model,
                &mut contention,
                &senders,
                &senders_pos,
                &listeners,
                &listeners_pos,
                &mut wakes,
            );
            packets.scatter_from(stage.handles(), &scratch);
        } else {
            slot_passes(
                &mut packets,
                &mut core,
                &mut queue,
                hooks,
                te,
                &outcome,
                model,
                &mut contention,
                &senders,
                &senders_pos,
                &listeners,
                &listeners_pos,
                &mut wakes,
            );
        }

        let winner = match outcome {
            SlotOutcome::Success { id } => Some(id),
            _ => None,
        };
        if let Some(id) = winner {
            let p = packets.state(id);
            contention -= p.send_probability();
            hooks.on_depart(te, id, p);
            packets.retire(id);
            core.note_depart(id, te);
            active_count -= 1;
            // End of the epoch? Compacting between slots moves memory
            // only: processing order is owned by the queue and ids stay
            // valid, so results are bit-identical either way.
            packets.maybe_compact();
        }

        // A pathological collision burst can balloon the per-slot scratch;
        // give the excess back so one bad slot does not pin memory for the
        // rest of the run.
        cap_scratch(&mut participants, SCRATCH_CAP);
        cap_scratch(&mut senders, SCRATCH_CAP);
        cap_scratch(&mut listeners, SCRATCH_CAP);
        cap_scratch(&mut senders_pos, SCRATCH_CAP);
        cap_scratch(&mut listeners_pos, SCRATCH_CAP);
        cap_scratch(&mut wakes, SCRATCH_CAP);
        cap_scratch(&mut scratch, SCRATCH_CAP);
        stage.cap();

        core.checkpoint(te, active_count, contention);
        event_slots += 1;
        if let Some(period) = sample_every {
            if event_slots.is_multiple_of(period) {
                hooks.on_sample(&engine_sample(
                    &core.metrics.totals,
                    te,
                    event_slots,
                    active_count,
                    contention,
                    queue.footprint_bytes() as u64,
                    packets.lane_bytes() as u64,
                ));
            }
        }
        now = te + 1;
        core.step_done();
    }

    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{Batch, Bernoulli, Trace};
    use crate::config::Limits;
    use crate::dist::geometric;
    use crate::feedback::Intent;
    use crate::hooks::NoHooks;
    use crate::jamming::{NoJam, PeriodicBurst, RandomJam, ReactiveAny};
    use crate::protocol::Protocol;

    /// Memoryless access-probability protocol; sends on every access.
    #[derive(Clone)]
    struct Fixed(f64);
    impl Protocol for Fixed {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(self.0) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            self.0
        }
        fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
            Some(geometric(rng, self.0))
        }
    }
    impl SparseProtocol for Fixed {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            true
        }
    }

    #[test]
    fn batch_drains() {
        let r = run_sparse(
            &SimConfig::new(1),
            Batch::new(16),
            NoJam,
            |_| Fixed(0.02),
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 16);
        assert!(r.drained());
        let t = &r.totals;
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active
        );
    }

    #[test]
    fn gap_slots_are_counted_as_active_empties() {
        // One packet with tiny access probability: almost all slots are
        // silent gaps, but they are active (the packet is in the system).
        let r = run_sparse(
            &SimConfig::new(2),
            Batch::new(1),
            NoJam,
            |_| Fixed(0.001),
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 1);
        assert!(r.totals.active_slots > 50, "{}", r.totals.active_slots);
        assert_eq!(
            r.totals.active_slots,
            r.totals.empty_active + r.totals.successes
        );
    }

    #[test]
    fn jam_counts_in_gaps_match_rate() {
        let cfg = SimConfig::new(3).limits(Limits::until_slot(100_000));
        let r = run_sparse(
            &cfg,
            Batch::new(1),
            RandomJam::new(0.2),
            |_| Fixed(1e-7), // essentially never accesses within the horizon
            &mut NoHooks,
        );
        let frac = r.totals.jammed_active as f64 / r.totals.active_slots as f64;
        assert!((frac - 0.2).abs() < 0.02, "jam fraction {frac}");
        assert_eq!(r.totals.successes, 0);
    }

    #[test]
    fn deterministic_jammer_exact_in_gaps() {
        let cfg = SimConfig::new(4).limits(Limits::until_slot(999));
        let r = run_sparse(
            &cfg,
            Batch::new(1),
            PeriodicBurst::new(10, 3, 0),
            |_| Fixed(1e-9),
            &mut NoHooks,
        );
        assert_eq!(r.totals.active_slots, 1000);
        assert_eq!(r.totals.jammed_active, 300);
    }

    #[test]
    fn inactive_gaps_not_accounted() {
        let r = run_sparse(
            &SimConfig::new(5),
            Trace::new(vec![(0, 1), (5000, 1)]),
            NoJam,
            |_| Fixed(0.5),
            &mut NoHooks,
        );
        assert_eq!(r.totals.successes, 2);
        assert!(
            r.totals.active_slots < 100,
            "active slots {}",
            r.totals.active_slots
        );
    }

    #[test]
    fn reactive_any_starves_until_budget_spent() {
        let r = run_sparse(
            &SimConfig::new(6),
            Batch::new(1),
            ReactiveAny::new(10),
            |_| Fixed(0.5),
            &mut NoHooks,
        );
        // The first 10 transmissions are jammed; the 11th succeeds.
        assert_eq!(r.totals.successes, 1);
        assert_eq!(r.totals.sends, 11);
        assert_eq!(r.totals.jammed_active, 10);
    }

    #[test]
    fn bernoulli_stream_reaches_all_packets() {
        let r = run_sparse(
            &SimConfig::new(7),
            Bernoulli::new(0.01).with_total(200),
            NoJam,
            |_| Fixed(0.2),
            &mut NoHooks,
        );
        assert_eq!(r.totals.arrivals, 200);
        assert_eq!(r.totals.successes, 200);
    }

    #[test]
    fn max_slot_limit_stops_run() {
        let cfg = SimConfig::new(8).limits(Limits::until_slot(500));
        let r = run_sparse(&cfg, Batch::new(3), NoJam, |_| Fixed(1e-9), &mut NoHooks);
        assert_eq!(r.totals.successes, 0);
        assert_eq!(r.totals.active_slots, 501); // slots 0..=500
        assert_eq!(r.totals.backlog(), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_sparse(
                &SimConfig::new(42),
                Batch::new(64),
                RandomJam::new(0.05),
                |_| Fixed(0.03),
                &mut NoHooks,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.access_counts(), b.access_counts());
    }

    #[test]
    fn hooks_gap_coverage_is_complete() {
        // Sum of gap lengths + event slots == active slots.
        #[derive(Default)]
        struct GapSum {
            gap_slots: u64,
            event_slots: u64,
        }
        impl Hooks<Fixed> for GapSum {
            fn on_gap(&mut self, from: Slot, to: Slot, _jammed: u64) {
                self.gap_slots += to - from;
            }
            fn on_slot(&mut self, _t: Slot, _o: &SlotOutcome) {
                self.event_slots += 1;
            }
        }
        let mut hooks = GapSum::default();
        let r = run_sparse(
            &SimConfig::new(9),
            Batch::new(8),
            NoJam,
            |_| Fixed(0.01),
            &mut hooks,
        );
        assert_eq!(hooks.gap_slots + hooks.event_slots, r.totals.active_slots);
    }

    #[test]
    fn depart_ids_stay_original_across_table_compaction() {
        // 300 packets drain to zero, which walks the packet table through
        // several epoch compactions (threshold 32 dead, half-full). Hooks
        // must keep seeing injection-order ids throughout — the table's
        // dense shuffling is invisible — and each packet departs exactly
        // once.
        #[derive(Default)]
        struct Departs {
            seen: Vec<u32>,
        }
        impl Hooks<Fixed> for Departs {
            fn on_depart(&mut self, _t: Slot, id: PacketId, _state: &Fixed) {
                self.seen.push(id.0);
            }
        }
        let mut hooks = Departs::default();
        let r = run_sparse(
            &SimConfig::new(21),
            Batch::new(300),
            NoJam,
            |_| Fixed(0.02),
            &mut hooks,
        );
        assert_eq!(r.totals.successes, 300);
        hooks.seen.sort_unstable();
        assert_eq!(hooks.seen, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn never_waking_protocol_accounts_whole_horizon() {
        /// Accesses the channel exactly never.
        #[derive(Clone)]
        struct Mute;
        impl Protocol for Mute {
            fn intent(&mut self, _rng: &mut SimRng) -> Intent {
                Intent::Sleep
            }
            fn observe(&mut self, _obs: &Observation) {}
            fn send_probability(&self) -> f64 {
                0.0
            }
            // Deliberately relies on the default `next_wake` → None.
        }
        impl SparseProtocol for Mute {
            fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
                false
            }
        }
        let cfg = SimConfig::new(10).limits(Limits::until_slot(999));
        let r = run_sparse(&cfg, Batch::new(2), NoJam, |_| Mute, &mut NoHooks);
        assert_eq!(r.totals.successes, 0);
        assert_eq!(r.totals.active_slots, 1000);
        assert_eq!(r.totals.empty_active, 1000);
    }
}
