//! Epoch-compacted hot-state packet table for the sparse engine.
//!
//! The sparse engine touches per-packet state on every channel access. A
//! plain `Vec<P>` indexed by [`PacketId`] is the obvious layout, but it
//! decays as the run drains: departed packets keep their dense slots, so a
//! late-run cohort of `k` live packets is scattered across a table sized
//! for *every packet ever injected*, and each access drags a mostly-dead
//! cache line through the hierarchy. At paper scale (tens of thousands of
//! packets, 64-byte protocol states) that scatter is a measurable slice of
//! the whole simulation.
//!
//! [`PacketTable`] fixes the layout with a struct-of-arrays split plus
//! **epoch compaction**. The table is three parallel lanes with distinct
//! roles — at million-station scale, which lanes a pass touches is the
//! difference between streaming one array and dragging three:
//!
//! * `states` — the **hot lane**: protocol states, dense, touched by every
//!   observe/wake pass;
//! * `ids` — the **depart lane**: the original id of each dense entry,
//!   read only when a packet departs (hooks and metrics speak original
//!   [`PacketId`]s) and during compaction;
//! * `index_of` — the **remap lane**: id → dense index, or the `VACANT`
//!   sentinel once the packet departed (its status bit). Resolved once per
//!   packet per slot into a [`Dense`] handle (see
//!   [`PacketTable::resolve`]); the per-access passes then index the hot
//!   lane directly and never touch the remap again.
//!
//! Once enough packets have departed (an *epoch*, see
//! [`PacketTable::maybe_compact`]), the dense lanes are compacted in
//! place — live packets slide together, preserving their relative order,
//! and the dead states are dropped — so the working set tracks the live
//! population instead of the historical one.
//!
//! An invariant worth naming falls out of that design: **dense order
//! coincides with id order for live packets**. Injections append in
//! ascending id order, and compaction only ever slides survivors forward
//! without reordering them, so at every instant the `ids` lane is
//! strictly increasing. The staged gather/scatter path
//! ([`stage`](crate::engine::stage)) leans on this to sort a slot's
//! participants by the ids it already holds — pure L1 work — and get
//! dense-address-ascending order for free. (Nothing *breaks* if a future
//! layout change drops the invariant — the staged permutation stays
//! self-consistent — but the gather order silently stops being address-
//! ascending, so the `ids_lane_stays_sorted` test pins it.)
//!
//! Compaction is invisible outside the table: hooks, metrics, and traces
//! keep seeing original [`PacketId`]s (the engine never exposes dense
//! indices), and compaction timing cannot affect results — it moves
//! memory, not the processing order, which is owned by the
//! [`WakeQueue`](crate::engine::wake::WakeQueue). The equivalence suite
//! runs the compacting engine against the never-compacting reference
//! oracle and demands bit-identical output.

use crate::packet::PacketId;

/// Best-effort read-prefetch hint: asks the core to start pulling the
/// cache line holding `p` toward L1. Purely a scheduling hint — no memory
/// effects, no faults — and a no-op off x86_64.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: &T) {
    prefetch_read_ptr(p as *const T as *const u8);
}

/// Raw-pointer variant of [`prefetch_read`], for hinting addresses no
/// reference may legally point at (e.g. the one-past-`len` tail of a `Vec`
/// an imminent push will write). The pointer may be dangling or
/// out-of-bounds: `prefetcht0` cannot fault and has no memory effects.
#[inline(always)]
#[allow(unsafe_code)] // the crate-wide deny's one exception: pure hints
pub(crate) fn prefetch_read_ptr(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetcht0` has no architectural effects and cannot fault,
    // whatever the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Write-intent twin of [`prefetch_read_ptr`]: asks for the line in
/// exclusive state, so the store that follows skips the read-for-ownership
/// round trip a plain read hint would still pay. Same safety story — a
/// hint, nothing more — and the same raw-pointer latitude.
#[inline(always)]
#[allow(unsafe_code)] // the crate-wide deny's one exception: pure hints
pub(crate) fn prefetch_write_ptr(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: write-hint prefetches have no architectural effects and
    // cannot fault, whatever the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_ET0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// `index_of` sentinel: the packet has departed (its status bit).
const VACANT: u32 = u32::MAX;

/// Minimum number of departed-but-uncompacted packets before an epoch ends.
/// Below this, compaction would churn memory for no locality gain.
const EPOCH_MIN_DEAD: usize = 32;

/// A resolved position in the dense lanes, produced by
/// [`PacketTable::resolve`].
///
/// A `Dense` handle is the table's receipt that the id → index remap was
/// already paid: the `*_at` accessors index the hot `states` lane directly,
/// with no remap read and no liveness branch. Handles are **stable across
/// inserts** (the dense lanes are append-only between compactions) but
/// **invalidated by compaction** — the engine resolves a slot's
/// participants once, up front, and only compacts at end-of-slot after the
/// last access, so no handle ever outlives its validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dense(pub(crate) u32);

impl Dense {
    /// The raw dense-lane index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense, epoch-compacted storage of live per-packet protocol states.
///
/// Ids are assigned densely in injection order (see [`PacketId`]) and must
/// be inserted in that order; lookups go through the id → dense-index
/// remap, so callers never observe compaction.
#[derive(Debug)]
pub struct PacketTable<P> {
    /// Protocol states, dense. Parallel to `ids`.
    states: Vec<P>,
    /// Original packet id of each dense entry. Parallel to `states`.
    ids: Vec<u32>,
    /// id → dense index, or [`VACANT`] once the packet departed.
    index_of: Vec<u32>,
    /// Departed packets still occupying dense entries (reset each epoch).
    dead: usize,
}

impl<P> Default for PacketTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PacketTable<P> {
    /// An empty table.
    pub fn new() -> Self {
        PacketTable {
            states: Vec::new(),
            ids: Vec::new(),
            index_of: Vec::new(),
            dead: 0,
        }
    }

    /// Number of live packets.
    #[inline]
    pub fn live(&self) -> usize {
        self.states.len() - self.dead
    }

    /// Number of dense entries, live or dead (the current working-set
    /// size; shrinks at each compaction).
    #[inline]
    pub fn dense_len(&self) -> usize {
        self.states.len()
    }

    /// The dense index a live packet currently resolves to, or `None` if it
    /// departed. Exposed for tests and diagnostics; the engine itself never
    /// leaks dense indices.
    pub fn dense_index(&self, id: PacketId) -> Option<usize> {
        match self.index_of.get(id.index()).copied() {
            Some(i) if i != VACANT => Some(i as usize),
            _ => None,
        }
    }

    /// Inserts the state of a freshly injected packet.
    ///
    /// Ids must arrive in injection order (`0, 1, 2, …`), mirroring how
    /// [`Metrics::note_inject`](crate::metrics::Metrics::note_inject)
    /// assigns them.
    #[inline]
    pub fn insert(&mut self, id: PacketId, state: P) {
        debug_assert_eq!(id.index(), self.index_of.len(), "ids in order");
        self.index_of.push(self.states.len() as u32);
        self.ids.push(id.0);
        self.states.push(state);
    }

    /// The state of live packet `id`.
    ///
    /// # Panics
    ///
    /// Panics if the packet departed (in release builds via the dense
    /// index lookup: the `VACANT` sentinel is always out of bounds); the
    /// engine only resolves ids it knows to be live.
    #[inline]
    pub fn state(&self, id: PacketId) -> &P {
        let idx = self.index_of[id.index()];
        debug_assert_ne!(idx, VACANT, "access to departed {id}");
        &self.states[idx as usize]
    }

    /// Mutable access to the state of live packet `id`.
    #[inline]
    pub fn state_mut(&mut self, id: PacketId) -> &mut P {
        let idx = self.index_of[id.index()];
        debug_assert_ne!(idx, VACANT, "access to departed {id}");
        &mut self.states[idx as usize]
    }

    /// Resolves live packet `id` to a [`Dense`] handle: the one remap-lane
    /// read the packet pays this slot. All `*_at` accesses through the
    /// handle then touch only the lanes they need.
    ///
    /// The handle is valid until the next [`compact`](Self::compact) (see
    /// [`Dense`]).
    #[inline]
    pub fn resolve(&self, id: PacketId) -> Dense {
        let idx = self.index_of[id.index()];
        debug_assert_ne!(idx, VACANT, "resolve of departed {id}");
        Dense(idx)
    }

    /// The state at a resolved handle — a hot-lane read, no remap.
    #[inline]
    pub fn state_at(&self, d: Dense) -> &P {
        &self.states[d.index()]
    }

    /// Hints the remap-lane entry for `id` toward cache, ahead of a
    /// [`resolve`](Self::resolve) a few iterations out. Out-of-range ids
    /// are ignored; off x86_64 this is a no-op.
    #[inline]
    pub fn prefetch_resolve(&self, id: PacketId) {
        if let Some(p) = self.index_of.get(id.index()) {
            prefetch_read(p);
        }
    }

    /// Hints the hot-lane state at `d` toward cache, ahead of a
    /// [`state_at`](Self::state_at) a few iterations out. Out-of-range
    /// handles are ignored; off x86_64 this is a no-op.
    #[inline]
    pub fn prefetch_state(&self, d: Dense) {
        if let Some(p) = self.states.get(d.index()) {
            prefetch_read(p);
        }
    }

    /// Mutable state at a resolved handle — a hot-lane access, no remap.
    #[inline]
    pub fn state_at_mut(&mut self, d: Dense) -> &mut P {
        &mut self.states[d.index()]
    }

    /// The original [`PacketId`] at a resolved handle: a depart-lane read,
    /// used when a packet leaves (hooks and metrics speak original ids).
    #[inline]
    pub fn id_at(&self, d: Dense) -> PacketId {
        PacketId(self.ids[d.index()])
    }

    /// Gathers four distinct live packets' states as a batch-lane array for
    /// the 4-wide observe/draw surface
    /// ([`SparseProtocol::observe4`](crate::protocol::SparseProtocol::observe4)).
    ///
    /// # Panics
    ///
    /// Panics if the ids are not distinct and live.
    #[inline]
    pub fn lanes4(&mut self, ids: [PacketId; 4]) -> [&mut P; 4] {
        let idx = ids.map(|id| {
            let i = self.index_of[id.index()];
            debug_assert_ne!(i, VACANT, "lane access to departed {id}");
            i as usize
        });
        self.states
            .get_disjoint_mut(idx)
            .expect("lane ids are distinct and live")
    }

    /// Gathers four distinct resolved handles' states as a batch-lane
    /// array — the handle-based twin of [`lanes4`](Self::lanes4), touching
    /// only the hot lane.
    ///
    /// # Panics
    ///
    /// Panics if the handles are not distinct.
    #[inline]
    pub fn lanes4_at(&mut self, handles: [Dense; 4]) -> [&mut P; 4] {
        self.states
            .get_disjoint_mut(handles.map(Dense::index))
            .expect("lane handles are distinct")
    }

    /// Copies the states at `handles` into `scratch` (cleared first), in
    /// the order given: `scratch[j]` becomes a copy of the state at
    /// `handles[j]`.
    ///
    /// This is the read half of the staged gather/scatter pass (see
    /// [`sparse`](crate::engine::sparse)): with `handles` sorted ascending
    /// by dense address, the hot lane is read as one forward sweep —
    /// hardware-prefetch-friendly streaming instead of one dependent cache
    /// miss per participant. The handles must all come from the current
    /// epoch (no compaction between [`resolve`](Self::resolve) and this
    /// call); like every handle use, a gather never spans a compaction.
    pub fn gather_into(&self, handles: &[Dense], scratch: &mut Vec<P>)
    where
        P: Clone,
    {
        scratch.clear();
        scratch.extend(handles.iter().map(|&d| self.states[d.index()].clone()));
    }

    /// Writes `scratch[j]` back to the dense entry at `handles[j]` — the
    /// write half of the staged gather/scatter pass, one streaming sweep
    /// over the hot lane when `handles` is address-sorted.
    ///
    /// Handles must be distinct (each dense entry written at most once) and
    /// from the current epoch, mirroring [`gather_into`](Self::gather_into).
    ///
    /// # Panics
    ///
    /// Panics if `handles` and `scratch` have different lengths.
    pub fn scatter_from(&mut self, handles: &[Dense], scratch: &[P])
    where
        P: Clone,
    {
        // Write-side lookahead: lines usually still sit in cache from the
        // gather earlier in the slot, but the passes in between (wheel
        // pushes especially) evict some — hint them back before the store
        // stalls on them.
        const AHEAD: usize = 32;
        assert_eq!(handles.len(), scratch.len(), "scatter length mismatch");
        for (i, (&d, s)) in handles.iter().zip(scratch).enumerate() {
            if let Some(ahead) = handles.get(i + AHEAD) {
                if let Some(p) = self.states.get(ahead.index()) {
                    prefetch_write_ptr(p as *const P as *const u8);
                }
            }
            self.states[d.index()].clone_from(s);
        }
    }

    /// Allocated bytes of the bookkeeping lanes (`ids` + `index_of`) — the
    /// table's engine-overhead footprint, counted against the
    /// bytes-per-station capacity budget.
    pub fn lane_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.ids.capacity() + self.index_of.capacity()) * size_of::<u32>()
    }

    /// Allocated bytes of the hot state lane. Reported separately from
    /// [`lane_bytes`](Self::lane_bytes): protocol state size is the
    /// protocol's footprint, not the engine's.
    pub fn state_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<P>()
    }

    /// Marks packet `id` as departed. Its dense entry lingers (and its
    /// state is dropped) until the next compaction.
    #[inline]
    pub fn retire(&mut self, id: PacketId) {
        let idx = &mut self.index_of[id.index()];
        debug_assert_ne!(*idx, VACANT, "double depart of {id}");
        *idx = VACANT;
        self.dead += 1;
    }

    /// Ends the epoch if enough of the dense table is dead: compacts when
    /// at least `EPOCH_MIN_DEAD` (32) packets departed since the last
    /// compaction *and* they make up at least half the dense entries.
    ///
    /// The half-full trigger makes the total compaction work geometric: a
    /// drain from `n` packets costs `O(n)` moved states across all epochs
    /// combined. Returns whether a compaction ran.
    #[inline]
    pub fn maybe_compact(&mut self) -> bool {
        if self.dead >= EPOCH_MIN_DEAD && 2 * self.dead >= self.states.len() {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Compacts the dense arrays in place: live packets slide to the front
    /// (preserving their relative order), departed states are dropped, and
    /// the id remap is rebuilt. Safe to call at any point — including
    /// mid-slot between accesses — because no outstanding references exist
    /// across engine calls and ids resolve identically afterwards.
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let mut w = 0usize;
        for r in 0..self.states.len() {
            let id = self.ids[r] as usize;
            if self.index_of[id] != VACANT {
                self.states.swap(w, r);
                self.ids[w] = self.ids[r];
                self.index_of[id] = w as u32;
                w += 1;
            }
        }
        self.states.truncate(w);
        self.ids.truncate(w);
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(n: u32) -> PacketTable<u64> {
        let mut t = PacketTable::new();
        for id in 0..n {
            // State encodes the id so moves are detectable.
            t.insert(PacketId(id), 1000 + id as u64);
        }
        t
    }

    /// Every live id resolves to its own state.
    fn assert_consistent(t: &PacketTable<u64>, live: &[u32]) {
        assert_eq!(t.live(), live.len());
        for &id in live {
            assert_eq!(*t.state(PacketId(id)), 1000 + id as u64, "id {id}");
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table_of(5);
        assert_eq!(t.live(), 5);
        assert_eq!(t.dense_len(), 5);
        assert_eq!(*t.state(PacketId(3)), 1003);
        *t.state_mut(PacketId(3)) += 1;
        assert_eq!(*t.state(PacketId(3)), 1004);
        assert_eq!(t.dense_index(PacketId(3)), Some(3));
    }

    #[test]
    fn retire_hides_the_packet_and_compaction_reclaims_it() {
        let mut t = table_of(4);
        t.retire(PacketId(1));
        assert_eq!(t.live(), 3);
        assert_eq!(t.dense_len(), 4, "entry lingers until compaction");
        assert_eq!(t.dense_index(PacketId(1)), None);
        t.compact();
        assert_eq!(t.dense_len(), 3);
        assert_consistent(&t, &[0, 2, 3]);
    }

    #[test]
    fn compaction_preserves_relative_order() {
        let mut t = table_of(6);
        t.retire(PacketId(0));
        t.retire(PacketId(3));
        t.compact();
        // Survivors keep their injection order in the dense array.
        assert_eq!(t.ids, vec![1, 2, 4, 5]);
        assert_consistent(&t, &[1, 2, 4, 5]);
    }

    #[test]
    fn compaction_mid_slot_keeps_remap_consistent() {
        // The engine may (in principle) compact between two accesses of the
        // same slot: interleave state touches, retires, and a compaction,
        // and every surviving id must still resolve to its own state.
        let mut t = table_of(8);
        *t.state_mut(PacketId(5)) += 10; // 1015
        t.retire(PacketId(0));
        t.retire(PacketId(2));
        t.retire(PacketId(6));
        // "Mid-slot": some accesses happened, more follow after compacting.
        t.compact();
        assert_eq!(*t.state(PacketId(5)), 1015, "pre-compaction write kept");
        *t.state_mut(PacketId(5)) -= 10;
        let lanes = t.lanes4([PacketId(1), PacketId(3), PacketId(4), PacketId(7)]);
        assert_eq!(*lanes[0], 1001);
        assert_eq!(*lanes[3], 1007);
        t.retire(PacketId(5));
        assert_consistent(&t, &[1, 3, 4, 7]);
    }

    #[test]
    fn zero_live_compaction_empties_the_table_and_accepts_new_inserts() {
        let mut t = table_of(3);
        for id in 0..3 {
            t.retire(PacketId(id));
        }
        assert_eq!(t.live(), 0);
        t.compact();
        assert_eq!(t.dense_len(), 0);
        assert_eq!(t.live(), 0);
        // Fresh injections keep working; ids continue the global sequence.
        t.insert(PacketId(3), 1003);
        assert_consistent(&t, &[3]);
        assert_eq!(t.dense_index(PacketId(3)), Some(0));
    }

    #[test]
    fn remap_stays_stable_across_two_compactions() {
        // Hooks/metrics/trace identify packets by original id; two rounds
        // of departures + compaction must not perturb what any id resolves
        // to, even as dense indices shuffle underneath.
        let mut t = table_of(10);
        for id in [0, 1, 2, 3] {
            t.retire(PacketId(id));
        }
        t.compact();
        assert_eq!(t.dense_index(PacketId(9)), Some(5));
        assert_consistent(&t, &[4, 5, 6, 7, 8, 9]);
        for id in [5, 7, 8] {
            t.retire(PacketId(id));
        }
        t.compact();
        assert_eq!(t.dense_index(PacketId(9)), Some(2), "shifted again");
        assert_consistent(&t, &[4, 6, 9]);
        // Ids retired in earlier epochs stay retired.
        for id in [0, 1, 2, 3, 5, 7, 8] {
            assert_eq!(t.dense_index(PacketId(id)), None);
        }
    }

    #[test]
    fn maybe_compact_honours_the_epoch_thresholds() {
        // Too few dead: no epoch, regardless of fraction.
        let mut t = table_of(4);
        t.retire(PacketId(0));
        t.retire(PacketId(1));
        t.retire(PacketId(2));
        assert!(!t.maybe_compact());
        assert_eq!(t.dense_len(), 4);
        // Enough dead but under half the dense entries: still no epoch.
        let mut t = table_of(3 * EPOCH_MIN_DEAD as u32);
        for id in 0..EPOCH_MIN_DEAD as u32 {
            t.retire(PacketId(id));
        }
        assert!(!t.maybe_compact());
        // One more epoch's worth pushes past half: compacts.
        for id in EPOCH_MIN_DEAD as u32..2 * EPOCH_MIN_DEAD as u32 {
            t.retire(PacketId(id));
        }
        assert!(t.maybe_compact());
        assert_eq!(t.dense_len(), EPOCH_MIN_DEAD);
        assert_eq!(t.live(), EPOCH_MIN_DEAD);
        assert!(!t.maybe_compact(), "fresh epoch starts clean");
    }

    #[test]
    fn compact_with_no_dead_is_a_noop() {
        let mut t = table_of(4);
        t.compact();
        assert_eq!(t.dense_len(), 4);
        assert_consistent(&t, &[0, 1, 2, 3]);
    }

    #[test]
    fn dense_handles_bypass_the_remap_until_compaction() {
        // A slot's split pass resolves each participant once; every later
        // access in the slot goes through the handle, hot lane only. The
        // handle must agree with the id-based accessors, survive inserts,
        // and expose the original id for the depart path.
        let mut t = table_of(6);
        let h3 = t.resolve(PacketId(3));
        let h5 = t.resolve(PacketId(5));
        assert_eq!(*t.state_at(h3), 1003);
        assert_eq!(t.id_at(h3), PacketId(3));
        *t.state_at_mut(h5) += 7;
        assert_eq!(*t.state(PacketId(5)), 1012, "id view sees the write");
        // Inserts are append-only: outstanding handles stay valid.
        t.insert(PacketId(6), 1006);
        assert_eq!(*t.state_at(h3), 1003);
        let lanes = t.lanes4_at([
            t.resolve(PacketId(0)),
            t.resolve(PacketId(6)),
            h3,
            t.resolve(PacketId(1)),
        ]);
        assert_eq!(
            [*lanes[0], *lanes[1], *lanes[2], *lanes[3]],
            [1000, 1006, 1003, 1001]
        );
    }

    #[test]
    fn handles_rebind_correctly_across_two_compactions() {
        // The SoA pin for the wheel PR: two rounds of departures +
        // compaction, and after each one (a) re-resolved handles land on
        // the packet's moved state, (b) the depart lane still yields the
        // original id, (c) stale liveness never leaks through the remap.
        let mut t = table_of(10);
        for id in [0, 1, 2, 3] {
            t.retire(PacketId(id));
        }
        t.compact();
        let h9 = t.resolve(PacketId(9));
        assert_eq!(h9.index(), 5, "first compaction slid 9 to index 5");
        assert_eq!(*t.state_at(h9), 1009);
        assert_eq!(t.id_at(h9), PacketId(9), "original id visible post-move");
        for id in [5, 7, 8] {
            t.retire(PacketId(id));
        }
        t.compact();
        let h9 = t.resolve(PacketId(9));
        assert_eq!(h9.index(), 2, "second compaction slid 9 again");
        assert_eq!(*t.state_at(h9), 1009);
        assert_eq!(t.id_at(h9), PacketId(9));
        // The whole survivor set, via handles.
        for (id, want_idx) in [(4u32, 0usize), (6, 1), (9, 2)] {
            let h = t.resolve(PacketId(id));
            assert_eq!(h.index(), want_idx);
            assert_eq!(t.id_at(h), PacketId(id));
            assert_eq!(*t.state_at(h), 1000 + id as u64);
        }
        for id in [0, 1, 2, 3, 5, 7, 8] {
            assert_eq!(t.dense_index(PacketId(id)), None, "id {id} stays dead");
        }
    }

    #[test]
    fn lane_bytes_track_bookkeeping_not_states() {
        let t = table_of(100);
        // u64 states: the hot lane is 8 bytes each, bookkeeping 8 (two
        // u32 lanes). Capacities may exceed length, never undershoot it.
        assert!(t.lane_bytes() >= 100 * 8);
        assert!(t.state_bytes() >= 100 * 8);
        let empty: PacketTable<[u8; 64]> = PacketTable::new();
        assert_eq!(empty.lane_bytes(), 0);
        assert_eq!(empty.state_bytes(), 0);
    }

    #[test]
    fn ids_lane_stays_sorted() {
        // Dense order ≡ id order for live packets, through arbitrary
        // retire/compact interleavings — the invariant the staged path's
        // id-keyed radix sort leans on (see the module docs).
        let mut t = table_of(500);
        let mut x = 12345u64;
        let mut live: Vec<bool> = vec![true; 500];
        for round in 0..40 {
            for _ in 0..12 {
                // Cheap LCG pick of a live id.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
                let id = ((x >> 33) % 500) as u32;
                if live[id as usize] {
                    live[id as usize] = false;
                    t.retire(PacketId(id));
                }
            }
            if round % 5 == 0 {
                t.compact();
            } else {
                t.maybe_compact();
            }
            let dense: Vec<u32> = (0..500u32)
                .filter(|&id| live[id as usize])
                .map(|id| t.resolve(PacketId(id)).0)
                .collect();
            assert!(
                dense.windows(2).all(|w| w[0] < w[1]),
                "round {round}: dense order diverged from id order"
            );
        }
    }

    #[test]
    fn lanes4_resolves_through_the_remap() {
        let mut t = table_of(12);
        for id in [0, 2, 4, 6] {
            t.retire(PacketId(id));
        }
        t.compact();
        let lanes = t.lanes4([PacketId(11), PacketId(1), PacketId(7), PacketId(3)]);
        assert_eq!(
            [*lanes[0], *lanes[1], *lanes[2], *lanes[3]],
            [1011, 1001, 1007, 1003],
            "unsorted lane ids gather their own states"
        );
    }
}
