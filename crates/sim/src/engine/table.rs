//! Epoch-compacted hot-state packet table for the sparse engine.
//!
//! The sparse engine touches per-packet state on every channel access. A
//! plain `Vec<P>` indexed by [`PacketId`] is the obvious layout, but it
//! decays as the run drains: departed packets keep their dense slots, so a
//! late-run cohort of `k` live packets is scattered across a table sized
//! for *every packet ever injected*, and each access drags a mostly-dead
//! cache line through the hierarchy. At paper scale (tens of thousands of
//! packets, 64-byte protocol states) that scatter is a measurable slice of
//! the whole simulation.
//!
//! [`PacketTable`] fixes the layout with a struct-of-arrays split plus
//! **epoch compaction**:
//!
//! * the hot protocol states live in one dense array (`states`), with a
//!   parallel array of their original ids (`ids`);
//! * a stable remap `index_of: id → dense index` routes every access; its
//!   `VACANT` sentinel doubles as the packet's departed status bit;
//! * once enough packets have departed (an *epoch*, see
//!   [`PacketTable::maybe_compact`]), the dense arrays are compacted in
//!   place — live packets slide together, preserving their relative order,
//!   and the dead states are dropped — so the working set tracks the live
//!   population instead of the historical one.
//!
//! Compaction is invisible outside the table: hooks, metrics, and traces
//! keep seeing original [`PacketId`]s (the engine never exposes dense
//! indices), and compaction timing cannot affect results — it moves
//! memory, not the processing order, which is owned by the
//! [`WakeQueue`](crate::engine::wake::WakeQueue). The equivalence suite
//! runs the compacting engine against the never-compacting reference
//! oracle and demands bit-identical output.

use crate::packet::PacketId;

/// `index_of` sentinel: the packet has departed (its status bit).
const VACANT: u32 = u32::MAX;

/// Minimum number of departed-but-uncompacted packets before an epoch ends.
/// Below this, compaction would churn memory for no locality gain.
const EPOCH_MIN_DEAD: usize = 32;

/// Dense, epoch-compacted storage of live per-packet protocol states.
///
/// Ids are assigned densely in injection order (see [`PacketId`]) and must
/// be inserted in that order; lookups go through the id → dense-index
/// remap, so callers never observe compaction.
#[derive(Debug)]
pub struct PacketTable<P> {
    /// Protocol states, dense. Parallel to `ids`.
    states: Vec<P>,
    /// Original packet id of each dense entry. Parallel to `states`.
    ids: Vec<u32>,
    /// id → dense index, or [`VACANT`] once the packet departed.
    index_of: Vec<u32>,
    /// Departed packets still occupying dense entries (reset each epoch).
    dead: usize,
}

impl<P> Default for PacketTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PacketTable<P> {
    /// An empty table.
    pub fn new() -> Self {
        PacketTable {
            states: Vec::new(),
            ids: Vec::new(),
            index_of: Vec::new(),
            dead: 0,
        }
    }

    /// Number of live packets.
    #[inline]
    pub fn live(&self) -> usize {
        self.states.len() - self.dead
    }

    /// Number of dense entries, live or dead (the current working-set
    /// size; shrinks at each compaction).
    #[inline]
    pub fn dense_len(&self) -> usize {
        self.states.len()
    }

    /// The dense index a live packet currently resolves to, or `None` if it
    /// departed. Exposed for tests and diagnostics; the engine itself never
    /// leaks dense indices.
    pub fn dense_index(&self, id: PacketId) -> Option<usize> {
        match self.index_of.get(id.index()).copied() {
            Some(i) if i != VACANT => Some(i as usize),
            _ => None,
        }
    }

    /// Inserts the state of a freshly injected packet.
    ///
    /// Ids must arrive in injection order (`0, 1, 2, …`), mirroring how
    /// [`Metrics::note_inject`](crate::metrics::Metrics::note_inject)
    /// assigns them.
    #[inline]
    pub fn insert(&mut self, id: PacketId, state: P) {
        debug_assert_eq!(id.index(), self.index_of.len(), "ids in order");
        self.index_of.push(self.states.len() as u32);
        self.ids.push(id.0);
        self.states.push(state);
    }

    /// The state of live packet `id`.
    ///
    /// # Panics
    ///
    /// Panics if the packet departed (in release builds via the dense
    /// index lookup: the `VACANT` sentinel is always out of bounds); the
    /// engine only resolves ids it knows to be live.
    #[inline]
    pub fn state(&self, id: PacketId) -> &P {
        let idx = self.index_of[id.index()];
        debug_assert_ne!(idx, VACANT, "access to departed {id}");
        &self.states[idx as usize]
    }

    /// Mutable access to the state of live packet `id`.
    #[inline]
    pub fn state_mut(&mut self, id: PacketId) -> &mut P {
        let idx = self.index_of[id.index()];
        debug_assert_ne!(idx, VACANT, "access to departed {id}");
        &mut self.states[idx as usize]
    }

    /// Gathers four distinct live packets' states as a batch-lane array for
    /// the 4-wide observe/draw surface
    /// ([`SparseProtocol::observe4`](crate::protocol::SparseProtocol::observe4)).
    ///
    /// # Panics
    ///
    /// Panics if the ids are not distinct and live.
    #[inline]
    pub fn lanes4(&mut self, ids: [PacketId; 4]) -> [&mut P; 4] {
        let idx = ids.map(|id| {
            let i = self.index_of[id.index()];
            debug_assert_ne!(i, VACANT, "lane access to departed {id}");
            i as usize
        });
        self.states
            .get_disjoint_mut(idx)
            .expect("lane ids are distinct and live")
    }

    /// Marks packet `id` as departed. Its dense entry lingers (and its
    /// state is dropped) until the next compaction.
    #[inline]
    pub fn retire(&mut self, id: PacketId) {
        let idx = &mut self.index_of[id.index()];
        debug_assert_ne!(*idx, VACANT, "double depart of {id}");
        *idx = VACANT;
        self.dead += 1;
    }

    /// Ends the epoch if enough of the dense table is dead: compacts when
    /// at least `EPOCH_MIN_DEAD` (32) packets departed since the last
    /// compaction *and* they make up at least half the dense entries.
    ///
    /// The half-full trigger makes the total compaction work geometric: a
    /// drain from `n` packets costs `O(n)` moved states across all epochs
    /// combined. Returns whether a compaction ran.
    #[inline]
    pub fn maybe_compact(&mut self) -> bool {
        if self.dead >= EPOCH_MIN_DEAD && 2 * self.dead >= self.states.len() {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Compacts the dense arrays in place: live packets slide to the front
    /// (preserving their relative order), departed states are dropped, and
    /// the id remap is rebuilt. Safe to call at any point — including
    /// mid-slot between accesses — because no outstanding references exist
    /// across engine calls and ids resolve identically afterwards.
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let mut w = 0usize;
        for r in 0..self.states.len() {
            let id = self.ids[r] as usize;
            if self.index_of[id] != VACANT {
                self.states.swap(w, r);
                self.ids[w] = self.ids[r];
                self.index_of[id] = w as u32;
                w += 1;
            }
        }
        self.states.truncate(w);
        self.ids.truncate(w);
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(n: u32) -> PacketTable<u64> {
        let mut t = PacketTable::new();
        for id in 0..n {
            // State encodes the id so moves are detectable.
            t.insert(PacketId(id), 1000 + id as u64);
        }
        t
    }

    /// Every live id resolves to its own state.
    fn assert_consistent(t: &PacketTable<u64>, live: &[u32]) {
        assert_eq!(t.live(), live.len());
        for &id in live {
            assert_eq!(*t.state(PacketId(id)), 1000 + id as u64, "id {id}");
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table_of(5);
        assert_eq!(t.live(), 5);
        assert_eq!(t.dense_len(), 5);
        assert_eq!(*t.state(PacketId(3)), 1003);
        *t.state_mut(PacketId(3)) += 1;
        assert_eq!(*t.state(PacketId(3)), 1004);
        assert_eq!(t.dense_index(PacketId(3)), Some(3));
    }

    #[test]
    fn retire_hides_the_packet_and_compaction_reclaims_it() {
        let mut t = table_of(4);
        t.retire(PacketId(1));
        assert_eq!(t.live(), 3);
        assert_eq!(t.dense_len(), 4, "entry lingers until compaction");
        assert_eq!(t.dense_index(PacketId(1)), None);
        t.compact();
        assert_eq!(t.dense_len(), 3);
        assert_consistent(&t, &[0, 2, 3]);
    }

    #[test]
    fn compaction_preserves_relative_order() {
        let mut t = table_of(6);
        t.retire(PacketId(0));
        t.retire(PacketId(3));
        t.compact();
        // Survivors keep their injection order in the dense array.
        assert_eq!(t.ids, vec![1, 2, 4, 5]);
        assert_consistent(&t, &[1, 2, 4, 5]);
    }

    #[test]
    fn compaction_mid_slot_keeps_remap_consistent() {
        // The engine may (in principle) compact between two accesses of the
        // same slot: interleave state touches, retires, and a compaction,
        // and every surviving id must still resolve to its own state.
        let mut t = table_of(8);
        *t.state_mut(PacketId(5)) += 10; // 1015
        t.retire(PacketId(0));
        t.retire(PacketId(2));
        t.retire(PacketId(6));
        // "Mid-slot": some accesses happened, more follow after compacting.
        t.compact();
        assert_eq!(*t.state(PacketId(5)), 1015, "pre-compaction write kept");
        *t.state_mut(PacketId(5)) -= 10;
        let lanes = t.lanes4([PacketId(1), PacketId(3), PacketId(4), PacketId(7)]);
        assert_eq!(*lanes[0], 1001);
        assert_eq!(*lanes[3], 1007);
        t.retire(PacketId(5));
        assert_consistent(&t, &[1, 3, 4, 7]);
    }

    #[test]
    fn zero_live_compaction_empties_the_table_and_accepts_new_inserts() {
        let mut t = table_of(3);
        for id in 0..3 {
            t.retire(PacketId(id));
        }
        assert_eq!(t.live(), 0);
        t.compact();
        assert_eq!(t.dense_len(), 0);
        assert_eq!(t.live(), 0);
        // Fresh injections keep working; ids continue the global sequence.
        t.insert(PacketId(3), 1003);
        assert_consistent(&t, &[3]);
        assert_eq!(t.dense_index(PacketId(3)), Some(0));
    }

    #[test]
    fn remap_stays_stable_across_two_compactions() {
        // Hooks/metrics/trace identify packets by original id; two rounds
        // of departures + compaction must not perturb what any id resolves
        // to, even as dense indices shuffle underneath.
        let mut t = table_of(10);
        for id in [0, 1, 2, 3] {
            t.retire(PacketId(id));
        }
        t.compact();
        assert_eq!(t.dense_index(PacketId(9)), Some(5));
        assert_consistent(&t, &[4, 5, 6, 7, 8, 9]);
        for id in [5, 7, 8] {
            t.retire(PacketId(id));
        }
        t.compact();
        assert_eq!(t.dense_index(PacketId(9)), Some(2), "shifted again");
        assert_consistent(&t, &[4, 6, 9]);
        // Ids retired in earlier epochs stay retired.
        for id in [0, 1, 2, 3, 5, 7, 8] {
            assert_eq!(t.dense_index(PacketId(id)), None);
        }
    }

    #[test]
    fn maybe_compact_honours_the_epoch_thresholds() {
        // Too few dead: no epoch, regardless of fraction.
        let mut t = table_of(4);
        t.retire(PacketId(0));
        t.retire(PacketId(1));
        t.retire(PacketId(2));
        assert!(!t.maybe_compact());
        assert_eq!(t.dense_len(), 4);
        // Enough dead but under half the dense entries: still no epoch.
        let mut t = table_of(3 * EPOCH_MIN_DEAD as u32);
        for id in 0..EPOCH_MIN_DEAD as u32 {
            t.retire(PacketId(id));
        }
        assert!(!t.maybe_compact());
        // One more epoch's worth pushes past half: compacts.
        for id in EPOCH_MIN_DEAD as u32..2 * EPOCH_MIN_DEAD as u32 {
            t.retire(PacketId(id));
        }
        assert!(t.maybe_compact());
        assert_eq!(t.dense_len(), EPOCH_MIN_DEAD);
        assert_eq!(t.live(), EPOCH_MIN_DEAD);
        assert!(!t.maybe_compact(), "fresh epoch starts clean");
    }

    #[test]
    fn compact_with_no_dead_is_a_noop() {
        let mut t = table_of(4);
        t.compact();
        assert_eq!(t.dense_len(), 4);
        assert_consistent(&t, &[0, 1, 2, 3]);
    }

    #[test]
    fn lanes4_resolves_through_the_remap() {
        let mut t = table_of(12);
        for id in [0, 2, 4, 6] {
            t.retire(PacketId(id));
        }
        t.compact();
        let lanes = t.lanes4([PacketId(11), PacketId(1), PacketId(7), PacketId(3)]);
        assert_eq!(
            [*lanes[0], *lanes[1], *lanes[2], *lanes[3]],
            [1011, 1001, 1007, 1003],
            "unsorted lane ids gather their own states"
        );
    }
}
