//! The shared engine substrate.
//!
//! Every engine — dense, sparse, grouped — is a *stepping strategy* over
//! one [`EngineCore`]: the core owns the run's RNG, the arrival cursor, the
//! jammer (adaptive + reactive decision order), slot resolution, metrics,
//! and safety limits, while the strategy owns only its per-packet
//! bookkeeping (an epoch-compacted packet table plus a calendar wake
//! queue, an access heap, or cohort groups) and the order in which slots
//! are visited. This is what keeps the three engines
//! semantically interchangeable: the plumbing they share is shared code,
//! not triplicated code.
//!
//! The adversary contract lives here too: arrival processes and jammers are
//! always consulted with a [`SystemView`] of the system as of the end of
//! the previous slot, and a reactive jammer is consulted only after the
//! adaptive decision declined and with the slot's sender set visible
//! (paper §1.1, §1.3).
//!
//! # Logical vs physical time
//!
//! The core is generic over a [`FeedbackModel`]. Models may charge extra
//! *physical* slots for an outcome (costly collisions); the core keeps all
//! scheduling — wake slots, arrivals, jammer decisions, limits — in
//! **logical** time and accumulates the model's overhead as a clock
//! `skew`, applied only when recording into metrics. This keeps every
//! stepping strategy's event order identical across models (the sparse
//! oracle suite stays three-way bit-identical), while reported slot
//! numbers, latencies, and `last_slot` reflect physical time. Under
//! [`Ternary`] the skew is identically zero and the slot loop monomorphizes
//! to the pre-model machine code.

use crate::arrivals::ArrivalProcess;
use crate::config::{ArrivalCursor, Limits, SimConfig};
use crate::feedback::{resolve_slot, FeedbackModel, SlotOutcome, Ternary};
use crate::jamming::Jammer;
use crate::metrics::{Metrics, RunResult};
use crate::packet::PacketId;
use crate::rng::SimRng;
use crate::time::Slot;
use crate::view::SystemView;

/// Shared state and plumbing for one simulation run.
///
/// Constructed by an engine's entry point from a [`SimConfig`], an arrival
/// process, and a jammer; consumed by [`EngineCore::finish`] into the run's
/// [`RunResult`]. The third parameter is the run's [`FeedbackModel`],
/// defaulting to the paper's [`Ternary`] channel.
#[derive(Debug)]
pub struct EngineCore<A, J, M = Ternary> {
    /// The run's deterministic RNG. Engines draw protocol coins from it so
    /// one seed fixes the entire execution.
    pub rng: SimRng,
    /// Accounting state; engines attribute per-packet sends/listens through
    /// it directly.
    pub metrics: Metrics,
    seed: u64,
    limits: Limits,
    steps: u64,
    cursor: ArrivalCursor<A>,
    jammer: J,
    model: M,
    /// Physical-minus-logical clock skew accumulated from model overhead.
    skew: u64,
}

impl<A: ArrivalProcess, J: Jammer> EngineCore<A, J> {
    /// Creates the substrate for one run under the default [`Ternary`]
    /// channel.
    ///
    /// (Defined on the `Ternary`-concrete impl so plain `EngineCore::new`
    /// call sites keep inferring the default model — default type
    /// parameters do not participate in expression inference.)
    pub fn new(cfg: &SimConfig, arrivals: A, jammer: J) -> Self {
        Self::with_model(cfg, arrivals, jammer, Ternary)
    }
}

impl<A: ArrivalProcess, J: Jammer, M: FeedbackModel> EngineCore<A, J, M> {
    /// Creates the substrate for one run under an explicit feedback model.
    pub fn with_model(cfg: &SimConfig, arrivals: A, jammer: J, model: M) -> Self {
        EngineCore {
            rng: SimRng::new(cfg.seed),
            metrics: Metrics::new(cfg.metrics),
            seed: cfg.seed,
            limits: cfg.limits,
            steps: 0,
            cursor: ArrivalCursor::new(arrivals),
            jammer,
            model,
            skew: 0,
        }
    }

    /// The run's feedback model (models are tiny `Copy` types).
    #[inline]
    pub fn model(&self) -> M {
        self.model
    }

    /// Physical-minus-logical clock skew so far (identically 0 under
    /// [`Ternary`]).
    #[inline]
    pub fn skew(&self) -> u64 {
        self.skew
    }

    /// The run's safety limits.
    #[inline]
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Whether slot `t` may still be processed (slot clock and step budget).
    #[inline]
    pub fn within_limits(&self, t: Slot) -> bool {
        t <= self.limits.max_slot && self.steps < self.limits.max_steps
    }

    /// Whether the step budget alone is spent.
    #[inline]
    pub fn steps_exhausted(&self) -> bool {
        self.steps >= self.limits.max_steps
    }

    /// Records one completed engine step (a resolved or simulated slot).
    #[inline]
    pub fn step_done(&mut self) {
        self.steps += 1;
    }

    /// Peeks the next arrival event at slot ≥ `t` under the current system
    /// state, honouring the adaptive/non-adaptive consumption contract of
    /// [`crate::arrivals`].
    pub fn peek_arrival(&mut self, t: Slot, backlog: u64, contention: f64) -> Option<(Slot, u32)> {
        let view = SystemView {
            slot: t,
            backlog,
            contention,
            totals: &self.metrics.totals,
        };
        self.cursor.peek(t, &view, &mut self.rng)
    }

    /// Marks the last peeked arrival event as consumed.
    #[inline]
    pub fn consume_arrival(&mut self) {
        self.cursor.consume();
    }

    /// Registers an injected packet and returns its id. The injection is
    /// recorded at physical time so latencies stay internally consistent
    /// under time-dilating models.
    #[inline]
    pub fn note_inject(&mut self, t: Slot) -> PacketId {
        self.metrics.note_inject(t + self.skew)
    }

    /// Marks `id` as departed in logical slot `t`, recorded at physical
    /// time. Engines must route departures through here (not directly via
    /// `metrics`) so skew is applied uniformly.
    #[inline]
    pub fn note_depart(&mut self, id: PacketId, t: Slot) {
        self.metrics.note_depart(id, t + self.skew);
    }

    /// Full jamming decision for slot `t`: the adaptive decision first,
    /// then — only if it declined and the jammer has a reactive component —
    /// the reactive decision over the visible sender set.
    pub fn jam_decision(
        &mut self,
        t: Slot,
        backlog: u64,
        contention: f64,
        senders: &[PacketId],
    ) -> bool {
        let view = SystemView {
            slot: t,
            backlog,
            contention,
            totals: &self.metrics.totals,
        };
        let mut jam = self.jammer.jams(t, &view, &mut self.rng);
        if !jam && self.jammer.is_reactive() {
            jam = self.jammer.reactive_jams(t, senders, &view, &mut self.rng);
        }
        jam
    }

    /// Adaptive-only jamming decision, for slots provably without senders
    /// (a reactive component can never fire on an empty sender set).
    pub fn adaptive_jam(&mut self, t: Slot, backlog: u64, contention: f64) -> bool {
        let view = SystemView {
            slot: t,
            backlog,
            contention,
            totals: &self.metrics.totals,
        };
        self.jammer.jams(t, &view, &mut self.rng)
    }

    /// Resolves slot `t` from the jam decision and sender set, and accounts
    /// it (at physical time). The caller forwards the outcome to its hooks.
    ///
    /// If the feedback model charges overhead for the outcome, the skew
    /// grows *after* the slot is recorded: the slot itself sits at the
    /// current physical time and everything later shifts.
    pub fn resolve(&mut self, t: Slot, jam: bool, senders: &[PacketId]) -> SlotOutcome {
        let outcome = resolve_slot(jam, senders);
        self.metrics.note_slot(t + self.skew, &outcome);
        let extra = self.model.overhead_slots(&outcome);
        if extra > 0 {
            self.skew += extra;
            self.metrics.note_overhead(extra);
        }
        outcome
    }

    /// Accounts a gap `[from, to)` in which no packet accesses the channel.
    ///
    /// With packets in the system (`backlog > 0`) the gap is active: the
    /// jammer's range sampler decides how many of its slots were jammed and
    /// the count is returned (for [`Hooks::on_gap`]). Inactive gaps are not
    /// accounted (the paper ignores inactive slots) and yield `None`.
    ///
    /// [`Hooks::on_gap`]: crate::hooks::Hooks::on_gap
    pub fn account_gap(
        &mut self,
        from: Slot,
        to: Slot,
        backlog: u64,
        contention: f64,
    ) -> Option<u64> {
        if backlog > 0 {
            let jammed = {
                let view = SystemView {
                    slot: from,
                    backlog,
                    contention,
                    totals: &self.metrics.totals,
                };
                self.jammer.count_range(from, to, &view, &mut self.rng)
            };
            self.metrics
                .note_gap(from + self.skew, to + self.skew, true, jammed);
            Some(jammed)
        } else {
            self.metrics
                .note_gap(from + self.skew, to + self.skew, false, 0);
            None
        }
    }

    /// Takes a trajectory sample if the active-slot count crossed a
    /// checkpoint (sampled at physical time).
    #[inline]
    pub fn checkpoint(&mut self, slot: Slot, backlog: u64, contention: f64) {
        self.metrics
            .maybe_checkpoint(slot + self.skew, backlog, contention);
    }

    /// Finalizes the run.
    pub fn finish(self) -> RunResult {
        self.metrics.finish(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Batch;
    use crate::jamming::{NoJam, PeriodicBurst, ReactiveAny};

    #[test]
    fn limits_gate_slot_clock_and_steps() {
        let cfg = SimConfig::new(1).limits(Limits {
            max_slot: 10,
            max_steps: 3,
        });
        let mut core = EngineCore::new(&cfg, Batch::new(1), NoJam);
        assert!(core.within_limits(0));
        assert!(core.within_limits(10));
        assert!(!core.within_limits(11));
        for _ in 0..3 {
            assert!(!core.steps_exhausted());
            core.step_done();
        }
        assert!(core.steps_exhausted());
        assert!(!core.within_limits(0));
    }

    #[test]
    fn arrival_cursor_consumption_via_core() {
        let cfg = SimConfig::new(2);
        let mut core = EngineCore::new(&cfg, Batch::new(5), NoJam);
        assert_eq!(core.peek_arrival(0, 0, 0.0), Some((0, 5)));
        assert_eq!(core.peek_arrival(0, 0, 0.0), Some((0, 5)), "peek caches");
        core.consume_arrival();
        assert_eq!(core.peek_arrival(1, 5, 0.0), None);
    }

    #[test]
    fn jam_decision_consults_reactive_only_with_senders() {
        let cfg = SimConfig::new(3);
        let mut core = EngineCore::new(&cfg, Batch::new(1), ReactiveAny::new(1));
        // Adaptive-only path can never fire for a reactive adversary.
        assert!(!core.adaptive_jam(0, 1, 1.0));
        // No senders: reactive declines.
        assert!(!core.jam_decision(1, 1, 1.0, &[]));
        // A sender set triggers it, once (budget 1).
        assert!(core.jam_decision(2, 1, 1.0, &[PacketId(0)]));
        assert!(!core.jam_decision(3, 1, 1.0, &[PacketId(0)]));
    }

    #[test]
    fn resolve_accounts_the_slot() {
        let cfg = SimConfig::new(4);
        let mut core = EngineCore::new(&cfg, Batch::new(1), NoJam);
        let outcome = core.resolve(7, false, &[PacketId(0)]);
        assert_eq!(outcome, SlotOutcome::Success { id: PacketId(0) });
        assert_eq!(core.metrics.totals.successes, 1);
        assert_eq!(core.metrics.totals.last_slot, 7);
    }

    #[test]
    fn gap_accounting_splits_active_and_inactive() {
        let cfg = SimConfig::new(5);
        let mut core = EngineCore::new(&cfg, Batch::new(1), PeriodicBurst::new(10, 3, 0));
        // Active gap: jam slots counted exactly by the deterministic jammer.
        assert_eq!(core.account_gap(0, 20, 2, 0.5), Some(6));
        assert_eq!(core.metrics.totals.active_slots, 20);
        assert_eq!(core.metrics.totals.jammed_active, 6);
        // Inactive gap: ignored entirely.
        assert_eq!(core.account_gap(20, 40, 0, 0.0), None);
        assert_eq!(core.metrics.totals.active_slots, 20);
    }

    #[test]
    fn costly_model_skews_physical_time_only() {
        use crate::feedback::CostlyCollisions;
        let cfg = SimConfig::new(6);
        let mut core =
            EngineCore::with_model(&cfg, Batch::new(3), NoJam, CostlyCollisions::new(0.5));
        let a = core.note_inject(0);
        let b = core.note_inject(0);
        // Logical slot 0: a 2-way collision → 1 extra physical slot.
        let o = core.resolve(0, false, &[a, b]);
        assert_eq!(o, SlotOutcome::Collision { senders: 2 });
        assert_eq!(core.metrics.totals.last_slot, 0, "slot recorded pre-skew");
        assert_eq!(core.skew(), 1);
        assert_eq!(core.metrics.totals.overhead_slots, 1);
        // Logical slot 1 lands at physical slot 2.
        core.resolve(1, false, &[a]);
        assert_eq!(core.metrics.totals.last_slot, 2);
        core.note_depart(a, 1);
        // The logical partition is unaffected by the dilation.
        let t = core.metrics.totals;
        assert_eq!(t.active_slots, 2);
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active
        );
    }

    #[test]
    fn ternary_core_has_zero_skew() {
        let cfg = SimConfig::new(7);
        let mut core = EngineCore::new(&cfg, Batch::new(2), NoJam);
        core.resolve(0, false, &[PacketId(0), PacketId(1)]);
        core.resolve(1, true, &[PacketId(0), PacketId(1)]);
        assert_eq!(core.skew(), 0);
        assert_eq!(core.metrics.totals.overhead_slots, 0);
    }

    #[test]
    fn finish_carries_the_seed() {
        let cfg = SimConfig::new(99);
        let core = EngineCore::new(&cfg, Batch::new(0), NoJam);
        assert_eq!(core.finish().seed, 99);
    }
}
