//! The retained heap-based sparse loop, kept as the equivalence oracle for
//! the calendar-queue engine in [`sparse`](crate::engine::sparse).
//!
//! This is a semantics-preserving port of the previous `run_sparse`
//! implementation: one binary-heap entry per scheduled access, keyed
//! `(slot, insertion_seq)` — `insertion_seq` counts scheduling calls
//! across the run — so same-slot participants pop in the order their
//! events were scheduled. That is exactly the order the calendar queue
//! hands back for free (buckets drain in push order; see
//! `crate::engine::wake`), which is what lets the optimized engine skip
//! its former per-slot id sort while this oracle stays bit-identical to
//! it. (Historical deltas, shared by both engines: delay sampling goes
//! through the `Protocol::next_wake` trait migration; a finite delay whose
//! absolute slot saturates past the representable horizon collapses to
//! "never" via `time::wake_slot`; and the processing order within a slot
//! is insertion order, where the pre-PR-4 loops used ascending id order.)
//! The optimized engine must produce
//! *bit-identical* [`RunResult`]s — same RNG draw order, same floating-point
//! accumulation order — and the `sparse_equivalence` test suite holds the
//! two to that standard across the canonical scenario registry. Keep this
//! loop dumb and obviously correct; speed belongs in `sparse.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arrivals::ArrivalProcess;
use crate::config::SimConfig;
use crate::engine::core::EngineCore;
use crate::feedback::{FeedbackModel, Observation, SlotOutcome, Ternary};
use crate::hooks::Hooks;
use crate::jamming::Jammer;
use crate::metrics::RunResult;
use crate::packet::PacketId;
use crate::protocol::SparseProtocol;
use crate::rng::SimRng;
use crate::time::{offset, wake_slot, Slot};

/// Runs the reference event-driven simulation (binary-heap wake set).
///
/// Semantically identical to [`run_sparse`](crate::engine::sparse::run_sparse)
/// — and verified bit-identical by the equivalence tests — but pays
/// `O(log n)` heap traffic per channel access. Use it to validate engine
/// changes, not for production sweeps.
pub fn run_sparse_reference<P, F, A, J, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    H: Hooks<P>,
{
    run_sparse_reference_model(cfg, arrivals, jammer, Ternary, factory, hooks)
}

/// [`run_sparse_reference`] under an explicit [`FeedbackModel`], so the
/// dumb oracle loop can pin the optimized engine under every model.
pub fn run_sparse_reference_model<P, F, A, J, M, H>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    mut factory: F,
    hooks: &mut H,
) -> RunResult
where
    P: SparseProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
    H: Hooks<P>,
{
    let mut core = EngineCore::with_model(cfg, arrivals, jammer, model);

    let mut packets: Vec<Option<P>> = Vec::new();
    // Each live packet has exactly one scheduled access event in the heap,
    // keyed `(slot, seq)`: `seq` is the event's position in the run's
    // global scheduling stream, so same-slot pops replay insertion order.
    let mut heap: BinaryHeap<Reverse<(Slot, u64, u32)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    // Pushes an access event, stamping the next insertion sequence number.
    let mut push = |heap: &mut BinaryHeap<Reverse<(Slot, u64, u32)>>, slot: Slot, id: u32| {
        heap.push(Reverse((slot, seq, id)));
        seq += 1;
    };
    let mut active_count: u64 = 0;
    let mut contention = 0.0f64;

    let mut participants: Vec<PacketId> = Vec::new();
    let mut senders: Vec<PacketId> = Vec::new();
    let mut listeners: Vec<PacketId> = Vec::new();

    // First slot not yet accounted.
    let mut now: Slot = 0;

    // Accounts a silent gap `[from, to)`, forwarding active gaps to hooks.
    fn gap<A: ArrivalProcess, J: Jammer, M: FeedbackModel, P, H: Hooks<P>>(
        core: &mut EngineCore<A, J, M>,
        hooks: &mut H,
        from: Slot,
        to: Slot,
        backlog: u64,
        contention: f64,
    ) {
        if let Some(jammed) = core.account_gap(from, to, backlog, contention) {
            hooks.on_gap(from, to, jammed);
        }
    }

    loop {
        if core.steps_exhausted() {
            break;
        }
        let next_access: Option<Slot> = heap.peek().map(|Reverse((s, _, _))| *s);
        let next_arrival: Option<Slot> = core
            .peek_arrival(now, active_count, contention)
            .map(|(s, _)| s);
        let te = match (next_access, next_arrival) {
            (None, None) => {
                // Nothing will ever happen again. If packets remain (a
                // degenerate protocol that never accesses), the rest of the
                // horizon is provably silent: account it in bulk, then stop.
                if active_count > 0 {
                    let end = offset(core.limits().max_slot, 1);
                    if end > now {
                        gap(&mut core, hooks, now, end, active_count, contention);
                    }
                }
                break;
            }
            (a, b) => a.unwrap_or(Slot::MAX).min(b.unwrap_or(Slot::MAX)),
        };
        if te > core.limits().max_slot {
            // Account the remaining gap up to the limit, then stop.
            let end = offset(core.limits().max_slot, 1);
            if end > now {
                gap(&mut core, hooks, now, end, active_count, contention);
            }
            break;
        }

        // Account the silent gap [now, te).
        if te > now {
            gap(&mut core, hooks, now, te, active_count, contention);
            core.checkpoint(te - 1, active_count, contention);
        }

        // Inject all arrivals scheduled for slot te.
        while let Some((ta, count)) = core.peek_arrival(te, active_count, contention) {
            if ta != te {
                break;
            }
            core.consume_arrival();
            for _ in 0..count {
                let id = core.note_inject(te);
                let mut p = factory(&mut core.rng);
                contention += p.send_probability();
                hooks.on_inject(te, id, &p);
                active_count += 1;
                // Fresh packets may access from their injection slot onward.
                let delay = p.next_wake(&mut core.rng);
                debug_assert_eq!(packets.len(), id.index());
                packets.push(Some(p));
                if let Some(slot) = wake_slot(te, delay) {
                    push(&mut heap, slot, id.0);
                }
            }
        }

        // Collect every packet accessing the channel in slot te, in
        // (slot, seq) pop order — the slot's insertion order.
        participants.clear();
        while let Some(&Reverse((s, _, id))) = heap.peek() {
            if s != te {
                break;
            }
            heap.pop();
            participants.push(PacketId(id));
        }

        if participants.is_empty() {
            // Arrival-only slot: nobody accesses; resolve as empty/jammed
            // for accounting (no listener exists to observe it).
            if active_count > 0 {
                let jam = core.adaptive_jam(te, active_count, contention);
                let outcome = core.resolve(te, jam, &[]);
                hooks.on_slot(te, &outcome);
                core.checkpoint(te, active_count, contention);
            }
            now = te + 1;
            core.step_done();
            continue;
        }

        // Split participants into senders and pure listeners.
        senders.clear();
        listeners.clear();
        for &id in &participants {
            let p = packets[id.index()].as_mut().expect("participant state");
            if p.send_on_access(&mut core.rng) {
                senders.push(id);
            } else {
                listeners.push(id);
            }
        }

        let jam = core.jam_decision(te, active_count, contention, &senders);
        let outcome = core.resolve(te, jam, &senders);
        hooks.on_slot(te, &outcome);
        let fb = model.listener_feedback(&outcome);

        for &id in &listeners {
            core.metrics.note_listen(id);
            let obs = Observation::listener(te, fb);
            let p = packets[id.index()].as_mut().expect("listener state");
            let before = p.clone();
            p.observe(&obs);
            contention += p.send_probability() - before.send_probability();
            hooks.on_observe(te, id, &before, p);
            let delay = p.next_wake(&mut core.rng);
            if let Some(slot) = wake_slot(te + 1, delay) {
                push(&mut heap, slot, id.0);
            }
        }

        let winner = match outcome {
            SlotOutcome::Success { id } => Some(id),
            _ => None,
        };
        for &id in &senders {
            core.metrics.note_send(id);
            let succeeded = winner == Some(id);
            let obs =
                Observation::sender(te, model.sender_feedback(&outcome, succeeded), succeeded);
            let p = packets[id.index()].as_mut().expect("sender state");
            let before = p.clone();
            p.observe(&obs);
            contention += p.send_probability() - before.send_probability();
            hooks.on_observe(te, id, &before, p);
            if !succeeded {
                let delay = p.next_wake(&mut core.rng);
                if let Some(slot) = wake_slot(te + 1, delay) {
                    push(&mut heap, slot, id.0);
                }
            }
        }
        if let Some(id) = winner {
            let p = packets[id.index()].take().expect("winner state");
            contention -= p.send_probability();
            hooks.on_depart(te, id, &p);
            core.note_depart(id, te);
            active_count -= 1;
        }

        core.checkpoint(te, active_count, contention);
        now = te + 1;
        core.step_done();
    }

    core.finish()
}
