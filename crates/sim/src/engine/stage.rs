//! Address-ordered staging of a slot's participant set.
//!
//! At million-station scale the sparse engine's per-slot passes are bound
//! by memory, not math: a slot's participants arrive in insertion order,
//! which is *random* with respect to their positions in the hot state
//! lane, so every state touch is an independent cache (and, past a few
//! hundred MB, TLB) miss into a lane far larger than any cache level. The
//! fix is to split address order from processing order:
//!
//! 1. **Permute** — [`StagePlan::build_order`] sorts the participants by
//!    id with an LSD radix pass over 8-bit digits — counting + stable
//!    scatter, no comparison sort on the hot path. Id order *is* dense-
//!    address order (the table appends injections in id order and
//!    compaction is order-preserving), so the sort never touches a table
//!    lane, stays in L1, and still yields the address-ascending
//!    permutation plus its inverse `pos_of` (insertion position → scratch
//!    position).
//! 2. **Gather** — [`StagePlan::gather`] resolves the sorted ids through
//!    the remap lane, then copies their states into a contiguous scratch,
//!    both in ascending address order. Each sweep is a stream of mutually
//!    independent loads with an explicit prefetch running ahead, so misses
//!    overlap in the memory pipeline instead of serializing (see the
//!    method docs for why the sweeps are deliberately *not* fused).
//! 3. **Process** — the split/observe/wake/sender passes run against the
//!    scratch, indexing it *through `pos_of` in canonical insertion
//!    order*. Every RNG draw, observation, hook call, and contention
//!    accumulation therefore happens in exactly the (slot, seq) order the
//!    three-way oracle suite pins — bit-identical by construction; only
//!    the memory addresses moved.
//! 4. **Scatter** — [`PacketTable::scatter_from`] writes the mutated
//!    states back through the same address-sorted handles, a second
//!    streaming sweep, before the winner's depart path reads the table.
//!
//! Staging is gated ([`staging_applies`]): it pays two extra copies of
//! every participant state, which is pure overhead when the state lane
//! already fits in cache or when the participant set is too small to
//! amortize the permutation. Below the gate the engine runs the direct
//! path — the exact pre-staging machine code.

use crate::engine::table::{Dense, PacketTable};
use crate::engine::wake::{cap_scratch, SCRATCH_CAP};
use crate::packet::PacketId;

/// Minimum participants in a slot before staging pays: below this the
/// radix pass and the two copies cost more than the misses they save.
pub const STAGE_MIN_PARTICIPANTS: usize = 64;

/// Minimum hot-state-lane size before staging pays: lanes under ~4 MiB
/// live comfortably in the last-level cache, where insertion-order access
/// already hits and the gather/scatter copies are pure overhead.
pub const STAGE_MIN_LANE_BYTES: usize = 4 << 20;

/// Whether a slot with `participants` packets over a state lane of
/// `lane_bytes` should run the staged gather/scatter path.
///
/// The dual gate keeps small runs on the direct path (the 16384-tier
/// bench, and every scenario in the pinned feedback recordings, never
/// stages) while batch workloads over multi-MB lanes — the memory-wall
/// regime — stage every dense slot.
#[inline]
pub fn staging_applies(participants: usize, lane_bytes: usize) -> bool {
    participants >= STAGE_MIN_PARTICIPANTS && lane_bytes >= STAGE_MIN_LANE_BYTES
}

/// The per-slot address-sorting plan: reusable buffers for the radix
/// permutation, the address-ascending handle list, and the inverse
/// permutation mapping insertion order to scratch positions.
///
/// One plan lives for the whole run; [`build_order`](Self::build_order)
/// and [`gather`](Self::gather) refill it per staged slot and
/// [`cap`](Self::cap) returns pathological-slot excess at end-of-slot
/// like every other engine scratch vector.
#[derive(Debug, Default)]
pub struct StagePlan {
    /// Dense indices, permuted in place by the radix passes.
    keys: Vec<u32>,
    /// Insertion positions carried alongside `keys` through the sort.
    pos: Vec<u32>,
    /// Ping-pong buffers for the stable radix scatter.
    tmp_keys: Vec<u32>,
    tmp_pos: Vec<u32>,
    /// The participants' dense handles in ascending address order.
    handles: Vec<Dense>,
    /// Inverse permutation: `pos_of[k]` is the scratch position of the
    /// participant at insertion position `k`.
    pos_of: Vec<u32>,
}

impl StagePlan {
    /// An empty plan; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the slot's ordering: radix-sorts the participants by id
    /// (LSD over 8-bit digits, skipping digit columns that cannot
    /// distinguish any keys) and fills [`pos_of`](Self::pos_of). The
    /// handle list is produced by the subsequent [`gather`](Self::gather),
    /// which runs the remap-lane resolve and the state copy as two
    /// separate prefetched sweeps.
    ///
    /// Sorting by *id* yields exactly the address-ascending order: the
    /// table appends injections in id order and compaction preserves the
    /// relative order of the survivors, so for live packets dense position
    /// ascends with id (see [`PacketTable`]'s module docs). Keying the
    /// sort on the ids the caller already holds keeps the whole ordering
    /// step in L1 — no table lane is touched at all.
    ///
    /// Draws no randomness and mutates no engine state, so building the
    /// plan before the split pass leaves the RNG stream untouched.
    pub fn build_order(&mut self, participants: &[u32]) {
        let n = participants.len();
        self.keys.clear();
        self.keys.extend_from_slice(participants);
        self.pos.clear();
        self.pos.extend(0..n as u32);

        // One scan fills the histograms of every 8-bit digit column; the
        // scatter passes then run only over columns that actually
        // distinguish keys (a column whose occupied bucket holds every
        // key cannot reorder anything). Keys are distinct ids, but the
        // scatter is stable anyway.
        let mut counts = [[0u32; 256]; 4];
        for &k in &self.keys {
            counts[0][(k & 0xff) as usize] += 1;
            counts[1][((k >> 8) & 0xff) as usize] += 1;
            counts[2][((k >> 16) & 0xff) as usize] += 1;
            counts[3][(k >> 24) as usize] += 1;
        }
        self.tmp_keys.resize(n, 0);
        self.tmp_pos.resize(n, 0);
        for (digit, counts) in counts.iter_mut().enumerate() {
            if counts.iter().all(|&c| c == 0 || c as usize == n) {
                // Single occupied bucket: this digit column is constant.
                continue;
            }
            let shift = 8 * digit as u32;
            let mut sum = 0u32;
            for c in counts.iter_mut() {
                let here = *c;
                *c = sum;
                sum += here;
            }
            for (&k, &p) in self.keys.iter().zip(&self.pos) {
                let slot = &mut counts[((k >> shift) & 0xff) as usize];
                self.tmp_keys[*slot as usize] = k;
                self.tmp_pos[*slot as usize] = p;
                *slot += 1;
            }
            std::mem::swap(&mut self.keys, &mut self.tmp_keys);
            std::mem::swap(&mut self.pos, &mut self.tmp_pos);
        }
        // Ping-pong may leave the tmp buffers longer than `n` from an
        // earlier, larger slot; the truncates keep the invariant that all
        // four buffers are exactly the slot's length.
        self.keys.truncate(n);
        self.pos.truncate(n);

        self.pos_of.clear();
        self.pos_of.resize(n, 0);
        for (j, &k) in self.pos.iter().enumerate() {
            self.pos_of[k as usize] = j as u32;
        }
    }

    /// The gather: resolves the address-sorted ids through the remap lane
    /// (recording the handles for [`scatter_from`]'s write-back), then
    /// copies their states into `scratch` in ascending address order.
    ///
    /// Deliberately **two** sweeps, not one fused loop: inside a fused
    /// loop every state read depends on the remap read just before it, a
    /// two-deep miss chain that halves the memory-level parallelism the
    /// out-of-order window can extract (measured ~80 cyc/access fused vs
    /// ~55 split at the million-station tier). Kept separate, each sweep
    /// is a stream of fully independent loads, and an explicit prefetch a
    /// few iterations ahead keeps more misses in flight than the reorder
    /// window alone covers.
    ///
    /// [`scatter_from`]: PacketTable::scatter_from
    pub fn gather<P: Clone>(&mut self, table: &PacketTable<P>, scratch: &mut Vec<P>) {
        // How far ahead each sweep hints. The remap lane is cache-dense
        // (4 B entries, often L2/L3-resident), so a short lead suffices;
        // the state lane misses to DRAM, so the copy sweep hints further
        // out to cover the longer latency.
        const RESOLVE_AHEAD: usize = 16;
        const COPY_AHEAD: usize = 32;

        self.handles.clear();
        self.handles.reserve(self.keys.len());
        for (i, &id) in self.keys.iter().enumerate() {
            if let Some(&ahead) = self.keys.get(i + RESOLVE_AHEAD) {
                table.prefetch_resolve(PacketId(ahead));
            }
            self.handles.push(table.resolve(PacketId(id)));
        }
        debug_assert!(
            self.handles.windows(2).all(|w| w[0].0 < w[1].0),
            "id order diverged from dense-address order"
        );

        scratch.clear();
        scratch.reserve(self.handles.len());
        for (i, &d) in self.handles.iter().enumerate() {
            if let Some(&ahead) = self.handles.get(i + COPY_AHEAD) {
                table.prefetch_state(ahead);
            }
            scratch.push(table.state_at(d).clone());
        }
    }

    /// The participants' dense handles in ascending address order — the
    /// gather/scatter order.
    #[inline]
    pub fn handles(&self) -> &[Dense] {
        &self.handles
    }

    /// The inverse permutation: `pos_of()[k]` is the scratch position
    /// holding the state of the participant at insertion position `k`.
    #[inline]
    pub fn pos_of(&self) -> &[u32] {
        &self.pos_of
    }

    /// Allocated bytes across all plan buffers, counted against the
    /// engine's bytes-per-station capacity budget by the bench probe.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.keys.capacity()
            + self.pos.capacity()
            + self.tmp_keys.capacity()
            + self.tmp_pos.capacity()
            + self.pos_of.capacity())
            * size_of::<u32>()
            + self.handles.capacity() * size_of::<Dense>()
    }

    /// End-of-slot hysteresis: returns pathological-slot excess capacity,
    /// same policy as the engine's other scratch vectors.
    pub fn cap(&mut self) {
        cap_scratch(&mut self.keys, SCRATCH_CAP);
        cap_scratch(&mut self.pos, SCRATCH_CAP);
        cap_scratch(&mut self.tmp_keys, SCRATCH_CAP);
        cap_scratch(&mut self.tmp_pos, SCRATCH_CAP);
        cap_scratch(&mut self.handles, SCRATCH_CAP);
        cap_scratch(&mut self.pos_of, SCRATCH_CAP);
    }
}

/// A slot's state arena: where the listener/sender passes read and write
/// participant states, addressed by per-slot position.
///
/// Two implementations make the direct and staged paths one piece of
/// code: for [`PacketTable`] a position is a dense-lane index (the direct
/// path — identical machine code to the pre-staging engine), for `Vec<P>`
/// it is a scratch index (the staged path). The passes are generic over
/// this trait, so bit-identity between the paths is by monomorphization of
/// the same statements, not by keeping two copies in sync.
pub(crate) trait SlotArena<P> {
    /// The state at per-slot position `pos`.
    fn at_mut(&mut self, pos: u32) -> &mut P;
    /// Four distinct positions' states as a batch-lane array for the
    /// 4-wide observe/draw surface.
    fn four_at(&mut self, pos: [u32; 4]) -> [&mut P; 4];
}

impl<P> SlotArena<P> for PacketTable<P> {
    #[inline]
    fn at_mut(&mut self, pos: u32) -> &mut P {
        self.state_at_mut(Dense(pos))
    }
    #[inline]
    fn four_at(&mut self, pos: [u32; 4]) -> [&mut P; 4] {
        self.lanes4_at(pos.map(Dense))
    }
}

impl<P> SlotArena<P> for Vec<P> {
    #[inline]
    fn at_mut(&mut self, pos: u32) -> &mut P {
        &mut self[pos as usize]
    }
    #[inline]
    fn four_at(&mut self, pos: [u32; 4]) -> [&mut P; 4] {
        self.as_mut_slice()
            .get_disjoint_mut(pos.map(|p| p as usize))
            .expect("scratch positions are distinct")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(n: u32) -> PacketTable<u64> {
        let mut t = PacketTable::new();
        for id in 0..n {
            t.insert(PacketId(id), 1000 + id as u64);
        }
        t
    }

    /// Splitmix-style scramble for deterministic pseudo-random id orders.
    fn scramble(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn plan_sorts_by_address_and_inverts_exactly() {
        let t = table_of(1000);
        // Participants in a scrambled (insertion) order.
        let mut ids: Vec<u32> = (0..1000).collect();
        ids.sort_by_key(|&id| scramble(id as u64));
        let mut plan = StagePlan::new();
        plan.build_order(&ids);
        let mut scratch: Vec<u64> = Vec::new();
        plan.gather(&t, &mut scratch);

        // Handles are strictly ascending by dense address.
        let addrs: Vec<usize> = plan.handles().iter().map(|d| d.index()).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]), "not address-sorted");
        assert_eq!(addrs.len(), 1000);

        // The inverse permutation routes insertion position k to the
        // scratch slot holding that participant's handle and state.
        for (k, &id) in ids.iter().enumerate() {
            let j = plan.pos_of()[k] as usize;
            assert_eq!(plan.handles()[j], t.resolve(PacketId(id)), "k={k}");
            assert_eq!(scratch[j], 1000 + id as u64, "k={k}");
        }
    }

    #[test]
    fn plan_handles_survivors_after_compaction() {
        let mut t = table_of(300);
        for id in (0..300).step_by(2) {
            t.retire(PacketId(id));
        }
        t.compact();
        let ids: Vec<u32> = (1..300).step_by(2).rev().collect();
        let mut plan = StagePlan::new();
        plan.build_order(&ids);
        let mut scratch: Vec<u64> = Vec::new();
        plan.gather(&t, &mut scratch);
        let addrs: Vec<usize> = plan.handles().iter().map(|d| d.index()).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
        for (k, &id) in ids.iter().enumerate() {
            let j = plan.pos_of()[k] as usize;
            assert_eq!(plan.handles()[j], t.resolve(PacketId(id)));
        }
    }

    #[test]
    fn plan_reuse_shrinks_cleanly_between_slots() {
        // A big slot followed by a tiny one: the second build must not see
        // stale entries from the first, and cap() returns the excess.
        let t = table_of(20_000);
        let big: Vec<u32> =
            (0..20_000)
                .map(|k| (scramble(k) % 20_000) as u32)
                .fold(Vec::new(), |mut v, id| {
                    if !v.contains(&id) && v.len() < 6000 {
                        v.push(id);
                    }
                    v
                });
        let mut plan = StagePlan::new();
        let mut scratch: Vec<u64> = Vec::new();
        plan.build_order(&big);
        plan.gather(&t, &mut scratch);
        assert_eq!(plan.handles().len(), big.len());

        plan.build_order(&[7, 3, 11]);
        plan.gather(&t, &mut scratch);
        assert_eq!(plan.handles().len(), 3);
        assert_eq!(plan.pos_of().len(), 3);
        let addrs: Vec<usize> = plan.handles().iter().map(|d| d.index()).collect();
        assert_eq!(addrs, vec![3, 7, 11]);
        assert_eq!(plan.pos_of(), &[1, 0, 2]);

        plan.cap();
        assert!(plan.footprint_bytes() <= 6 * SCRATCH_CAP * 8);
    }

    #[test]
    fn gate_requires_both_fanout_and_lane_size() {
        assert!(staging_applies(
            STAGE_MIN_PARTICIPANTS,
            STAGE_MIN_LANE_BYTES
        ));
        assert!(!staging_applies(
            STAGE_MIN_PARTICIPANTS - 1,
            STAGE_MIN_LANE_BYTES
        ));
        assert!(!staging_applies(
            STAGE_MIN_PARTICIPANTS,
            STAGE_MIN_LANE_BYTES - 1
        ));
        // The 16384 bench tier (64 B states, 1 MiB lane) never stages.
        assert!(!staging_applies(2000, 16_384 * 64));
        // The 100k and 1M tiers do.
        assert!(staging_applies(2000, 100_000 * 64));
        assert!(staging_applies(2000, 1_000_000 * 64));
    }

    #[test]
    fn staged_arena_matches_table_arena() {
        // The same mutations through both SlotArena impls land on the same
        // logical packets.
        let mut t = table_of(64);
        let ids: Vec<u32> = (0..64).collect();
        let mut plan = StagePlan::new();
        plan.build_order(&ids);
        let mut scratch: Vec<u64> = Vec::new();
        plan.gather(&t, &mut scratch);

        for k in 0..64u32 {
            *SlotArena::at_mut(&mut scratch, plan.pos_of()[k as usize]) += 5;
        }
        let quad = [
            plan.pos_of()[0],
            plan.pos_of()[1],
            plan.pos_of()[2],
            plan.pos_of()[3],
        ];
        let lanes = SlotArena::four_at(&mut scratch, quad);
        *lanes[2] += 100;

        t.scatter_from(plan.handles(), &scratch);
        assert_eq!(*t.state(PacketId(0)), 1005);
        assert_eq!(*t.state(PacketId(2)), 1107);
        assert_eq!(*t.state(PacketId(63)), 1068);
    }
}
