//! Simulation engines.
//!
//! Three engines share one semantics (the model of paper §1.1):
//!
//! * [`dense`] — slot-by-slot reference engine, `O(packets)` per slot. The
//!   oracle the others are validated against.
//! * [`sparse`] — event-driven engine for [`SparseProtocol`] implementations,
//!   `O(log n)` per channel access; silent slots are skipped exactly.
//! * [`grouped`] — cohort engine for [`SymmetricProtocol`] baselines that
//!   listen every slot, `O(groups)` per slot.
//!
//! [`SparseProtocol`]: crate::protocol::SparseProtocol
//! [`SymmetricProtocol`]: grouped::SymmetricProtocol

pub mod dense;
pub mod grouped;
pub mod sparse;

pub use dense::run_dense;
pub use grouped::{run_grouped, SymmetricProtocol};
pub use sparse::run_sparse;
