//! Simulation engines.
//!
//! Three engines share one semantics (the model of paper §1.1) and one
//! substrate: every engine is a *stepping strategy* over the shared
//! [`EngineCore`], which owns the RNG, arrival cursor, jamming decision
//! order, slot resolution, metrics, and limits. The strategies differ only
//! in their per-packet bookkeeping and slot visit order:
//!
//! * [`dense`] — slot-by-slot reference engine, `O(packets)` per slot. The
//!   oracle the others are validated against.
//! * [`sparse`] — event-driven engine for [`SparseProtocol`] implementations:
//!   a hierarchical timing-wheel wake set ([`wake`]) makes a channel access
//!   `O(1)` amortized out to million-station horizons, per-packet state
//!   lives in an epoch-compacted dense table ([`table`]) split into
//!   per-field lanes, silent slots are skipped exactly, and high-fanout
//!   slots over cache-busting state lanes run the address-ordered staged
//!   gather/scatter path ([`stage`]). Slots are processed in insertion
//!   order — the staging permutation reorders memory traffic only, never
//!   the processing order.
//! * [`sparse_reference`] — the retained heap-based sparse loop, keyed
//!   `(slot, insertion_seq)`; the bit-for-bit equivalence oracle for
//!   [`sparse`].
//! * [`wake_flat`] — the retained flat calendar ring (the PR 2–6 production
//!   wake set), now a second oracle: [`sparse::run_sparse_flat`] runs the
//!   *same* generic sparse loop over it, so the wheel is pinned against a
//!   structurally different queue as well as a different loop.
//! * [`grouped`] — cohort engine for [`SymmetricProtocol`] baselines that
//!   listen every slot, `O(groups)` per slot.
//!
//! Every engine is additionally generic over a
//! [`FeedbackModel`](crate::feedback::FeedbackModel): the plain `run_*`
//! entry points fix the paper's ternary channel, and each has a
//! `run_*_model` sibling taking an explicit model. Models are
//! monomorphization parameters — dispatch happens once per run, never in
//! the slot loop.
//!
//! Most code should not call the `run_*` entry points directly but go
//! through the [scenario layer](crate::scenario), which composes arrivals,
//! jamming, limits, metrics, and the channel model into named, reusable
//! run descriptions.
//!
//! [`SparseProtocol`]: crate::protocol::SparseProtocol
//! [`SymmetricProtocol`]: grouped::SymmetricProtocol

pub mod core;
pub mod dense;
pub mod grouped;
pub mod sparse;
pub mod sparse_reference;
pub mod stage;
pub mod table;
pub mod wake;
pub mod wake_flat;

pub use self::core::EngineCore;
pub use dense::{run_dense, run_dense_model};
pub use grouped::{run_grouped, run_grouped_model, SymmetricProtocol};
pub use sparse::{run_sparse, run_sparse_flat, run_sparse_flat_model, run_sparse_model};
pub use sparse_reference::{run_sparse_reference, run_sparse_reference_model};
pub use stage::{staging_applies, StagePlan, STAGE_MIN_LANE_BYTES, STAGE_MIN_PARTICIPANTS};
pub use table::{Dense, PacketTable};
pub use wake::WakeQueue;
pub use wake_flat::FlatWakeQueue;
