//! The grouped engine for *symmetric* every-slot-listening protocols.
//!
//! Baselines like the Chang–Jin–Pettie multiplicative-weight algorithm
//! listen in **every** slot and apply the same feedback update to every
//! packet, so all packets injected in the same slot share identical state
//! forever (packets are exchangeable within such a cohort). This engine
//! represents each cohort as one group and samples the number of
//! simultaneous senders per group from an exact Binomial, making the
//! per-slot cost `O(groups)` instead of `O(packets)`.
//!
//! Per-packet send attribution draws uniformly random distinct members per
//! slot, which is distributionally exact by exchangeability. Listens are
//! reconstructed at departure: an every-slot-listener's channel accesses
//! equal its lifetime (a slot in which it sends counts once, as a send).

use crate::arrivals::ArrivalProcess;
use crate::config::SimConfig;
use crate::dist::Binomial;
use crate::engine::core::EngineCore;
use crate::feedback::{Feedback, FeedbackModel, SlotOutcome, Ternary};
use crate::jamming::Jammer;
use crate::metrics::RunResult;
use crate::packet::PacketId;
use crate::rng::SimRng;
use crate::time::Slot;

/// A protocol whose packets listen in every slot and update on the common
/// channel feedback only, independent of their own coin flips (except for
/// departing on success).
///
/// This is what makes same-slot cohorts share state; the grouped engine
/// relies on it. Protocols implementing this trait typically also implement
/// [`Protocol`](crate::protocol::Protocol) for cross-validation against the
/// dense engine.
pub trait SymmetricProtocol: Clone {
    /// Probability that each packet of the cohort transmits this slot.
    fn send_probability(&self) -> f64;

    /// Applies the slot's ternary feedback to the cohort state.
    fn on_feedback(&mut self, fb: Feedback);
}

struct Group<P> {
    state: P,
    members: Vec<PacketId>,
    injected: Slot,
}

/// Runs a grouped simulation of a [`SymmetricProtocol`].
///
/// `factory` is invoked once per arrival event; every packet of the event
/// shares the returned state (symmetry requires identical initial state).
pub fn run_grouped<P, F, A, J>(cfg: &SimConfig, arrivals: A, jammer: J, factory: F) -> RunResult
where
    P: SymmetricProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
{
    run_grouped_model(cfg, arrivals, jammer, Ternary, factory)
}

/// [`run_grouped`] under an explicit [`FeedbackModel`].
///
/// The cohort update applies the model's **listener** feedback — exact for
/// models where senders and listeners perceive the channel identically
/// (ternary, costly collisions). Under `NoCollisionDetection` the grouped
/// abstraction is lossy (a failed sender privately hears noise while its
/// cohort hears silence), so the feedback-grid campaign runs symmetric
/// baselines through the per-packet engines instead.
pub fn run_grouped_model<P, F, A, J, M>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    model: M,
    mut factory: F,
) -> RunResult
where
    P: SymmetricProtocol,
    F: FnMut(&mut SimRng) -> P,
    A: ArrivalProcess,
    J: Jammer,
    M: FeedbackModel,
{
    let mut core = EngineCore::with_model(cfg, arrivals, jammer, model);
    let mut groups: Vec<Group<P>> = Vec::new();
    let mut senders: Vec<PacketId> = Vec::new();
    let mut t: Slot = 0;

    loop {
        if !core.within_limits(t) {
            break;
        }
        let backlog: u64 = groups.iter().map(|g| g.members.len() as u64).sum();
        let contention: f64 = groups
            .iter()
            .map(|g| g.members.len() as f64 * g.state.send_probability())
            .sum();
        let next_arrival = core.peek_arrival(t, backlog, contention);
        if groups.is_empty() {
            match next_arrival {
                Some((ta, _)) if ta > t => {
                    t = ta;
                    continue;
                }
                Some(_) => {}
                None => break,
            }
        }

        // Inject arrival events targeting slot t (one group per event).
        while let Some((ta, count)) = core.peek_arrival(t, backlog, contention) {
            if ta != t {
                break;
            }
            core.consume_arrival();
            let state = factory(&mut core.rng);
            let members: Vec<PacketId> = (0..count).map(|_| core.note_inject(t)).collect();
            groups.push(Group {
                state,
                members,
                injected: t,
            });
        }

        // Members injected this very slot participate from slot t onward.
        let live: u64 = groups.iter().map(|g| g.members.len() as u64).sum();

        // Draw the number of senders per group; attribute to random members.
        senders.clear();
        let mut winner_group: Option<usize> = None;
        for (gi, g) in groups.iter_mut().enumerate() {
            let p = g.state.send_probability();
            let n = g.members.len() as u64;
            if n == 0 {
                continue;
            }
            let k = Binomial::new(n, p).sample(&mut core.rng) as usize;
            if k == 0 {
                continue;
            }
            // Partial Fisher–Yates: the first k members (after swaps) send.
            let len = g.members.len();
            for i in 0..k {
                let j = i + core.rng.range_usize(len - i);
                g.members.swap(i, j);
            }
            for &id in &g.members[..k] {
                senders.push(id);
                core.metrics.note_send(id);
            }
            if senders.len() == k {
                // All senders so far came from this group.
                winner_group = Some(gi);
            }
        }

        let jam = core.jam_decision(t, backlog, contention, &senders);
        let outcome = core.resolve(t, jam, &senders);

        // Bulk listen accounting: every live member listens; senders' access
        // is already counted as a send.
        core.metrics
            .note_bulk_accesses(0, live.saturating_sub(senders.len() as u64));

        if let SlotOutcome::Success { id } = outcome {
            let gi = winner_group.expect("success implies a sender group");
            let g = &mut groups[gi];
            let pos = g
                .members
                .iter()
                .position(|&m| m == id)
                .expect("winner in its group");
            g.members.swap_remove(pos);
            core.note_depart(id, t);
            // Lifetime slots minus sends = pure listens (reconstructed).
            core.metrics.reconcile_listens(id, t - g.injected + 1);
        }

        // Common feedback update for every cohort (the listener's view).
        let fb = model.listener_feedback(&outcome);
        for g in &mut groups {
            g.state.on_feedback(fb);
        }
        groups.retain(|g| !g.members.is_empty());

        let backlog_after: u64 = groups.iter().map(|g| g.members.len() as u64).sum();
        let contention_after: f64 = groups
            .iter()
            .map(|g| g.members.len() as f64 * g.state.send_probability())
            .sum();
        core.checkpoint(t, backlog_after, contention_after);
        t += 1;
        core.step_done();
    }

    // Packets still alive at stop: reconcile their listens up to last_slot.
    let last = core.metrics.totals.last_slot;
    let live: Vec<(PacketId, Slot)> = groups
        .iter()
        .flat_map(|g| g.members.iter().map(move |&id| (id, g.injected)))
        .collect();
    for (id, injected) in live {
        core.metrics
            .reconcile_listens(id, last.saturating_sub(injected) + 1);
    }

    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{Batch, Trace};
    use crate::config::Limits;
    use crate::jamming::{NoJam, PeriodicBurst};

    /// Fixed-probability symmetric protocol (slotted-ALOHA-like).
    #[derive(Clone)]
    struct FixedSym(f64);
    impl SymmetricProtocol for FixedSym {
        fn send_probability(&self) -> f64 {
            self.0
        }
        fn on_feedback(&mut self, _fb: Feedback) {}
    }

    /// MWU-style symmetric protocol: halve on noise, grow on silence.
    #[derive(Clone)]
    struct Mwu(f64);
    impl SymmetricProtocol for Mwu {
        fn send_probability(&self) -> f64 {
            self.0
        }
        fn on_feedback(&mut self, fb: Feedback) {
            match fb {
                Feedback::Empty => self.0 = (self.0 * 1.1).min(0.5),
                Feedback::Noisy => self.0 /= 1.1,
                Feedback::Success => {}
            }
        }
    }

    #[test]
    fn batch_drains_and_accounts() {
        let r = run_grouped(&SimConfig::new(1), Batch::new(50), NoJam, |_| {
            FixedSym(0.02)
        });
        assert_eq!(r.totals.successes, 50);
        assert!(r.drained());
        let t = &r.totals;
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active
        );
    }

    #[test]
    fn listens_equal_lifetime_minus_sends() {
        let r = run_grouped(&SimConfig::new(2), Batch::new(10), NoJam, |_| {
            FixedSym(0.05)
        });
        let ps = r.per_packet.as_ref().unwrap();
        for p in ps {
            let lifetime = p.departed.unwrap() - p.injected + 1;
            assert_eq!(p.listens as u64 + p.sends as u64, lifetime);
        }
    }

    #[test]
    fn totals_listens_match_member_slot_sum() {
        let r = run_grouped(&SimConfig::new(3), Batch::new(10), NoJam, |_| {
            FixedSym(0.05)
        });
        // Aggregate accesses == Σ per-packet accesses (all delivered).
        let per: u64 = r.access_counts().iter().sum();
        assert_eq!(per, r.totals.accesses());
    }

    #[test]
    fn mwu_adapts_and_drains() {
        let r = run_grouped(&SimConfig::new(4), Batch::new(200), NoJam, |_| Mwu(0.5));
        assert_eq!(r.totals.successes, 200);
        // MWU should do clearly better than 1 success per 50 slots.
        assert!(
            r.totals.active_slots < 200 * 50,
            "slots {}",
            r.totals.active_slots
        );
    }

    #[test]
    fn multiple_cohorts_tracked_separately() {
        let r = run_grouped(
            &SimConfig::new(5),
            Trace::new(vec![(0, 20), (10, 20)]),
            NoJam,
            |_| Mwu(0.2),
        );
        assert_eq!(r.totals.successes, 40);
        let ps = r.per_packet.as_ref().unwrap();
        assert!(ps.iter().any(|p| p.injected == 0));
        assert!(ps.iter().any(|p| p.injected == 10));
    }

    #[test]
    fn jamming_blocks_success() {
        let cfg = SimConfig::new(6).limits(Limits::until_slot(99));
        let r = run_grouped(
            &cfg,
            Batch::new(5),
            PeriodicBurst::new(1, 1, 0), // jam every slot
            |_| FixedSym(0.2),
        );
        assert_eq!(r.totals.successes, 0);
        assert_eq!(r.totals.jammed_active, 100);
    }

    #[test]
    fn live_packets_get_listen_reconciliation_at_stop() {
        let cfg = SimConfig::new(7).limits(Limits::until_slot(49));
        let r = run_grouped(&cfg, Batch::new(3), NoJam, |_| FixedSym(0.0));
        let ps = r.per_packet.as_ref().unwrap();
        for p in ps {
            assert_eq!(p.departed, None);
            assert_eq!(p.listens, 50); // alive for slots 0..=49
        }
    }

    #[test]
    fn deterministic() {
        let run = || run_grouped(&SimConfig::new(8), Batch::new(64), NoJam, |_| Mwu(0.3));
        assert_eq!(run().totals, run().totals);
    }
}
