//! The wake set of the event-driven sparse engine: a hierarchical timing
//! wheel.
//!
//! A [`WakeQueue`] holds, for every live packet, the one slot in which it
//! will next access the channel. The classic structure for this is a binary
//! heap — but a heap pays `O(log n)` scattered memory touches *per access*,
//! and at paper scale those heap ops dominate the whole simulation. PRs 2–4
//! replaced the heap with a flat 4096-bucket calendar ring (retained as the
//! [`FlatWakeQueue`](crate::engine::wake_flat) oracle); that ring in turn
//! degrades at million-station scale, where the long sleep gaps of the
//! quantized LowSensing ladder overflow its window and churn the far heap.
//! This module is the next rung: a **multi-level timing wheel** in the
//! kernel-timer cascade style.
//!
//! # Levels as aligned blocks
//!
//! The wheel has four ring levels plus a far heap. Level `k` covers a
//! *suffix of the current `2^SHIFT[k+1]`-aligned block* of the slot axis,
//! at granularity `2^SHIFT[k]`:
//!
//! ```text
//! level  granularity  buckets  covers (given current base b)
//! L0     1 slot       4096     [b,  E0)   E0 = end of b's 2^12 block
//! L1     2^12 slots    256     [E0, E1)   E1 = end of b's 2^20 block
//! L2     2^20 slots    256     [E1, E2)   E2 = end of b's 2^28 block
//! L3     2^28 slots    256     [E2, E3)   E3 = end of b's 2^36 block
//! far    exact heap      —     [E3, ∞)    keyed (slot, seq, id)
//! ```
//!
//! An event is pushed into the unique level whose range contains its slot:
//! an O(1) append, no search. L0 reuses the flat ring's cache-line bucket
//! (inline-6 cell + occupancy bitmap), so the hot path at the 16384-station
//! tier — where almost every delay lands in the current 4096-slot block —
//! is the same machine code as before. Coarse buckets store `(slot, id)`
//! pairs with a cached per-bucket minimum slot.
//!
//! When [`advance_to`](WakeQueue::advance_to) crosses a block boundary, the
//! one coarse bucket that has just become *current* is drained and its
//! events **cascade** down, each re-placed by the same rule under the new
//! block ends. Crossing a `2^SHIFT[k+1]` boundary drains exactly one level-
//! `k+1` bucket (crossing the `2^36` block end instead migrates the now-
//! covered prefix of the far heap): finer levels are provably empty at that
//! moment, because the engine only ever advances to (at most) the next
//! pending slot, and every event in a finer level or an earlier coarse
//! bucket would have a slot *before* the boundary being crossed. That makes
//! the cascade `O(events moved)` with no scan of untouched buckets or of
//! the far heap — the flat ring, by contrast, re-peeked its far heap on
//! every advance. A `moved` counter (see
//! [`cascade_moves`](WakeQueue::cascade_moves)) counts exactly the events
//! re-placed, and each event cascades at most once per level: at most 4
//! touches ever, amortized O(1) per schedule.
//!
//! # Insertion-order drain through cascades
//!
//! Within one slot the engine processes packets in **insertion order**: the
//! order in which their events were [`schedule`](WakeQueue::schedule)d,
//! across the whole run (the `(slot, seq)` order of the
//! [`run_sparse_reference`](crate::engine::sparse_reference) oracle, where
//! `seq` is the global schedule-call index). The wheel preserves it
//! *structurally*, storing no `seq` in any ring level:
//!
//! * **Within a bucket**, events for the same slot appear in ascending seq:
//!   direct pushes arrive in call order; a cascade re-places a drained
//!   bucket in stored order, preserving same-slot relative order at the
//!   destination; far migration pops `(slot, seq)`-keyed entries, so one
//!   slot's migrants arrive consecutively in ascending seq.
//! * **Across sources**, same-slot events cannot interleave out of order,
//!   because the block ends `E0..E3` are monotone (they only move when
//!   `advance_to` crosses a boundary, and only forward). For a fixed slot
//!   `s`, every event scheduled while `s` lay beyond some end `Ek` has a
//!   smaller seq than every event scheduled after `Ek` moved past `s` —
//!   and the cascade (or far migration) that carries the early events into
//!   the finer level fires at the *exact* `advance_to` that first makes
//!   direct pushes to that finer level possible for `s`. Migrants land
//!   before any subsequent direct push can, at every level. (This is the
//!   same monotone-horizon argument the flat ring made for its single
//!   far/ring boundary, applied per level; naive delta-based level
//!   selection, where an event's level depends on `slot - now` at schedule
//!   time, would *break* it — a later push could take a shortcut into a
//!   fine level while an earlier same-slot event still waited upstairs.)
//!
//! [`take`](WakeQueue::take) therefore still hands back the L0 bucket
//! as-is: no per-slot sort, no seq comparisons, and
//! `run_sparse_reference` plus the sparse-equivalence suite keep pinning
//! the engine bit-identical on top of it. See docs/ARCHITECTURE.md ("The
//! hierarchical wake wheel").

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::table::{prefetch_read, prefetch_write_ptr};
use crate::time::Slot;

/// log2 of each level's granularity in slots: L0 is slot-granular, L1
/// buckets span `2^12` slots, L2 `2^20`, L3 `2^28`. The far heap takes over
/// past the current `2^36` block.
const SHIFT: [u32; 4] = [0, 12, 20, 28];

/// log2 of the span covered by all ring levels together (one L3 block).
const TOP_BITS: u32 = 36;

/// Number of slot-granular L0 buckets: one whole `2^12` block, so bucket
/// `slot & L0_MASK` is direct-mapped with no wraparound within a block.
const L0_SLOTS: usize = 1 << SHIFT[1];
const L0_MASK: usize = L0_SLOTS - 1;
const WORDS: usize = L0_SLOTS / 64;

/// Buckets per coarse level (L1–L3): each splits its parent block into 256
/// child blocks, `index = (slot >> SHIFT[level]) & COARSE_MASK`.
const COARSE_SLOTS: usize = 256;
const COARSE_MASK: usize = COARSE_SLOTS - 1;
const COARSE_WORDS: usize = COARSE_SLOTS / 64;

/// Retained capacity (in events) of a drained L0 bucket's spill vector. A
/// pathological collision burst can balloon one bucket to tens of
/// thousands of entries; without a cap that memory is pinned for the rest
/// of the run in all 4096 buckets. Oversized spills are shrunk back to
/// this bound after draining.
const BUCKET_CAP: usize = 64;

/// Retained capacity (in events) of a drained coarse bucket. Coarse
/// buckets legitimately hold thousands of events (a whole child block's
/// worth at million-station scale), so the cap is generous; it only
/// reclaims true outliers.
const COARSE_CAP: usize = 1024;

/// Events stored inline in an L0 bucket before spilling to its vector.
/// Sized so one bucket is exactly one cache line: the common push touches a
/// single line instead of a `Vec` header plus a separately allocated data
/// line. Steady-state occupancy (live packets spread over the block) is a
/// handful of events per bucket, so the spill path is rare.
const INLINE: usize = 6;

/// End of the `2^bits`-aligned block containing `t`, saturating at
/// `u64::MAX`. The saturation mirrors the NEVER-sentinel convention of
/// [`crate::time`]: a slot at `u64::MAX` is never strictly below a
/// saturated end, so it parks in the far heap — exactly where the flat
/// ring's saturating horizon left it.
#[inline]
fn block_end(t: Slot, bits: u32) -> Slot {
    let block = (t >> bits) + 1;
    if block > (u64::MAX >> bits) {
        u64::MAX
    } else {
        block << bits
    }
}

/// One L0 bucket: a cache-line cell holding its slot's pending ids in
/// insertion order — the first [`INLINE`] inline, the rest in `spill`.
#[derive(Debug)]
#[repr(align(64))]
struct Bucket {
    /// Ids pushed while `len < INLINE`; `inline[..len]` is valid.
    inline: [u32; INLINE],
    /// Inline occupancy (spilling starts only once this hits `INLINE`).
    len: u32,
    /// Overflow beyond the inline cell, still in push order.
    spill: Vec<u32>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            inline: [0; INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Total pending events in this bucket.
    #[inline]
    fn count(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Appends `id`, preserving push order across the inline/spill split.
    #[inline]
    fn push(&mut self, id: u32) {
        let n = self.len as usize;
        if n < INLINE {
            self.inline[n] = id;
            self.len += 1;
        } else {
            self.spill.push(id);
        }
    }
}

/// A pending event parked in a coarse level: its exact slot rides along so
/// the cascade can re-place it without consulting anything else.
#[derive(Debug, Clone, Copy)]
struct Event {
    slot: Slot,
    id: u32,
}

/// One coarse bucket: the events of one child block, in arrival order
/// (which preserves same-slot seq order — see the module docs), plus the
/// cached minimum slot so `next_slot` never scans event lists.
#[derive(Debug)]
struct CoarseBucket {
    /// Minimum slot among `events`; meaningless when `events` is empty.
    min_slot: Slot,
    /// The block's pending events in arrival order.
    events: Vec<Event>,
}

impl CoarseBucket {
    fn new() -> Self {
        CoarseBucket {
            min_slot: 0,
            events: Vec::new(),
        }
    }
}

/// One coarse ring (L1–L3): 256 buckets plus an occupancy bitmap. Bucket
/// indices are monotone in slot over the level's covered range (all of it
/// lies inside one parent block), so "first set bit" is "earliest block".
#[derive(Debug)]
struct CoarseLevel {
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; COARSE_WORDS],
    buckets: Box<[CoarseBucket; COARSE_SLOTS]>,
}

impl CoarseLevel {
    fn new() -> Self {
        let buckets: Box<[CoarseBucket; COARSE_SLOTS]> = (0..COARSE_SLOTS)
            .map(|_| CoarseBucket::new())
            .collect::<Vec<_>>()
            .try_into()
            .expect("COARSE_SLOTS buckets");
        CoarseLevel {
            occupied: [0; COARSE_WORDS],
            buckets,
        }
    }

    /// Index of the first non-empty bucket, if any.
    #[inline]
    fn first_occupied(&self) -> Option<usize> {
        for (w, &bits) in self.occupied.iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Retained capacity (in events) of the engine-side per-slot scratch
/// vectors (participants / senders / listeners). Sized to hold the largest
/// cohorts ordinary workloads produce so the shrink never fires on the hot
/// path; see [`cap_scratch`].
pub(crate) const SCRATCH_CAP: usize = 4096;

/// Releases the excess capacity of a per-slot scratch vector after a
/// pathological burst.
///
/// Shrinks only when capacity exceeds *twice* `cap` — the hysteresis keeps
/// a workload that legitimately hovers around `cap` from reallocating every
/// slot — and shrinks back to `cap`, not zero, so the steady state keeps
/// its warm allocation.
#[inline]
pub(crate) fn cap_scratch<T>(v: &mut Vec<T>, cap: usize) {
    if v.capacity() > 2 * cap {
        v.shrink_to(cap);
    }
}

/// The wake-set interface the generic sparse loop is written against, so
/// the same engine body runs over the production wheel ([`WakeQueue`]) and
/// the retained flat ring
/// ([`FlatWakeQueue`](crate::engine::wake_flat::FlatWakeQueue)) oracle.
/// Implementations must drain each slot in global insertion (schedule-call)
/// order; see the module docs.
pub(crate) trait WakeSet {
    /// An empty wake set with its clock at slot 0.
    fn new() -> Self;
    /// Schedules packet `id` to wake in `slot` (≥ the current base).
    fn schedule(&mut self, slot: Slot, id: u32);
    /// Best-effort hint that a `schedule(slot, _)` is coming a few calls
    /// out; purely advisory (default: no-op), never affects results.
    fn prefetch_schedule(&self, _slot: Slot) {}
    /// The earliest slot with a pending event, if any.
    fn next_slot(&self) -> Option<Slot>;
    /// Moves the clock forward to `t` (≤ the earliest pending slot).
    fn advance_to(&mut self, t: Slot);
    /// Drains slot `t`'s events into `out` in insertion order.
    fn take(&mut self, t: Slot, out: &mut Vec<u32>);
    /// Approximate heap footprint in bytes, for out-of-band telemetry
    /// sampling. Purely observational; implementations without a cheap
    /// answer keep the default 0.
    fn footprint_bytes(&self) -> usize {
        0
    }
}

/// Hierarchical timing wheel of pending wake events, keyed by absolute
/// slot.
///
/// Slots must be consumed in nondecreasing order via
/// [`WakeQueue::advance_to`] + [`WakeQueue::take`]; events may only be
/// scheduled at or after the current base slot, and the base may only
/// advance to (at most) the earliest pending slot — the engine's natural
/// stepping discipline, which the cascade's single-bucket-drain invariant
/// relies on. Within one slot, events come back in insertion order (the
/// order of the `schedule` calls).
#[derive(Debug)]
pub struct WakeQueue {
    /// Current clock: the start of L0's covered range `[base, ends[0])`.
    base: Slot,
    /// Cached block ends `E0..E3` for the current base (see module docs):
    /// `ends[k]` = end of base's `2^SHIFT[k+1]`-block (`2^36` for `k = 3`),
    /// saturating. Level `k` covers `[ends[k-1], ends[k])`.
    ends: [Slot; 4],
    /// Pending events per ring level (`counts[0]` is L0). The level
    /// ordering invariant (every L0 slot < every L1 slot < … < far) makes
    /// `next_slot` a first-non-empty-level scan.
    counts: [usize; 4],
    /// Position of the next `schedule` call in the run's global schedule
    /// stream. Only far-heap entries store it (ring levels preserve seq
    /// order structurally — see the module docs).
    seq: u64,
    /// Debug counter: total events re-placed by cascades and far
    /// migrations since construction. Pinned by tests to prove the wheel
    /// moves `O(events)` per boundary crossing, never rescanning.
    moved: u64,
    /// One bit per L0 bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// `buckets[slot & L0_MASK]` holds the ids waking in `slot`, in
    /// insertion order, inline-first (see [`Bucket`]). A boxed fixed-size
    /// array (not a `Vec`) so masked indexing is provably in bounds and the
    /// per-event push carries no bounds check.
    buckets: Box<[Bucket; L0_SLOTS]>,
    /// The coarse rings L1–L3 (`coarse[k]` has granularity
    /// `2^SHIFT[k + 1]`).
    coarse: [CoarseLevel; 3],
    /// Events beyond the current `2^36` block, keyed `(slot, seq, id)` and
    /// migrated inward (in that order) when the block boundary is crossed.
    far: BinaryHeap<Reverse<(Slot, u64, u32)>>,
}

impl Default for WakeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WakeQueue {
    /// An empty queue with its clock at slot 0.
    pub fn new() -> Self {
        let buckets: Box<[Bucket; L0_SLOTS]> = (0..L0_SLOTS)
            .map(|_| Bucket::new())
            .collect::<Vec<_>>()
            .try_into()
            .expect("L0_SLOTS buckets");
        WakeQueue {
            base: 0,
            ends: [1 << SHIFT[1], 1 << SHIFT[2], 1 << SHIFT[3], 1 << TOP_BITS],
            counts: [0; 4],
            seq: 0,
            moved: 0,
            occupied: [0; WORDS],
            buckets,
            coarse: [CoarseLevel::new(), CoarseLevel::new(), CoarseLevel::new()],
            far: BinaryHeap::new(),
        }
    }

    /// Whether no event is pending anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts == [0; 4] && self.far.is_empty()
    }

    /// Total events re-placed by cascades and far migrations so far.
    ///
    /// A debug/observability counter: each boundary crossing must move
    /// exactly the events of the one bucket (or far-heap prefix) that
    /// became current — tests pin this to prove the cascade is `O(events
    /// moved)`, with no hidden rescans of untouched buckets or the far
    /// heap.
    #[inline]
    pub fn cascade_moves(&self) -> u64 {
        self.moved
    }

    /// Approximate heap footprint of the queue in bytes: the fixed rings
    /// plus every live spill/event/heap allocation at its current
    /// capacity. Feeds the bytes-per-station budget in the capacity bench;
    /// the fixed part (~290 KiB) amortizes to well under a byte per
    /// station at the 1M tier.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>() + L0_SLOTS * size_of::<Bucket>();
        for b in self.buckets.iter() {
            bytes += b.spill.capacity() * size_of::<u32>();
        }
        for level in &self.coarse {
            bytes += COARSE_SLOTS * size_of::<CoarseBucket>();
            for b in level.buckets.iter() {
                bytes += b.events.capacity() * size_of::<Event>();
            }
        }
        bytes + self.far.capacity() * size_of::<Reverse<(Slot, u64, u32)>>()
    }

    /// Schedules packet `id` to wake in `slot` (which must be ≥ the current
    /// base).
    #[inline]
    pub fn schedule(&mut self, slot: Slot, id: u32) {
        debug_assert!(slot >= self.base, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        if slot < self.ends[3] {
            self.place(slot, id);
        } else {
            self.far.push(Reverse((slot, seq, id)));
        }
    }

    /// Hints the memory a `schedule(slot, _)` a few calls from now will
    /// touch. A dense slot's schedule pass lands all over the rings —
    /// every push a cold bucket — so running this a short distance ahead
    /// of the pushes keeps several bucket misses in flight at once.
    ///
    /// For a coarse bucket the push appends to the events vector, whose
    /// tail line is only reachable *through* the header — a dependent
    /// chain no single hint covers — so this reads the header (plain
    /// loads, off every critical path) and hints the tail line the push
    /// will write.
    #[inline]
    pub fn prefetch_schedule(&self, slot: Slot) {
        if slot < self.ends[0] {
            // L0 pushes normally land in the bucket's inline cell — one
            // cache line, one hint.
            prefetch_read(&self.buckets[(slot as usize) & L0_MASK]);
        } else if slot < self.ends[3] {
            let lvl = if slot < self.ends[1] {
                0
            } else if slot < self.ends[2] {
                1
            } else {
                2
            };
            let idx = ((slot >> SHIFT[lvl + 1]) as usize) & COARSE_MASK;
            let events = &self.coarse[lvl].buckets[idx].events;
            prefetch_write_ptr(events.as_ptr().wrapping_add(events.len()) as *const u8);
        }
        // Far-heap pushes only touch the heap's tail, which stays hot.
    }

    /// Pushes an event into the unique ring level covering `slot` under
    /// the current block ends. Caller guarantees `slot < ends[3]`.
    #[inline]
    fn place(&mut self, slot: Slot, id: u32) {
        if slot < self.ends[0] {
            let idx = (slot as usize) & L0_MASK;
            self.buckets[idx].push(id);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.counts[0] += 1;
        } else {
            self.place_coarse(slot, id);
        }
    }

    /// The coarse-level arm of [`place`](Self::place), out of line so the
    /// dominant L0 push stays branch-light.
    fn place_coarse(&mut self, slot: Slot, id: u32) {
        let lvl = if slot < self.ends[1] {
            0
        } else if slot < self.ends[2] {
            1
        } else {
            2
        };
        let idx = ((slot >> SHIFT[lvl + 1]) as usize) & COARSE_MASK;
        let level = &mut self.coarse[lvl];
        let bucket = &mut level.buckets[idx];
        if bucket.events.is_empty() || slot < bucket.min_slot {
            bucket.min_slot = slot;
        }
        bucket.events.push(Event { slot, id });
        level.occupied[idx / 64] |= 1u64 << (idx % 64);
        self.counts[lvl + 1] += 1;
    }

    /// Debug-only invariant check used by the model proptest: the spill
    /// vector of an L0 bucket may be non-empty only when the inline cell is
    /// full.
    #[cfg(test)]
    pub(crate) fn bucket_shape(&self, slot: Slot) -> (usize, usize) {
        let b = &self.buckets[(slot as usize) & L0_MASK];
        (b.len as usize, b.spill.len())
    }

    /// Debug-only: retained spill capacity of coarse level `lvl`, bucket
    /// `idx`.
    #[cfg(test)]
    pub(crate) fn coarse_capacity(&self, lvl: usize, idx: usize) -> usize {
        self.coarse[lvl].buckets[idx].events.capacity()
    }

    /// The earliest slot with a pending event, if any.
    pub fn next_slot(&self) -> Option<Slot> {
        // Level ordering invariant: every L0 slot < ends[0] ≤ every L1
        // slot < ends[1] ≤ … < ends[3] ≤ every far slot, so the first
        // non-empty level holds the minimum.
        if self.counts[0] > 0 {
            return Some(self.next_l0_slot());
        }
        for lvl in 0..3 {
            if self.counts[lvl + 1] > 0 {
                let idx = self.coarse[lvl]
                    .first_occupied()
                    .expect("count > 0 but no occupied coarse bucket");
                return Some(self.coarse[lvl].buckets[idx].min_slot);
            }
        }
        self.far.peek().map(|Reverse((s, _, _))| *s)
    }

    /// Scans the L0 occupancy bitmap upward from `base` for the earliest
    /// non-empty bucket. Caller guarantees `counts[0] > 0`. No wraparound:
    /// L0 covers exactly base's `2^12` block, so every occupied index is at
    /// or above `base & L0_MASK`.
    fn next_l0_slot(&self) -> Slot {
        let start = (self.base as usize) & L0_MASK;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return self.slot_at(w0 * 64 + first.trailing_zeros() as usize);
        }
        for w in w0 + 1..WORDS {
            let m = self.occupied[w];
            if m != 0 {
                return self.slot_at(w * 64 + m.trailing_zeros() as usize);
            }
        }
        unreachable!("counts[0] > 0 but no occupied L0 bucket at or after base");
    }

    /// Absolute slot of the L0 bucket at bitmap index `idx` within the
    /// current block.
    #[inline]
    fn slot_at(&self, idx: usize) -> Slot {
        (self.base & !(L0_MASK as u64)) + idx as u64
    }

    /// Moves the clock forward to `t`, cascading coarse events whose block
    /// has become current.
    ///
    /// `t` must be at most the earliest pending slot (the engine only ever
    /// advances to the next event or arrival). That discipline is what
    /// makes one bucket per crossing sufficient: when `t` crosses a
    /// `2^SHIFT[k+1]` boundary, every ring level finer than `k+1` — and
    /// every level-`k+1` bucket earlier than `t`'s — could hold only slots
    /// strictly below `t`, so they are empty, and only the bucket
    /// containing `t` needs to cascade. The whole call is `O(events
    /// moved)`.
    pub fn advance_to(&mut self, t: Slot) {
        debug_assert!(t >= self.base, "time moved backwards");
        if t < self.ends[0] {
            // Same L0 block: the common case, no boundary crossed.
            self.base = t;
            return;
        }
        let old = self.base;
        self.base = t;
        self.ends = [
            block_end(t, SHIFT[1]),
            block_end(t, SHIFT[2]),
            block_end(t, SHIFT[3]),
            block_end(t, TOP_BITS),
        ];
        if (t >> TOP_BITS) != (old >> TOP_BITS) {
            // Crossed the whole ring span: every ring level is empty (any
            // ring event's slot was below the old block end ≤ t). Migrate
            // the far prefix that the new block now covers; pops come out
            // `(slot, seq)`-ordered, so same-slot migrants land in seq
            // order, before any later direct push can reach those slots.
            debug_assert!(self.counts == [0; 4], "ring events at a top crossing");
            while let Some(&Reverse((s, _, _))) = self.far.peek() {
                if s >= self.ends[3] {
                    break;
                }
                let Reverse((s, _, id)) = self.far.pop().expect("peeked entry");
                self.moved += 1;
                self.place(s, id);
            }
        } else if (t >> SHIFT[3]) != (old >> SHIFT[3]) {
            self.cascade(2, ((t >> SHIFT[3]) as usize) & COARSE_MASK);
        } else if (t >> SHIFT[2]) != (old >> SHIFT[2]) {
            self.cascade(1, ((t >> SHIFT[2]) as usize) & COARSE_MASK);
        } else {
            // t ≥ old ends[0], so the 2^12 boundary was crossed.
            self.cascade(0, ((t >> SHIFT[1]) as usize) & COARSE_MASK);
        }
    }

    /// Drains coarse bucket `idx` of level `lvl` and re-places its events
    /// under the (already updated) block ends. Finer levels are empty when
    /// this runs (see [`advance_to`](Self::advance_to)), so re-placed
    /// events land in fresh buckets and per-slot order is the bucket's
    /// stored order.
    fn cascade(&mut self, lvl: usize, idx: usize) {
        let (w, b) = (idx / 64, idx % 64);
        if self.coarse[lvl].occupied[w] & (1u64 << b) == 0 {
            return;
        }
        debug_assert!(
            self.counts[..=lvl].iter().all(|&c| c == 0),
            "finer levels non-empty at a level-{} crossing",
            lvl + 1
        );
        self.coarse[lvl].occupied[w] &= !(1u64 << b);
        let mut events = std::mem::take(&mut self.coarse[lvl].buckets[idx].events);
        self.counts[lvl + 1] -= events.len();
        self.moved += events.len() as u64;
        for e in &events {
            // The drained bucket is `t`'s own block, so every event lands
            // strictly finer — never back in the bucket being drained.
            self.place(e.slot, e.id);
        }
        events.clear();
        cap_scratch(&mut events, COARSE_CAP);
        self.coarse[lvl].buckets[idx].events = events;
    }

    /// Drains every event scheduled for slot `t` (which must lie inside the
    /// current L0 block — the engine always `advance_to(t)`s first),
    /// appending the ids to `out` in insertion order (the order of the
    /// `schedule` calls). Entries already in `out` are left untouched.
    pub fn take(&mut self, t: Slot, out: &mut Vec<u32>) {
        debug_assert!(
            t >= self.base && t < self.ends[0],
            "take outside the current L0 block"
        );
        let idx = (t as usize) & L0_MASK;
        let bucket = &mut self.buckets[idx];
        let n = bucket.count();
        if n == 0 {
            return;
        }
        self.counts[0] -= n;
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        // Inline entries were pushed strictly before any spill entry, so
        // inline-then-spill is push order.
        out.extend_from_slice(&bucket.inline[..bucket.len as usize]);
        bucket.len = 0;
        out.append(&mut bucket.spill);
        cap_scratch(&mut bucket.spill, BUCKET_CAP);
    }
}

impl WakeSet for WakeQueue {
    fn new() -> Self {
        WakeQueue::new()
    }
    #[inline]
    fn schedule(&mut self, slot: Slot, id: u32) {
        WakeQueue::schedule(self, slot, id)
    }
    #[inline]
    fn prefetch_schedule(&self, slot: Slot) {
        WakeQueue::prefetch_schedule(self, slot)
    }
    #[inline]
    fn next_slot(&self) -> Option<Slot> {
        WakeQueue::next_slot(self)
    }
    #[inline]
    fn advance_to(&mut self, t: Slot) {
        WakeQueue::advance_to(self, t)
    }
    #[inline]
    fn take(&mut self, t: Slot, out: &mut Vec<u32>) {
        WakeQueue::take(self, t, out)
    }
    fn footprint_bytes(&self) -> usize {
        WakeQueue::footprint_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue fully, returning (slot, insertion-ordered ids) per
    /// event slot.
    fn drain(q: &mut WakeQueue) -> Vec<(Slot, Vec<u32>)> {
        let mut events = Vec::new();
        let mut out = Vec::new();
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            out.clear();
            q.take(s, &mut out);
            assert!(!out.is_empty(), "next_slot pointed at an empty slot");
            events.push((s, out.clone()));
        }
        events
    }

    #[test]
    fn empty_queue_has_no_next() {
        let q = WakeQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_slot(), None);
        assert_eq!(q.cascade_moves(), 0);
    }

    #[test]
    fn orders_by_slot_then_insertion() {
        let mut q = WakeQueue::new();
        q.schedule(5, 2);
        q.schedule(3, 7);
        q.schedule(5, 1);
        q.schedule(3, 0);
        let events = drain(&mut q);
        // Within a slot, ids come back in schedule-call order, not sorted.
        assert_eq!(events, vec![(3, vec![7, 0]), (5, vec![2, 1])]);
        assert!(q.is_empty());
    }

    #[test]
    fn coarse_events_cascade_in_insertion_order() {
        let mut q = WakeQueue::new();
        q.schedule(2, 1);
        q.schedule(1_000_000, 3); // parks in L1 at base 0
        q.schedule(1_000_000, 2);
        q.schedule(50_000, 9);
        let events = drain(&mut q);
        // Slot 1_000_000 drains [3, 2]: the cascade re-places the coarse
        // bucket in stored (schedule-call) order, not id order.
        assert_eq!(
            events,
            vec![(2, vec![1]), (50_000, vec![9]), (1_000_000, vec![3, 2])]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn coarse_migrants_precede_direct_pushes_in_their_slot() {
        // An event scheduled while its slot lay beyond the current L0
        // block must drain before one scheduled directly once the block
        // advanced — that is the (slot, seq) order, since the coarse
        // schedule happened first.
        let target = (1u64 << 12) + 50;
        let mut q = WakeQueue::new();
        q.schedule(target, 9); // L1 (beyond L0's block at base 0)
        q.schedule(200, 1);
        let mut out = Vec::new();
        q.advance_to(200);
        q.take(200, &mut out);
        assert_eq!(out, vec![1]);
        // Cross the L0 block boundary: the cascade lands 9 in L0 first,
        // then a direct push appends after it despite the smaller id.
        q.advance_to(1u64 << 12);
        q.schedule(target, 4);
        q.advance_to(target);
        out.clear();
        q.take(target, &mut out);
        assert_eq!(out, vec![9, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn schedules_exactly_at_each_level_boundary() {
        // One event at the last L0 slot and one exactly at each block end:
        // each must park one level up (ends are exclusive) and still drain
        // in global slot order, cascading down as the clock crosses.
        let mut q = WakeQueue::new();
        q.schedule((1u64 << 12) - 1, 0); // last slot of L0's block
        q.schedule(1u64 << 12, 1); // == ends[0]: first L1 slot
        q.schedule(1u64 << 20, 2); // == ends[1]: first L2 slot
        q.schedule(1u64 << 28, 3); // == ends[2]: first L3 slot
        q.schedule(1u64 << 36, 4); // == ends[3]: far heap
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![
                ((1u64 << 12) - 1, vec![0]),
                (1u64 << 12, vec![1]),
                (1u64 << 20, vec![2]),
                (1u64 << 28, vec![3]),
                (1u64 << 36, vec![4]),
            ]
        );
        // Each event cascaded/migrated exactly once: straight into L0 (its
        // wake slot is the first slot of every nested new block).
        assert_eq!(q.cascade_moves(), 4);
        assert!(q.is_empty());
    }

    #[test]
    fn one_jump_across_a_whole_coarse_level() {
        // A far-horizon jam gap: after draining slot 7 the next event sits
        // past the entire L1 range, and the engine advances there in ONE
        // advance_to call. The crossing must drain exactly the one L2
        // bucket that became current — counted via the moves counter.
        let mut q = WakeQueue::new();
        q.schedule(7, 1);
        let l2_slot = (3u64 << 20) + 5;
        q.schedule(l2_slot, 2);
        let mut out = Vec::new();
        q.advance_to(7);
        q.take(7, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(q.next_slot(), Some(l2_slot));
        q.advance_to(l2_slot); // crosses a 2^20 boundary in one jump
        out.clear();
        q.take(l2_slot, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(q.cascade_moves(), 1, "one event, one move, no rescans");

        // Same shape one level up: an L3 event reached in a single jump
        // across the whole L2 range.
        let l3_slot = (2u64 << 28) + 9;
        q.schedule(l3_slot, 3);
        q.advance_to(l3_slot);
        out.clear();
        q.take(l3_slot, &mut out);
        assert_eq!(out, vec![3]);
        assert_eq!(q.cascade_moves(), 2);

        // And across the whole ring span: a far-heap event in one jump.
        let far_slot = (1u64 << 36) + 3;
        q.schedule(far_slot, 4);
        q.advance_to(far_slot);
        out.clear();
        q.take(far_slot, &mut out);
        assert_eq!(out, vec![4]);
        assert_eq!(q.cascade_moves(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn cascade_moves_each_event_at_most_once_per_level() {
        let mut q = WakeQueue::new();
        // Five events in one L1 block well ahead of the clock.
        let block = 3u64 << 12;
        for id in 0..5u32 {
            q.schedule(block + id as u64, id);
        }
        assert_eq!(q.cascade_moves(), 0);
        // Advancing within the current L0 block cascades nothing.
        q.advance_to(100);
        assert_eq!(q.cascade_moves(), 0);
        // Crossing into the block cascades exactly the five events, once.
        q.advance_to(block);
        assert_eq!(q.cascade_moves(), 5);
        // Further advances inside the block move nothing more.
        let mut out = Vec::new();
        for id in 0..5u32 {
            q.advance_to(block + id as u64);
            out.clear();
            q.take(block + id as u64, &mut out);
            assert_eq!(out, vec![id]);
        }
        assert_eq!(q.cascade_moves(), 5);
        assert!(q.is_empty());

        // An event two levels up pays one move per level it descends:
        // L2 → L1 when its 2^20 block becomes current, L1 → L0 when its
        // 2^12 block does.
        let slot = (1u64 << 20) + (5u64 << 12) + 7;
        q.schedule(slot, 42);
        q.advance_to(1u64 << 20); // 2^20 crossing: L2 → L1
        assert_eq!(q.cascade_moves(), 6);
        q.advance_to(slot); // 2^12 crossing: L1 → L0
        assert_eq!(q.cascade_moves(), 7);
        out.clear();
        q.take(slot, &mut out);
        assert_eq!(out, vec![42]);
        assert!(q.is_empty());
    }

    #[test]
    fn matches_seq_keyed_reference_heap_on_random_workload() {
        // The reference oracle keys its heap (slot, seq): pop order within
        // a slot is schedule-call order. The wheel must drain in exactly
        // that order on a workload mixing delays across every level.
        use crate::rng::SimRng;
        let mut rng = SimRng::new(42);
        let mut q = WakeQueue::new();
        let mut heap: BinaryHeap<Reverse<(Slot, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for id in 0..512u32 {
            let s = rng.range_u64(64);
            q.schedule(s, id);
            heap.push(Reverse((s, seq, id)));
            seq += 1;
        }
        let mut processed = 0u32;
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            let mut got = Vec::new();
            q.take(s, &mut got);
            for &id in &got {
                let Reverse((hs, _, hid)) = heap.pop().expect("heap in sync");
                assert_eq!((hs, hid), (s, id));
                processed += 1;
                // Reschedule a while: delay magnitudes sweep L0 through
                // the far heap (id-dependent so slots collide often).
                if processed < 4_000 {
                    let magnitude = [12, 13, 21, 29, 37][(id % 5) as usize];
                    let d = 1 + rng.range_u64(1u64 << magnitude);
                    q.schedule(s + d, id);
                    heap.push(Reverse((s + d, seq, id)));
                    seq += 1;
                }
            }
        }
        assert!(heap.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn take_on_eventless_slot_is_a_noop() {
        let mut q = WakeQueue::new();
        q.schedule(10, 1);
        q.advance_to(5);
        let mut out = Vec::new();
        q.take(5, &mut out);
        assert!(out.is_empty());
        assert_eq!(q.next_slot(), Some(10));
    }

    #[test]
    fn block_ends_saturate_near_u64_max() {
        // All block ends saturate to u64::MAX at the top of the slot axis;
        // a slot at u64::MAX itself is never strictly below a saturated
        // end, so it parks in the far heap — the NEVER-sentinel
        // convention, matching the flat ring's saturating horizon.
        assert_eq!(block_end(u64::MAX - 100, SHIFT[1]), u64::MAX);
        assert_eq!(block_end(u64::MAX - 100, TOP_BITS), u64::MAX);
        assert_eq!(block_end(5, SHIFT[1]), 1 << 12);
        let mut q = WakeQueue::new();
        let base = u64::MAX - 100;
        q.advance_to(base);
        q.schedule(u64::MAX - 3, 7); // inside the saturated L0 block
        q.schedule(u64::MAX, 8); // not < any end: stays far
        assert_eq!(q.next_slot(), Some(u64::MAX - 3));
        q.advance_to(u64::MAX - 3);
        let mut out = Vec::new();
        q.take(u64::MAX - 3, &mut out);
        assert_eq!(out, vec![7]);
        assert_eq!(q.next_slot(), Some(u64::MAX));
        assert!(!q.is_empty());
    }

    #[test]
    fn oversized_bucket_capacity_is_released_after_drain() {
        // A collision burst parks far more events in one slot than the
        // steady state ever will; the drained bucket must give the memory
        // back instead of pinning it for the rest of the run.
        let mut q = WakeQueue::new();
        let burst = 16 * BUCKET_CAP as u32;
        for id in 0..burst {
            q.schedule(7, id);
        }
        let mut out = Vec::new();
        q.advance_to(7);
        q.take(7, &mut out);
        assert_eq!(out.len(), burst as usize);
        assert_eq!(out, (0..burst).collect::<Vec<_>>());
        assert!(
            q.buckets[7].spill.capacity() <= BUCKET_CAP,
            "bucket kept {} spill capacity",
            q.buckets[7].spill.capacity()
        );
        // A modest bucket keeps its warm spill allocation (hysteresis).
        for id in 0..BUCKET_CAP as u32 {
            q.schedule(9, id);
        }
        let before = q.buckets[9].spill.capacity();
        out.clear();
        q.take(9, &mut out);
        assert_eq!(q.buckets[9].spill.capacity(), before);
    }

    #[test]
    fn oversized_coarse_bucket_capacity_is_released_after_cascade() {
        let mut q = WakeQueue::new();
        // Flood one L1 bucket (block [2^12, 2^13)) far past the retained
        // cap, spreading events over its 4096 slots.
        let burst = 4 * COARSE_CAP as u32;
        let block = 1u64 << 12;
        for id in 0..burst {
            q.schedule(block + (id as u64 % (1 << 12)), id);
        }
        let idx = ((block >> SHIFT[1]) as usize) & COARSE_MASK;
        assert!(q.coarse_capacity(0, idx) >= burst as usize);
        q.advance_to(block); // cascade drains the bucket into L0
        assert_eq!(q.cascade_moves(), burst as u64);
        assert!(
            q.coarse_capacity(0, idx) <= COARSE_CAP,
            "coarse bucket kept {} capacity",
            q.coarse_capacity(0, idx)
        );
        // Everything is still there, in per-slot insertion order.
        let mut seen = 0u32;
        let mut out = Vec::new();
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            out.clear();
            q.take(s, &mut out);
            // Same-slot ids were scheduled in ascending id order.
            assert!(out.windows(2).all(|w| w[0] < w[1]), "order lost at {s}");
            seen += out.len() as u32;
        }
        assert_eq!(seen, burst);
    }

    #[test]
    fn footprint_grows_with_pending_events_and_is_station_scale() {
        let mut q = WakeQueue::new();
        let empty = q.footprint_bytes();
        assert!(empty > 0);
        let n = 100_000u32;
        for id in 0..n {
            // Spread over L0–L2 like a large quantized-ladder steady state.
            q.schedule(1 + (id as u64 * 37) % (1 << 22), id);
        }
        let full = q.footprint_bytes();
        assert!(full > empty);
        // The dominant term is the per-event storage: comfortably under
        // the 64 bytes/station capacity budget even with the fixed rings.
        assert!(
            (full - empty) / n as usize <= 64,
            "{} bytes per pending event",
            (full - empty) / n as usize
        );
    }

    mod model {
        //! The wheel against an insertion-order `BTreeMap` model.
        //!
        //! The model is the contract in its simplest form: a
        //! `BTreeMap<Slot, Vec<u32>>` whose per-slot `Vec` is append-only
        //! push order. This extends the flat ring's original proptest (now
        //! in `wake_flat.rs`) to the wheel's full delta range: random
        //! workloads sweep level-boundary rollovers (deltas straddling
        //! 2^12/2^20/2^28), cascade-at-horizon (exactly-at-block-end
        //! schedules, which must park one level up), wraparound past the
        //! whole ring span (deltas beyond 2^36, through the far heap), and
        //! starting bases near block boundaries — and every drained slot
        //! must hand back exactly the model's ids, in the model's order.

        use super::*;
        use proptest::prelude::*;
        use proptest::test_runner::TestCaseError;
        use std::collections::BTreeMap;

        /// Takes slot `t` from both structures and asserts they agree.
        fn take_and_check(
            q: &mut WakeQueue,
            model: &mut BTreeMap<Slot, Vec<u32>>,
            t: Slot,
        ) -> Result<(), TestCaseError> {
            prop_assert_eq!(Some(t), model.keys().next().copied());
            q.advance_to(t);
            let mut got = Vec::new();
            q.take(t, &mut got);
            let want = model.remove(&t).expect("model has the slot");
            prop_assert_eq!(&got, &want);
            Ok(())
        }

        /// Wake delays concentrated at the wheel's decision boundaries:
        /// in-block, straddling each block end (including exactly-at-end,
        /// which must park one level up), and past the whole ring span.
        /// (The in-block range is repeated to weight the uniform choice
        /// toward the hot path.)
        fn delta() -> impl Strategy<Value = u64> {
            prop_oneof![
                0u64..(1 << 12) + 3,
                0u64..(1 << 12) + 3,
                0u64..(1 << 12) + 3,
                (1u64 << 12) - 3..(1u64 << 13) + 3,
                (1u64 << 12) - 3..(1u64 << 13) + 3,
                (1u64 << 20) - 3..(1u64 << 20) + (1 << 13),
                (1u64 << 20) - 3..(1u64 << 20) + (1 << 13),
                (1u64 << 28) - 3..(1u64 << 28) + (1 << 13),
                (1u64 << 36) - 3..(1u64 << 36) + (1 << 13),
            ]
        }

        /// Starting clocks near block boundaries of every level, so the
        /// very first schedules already sit at rollover edges.
        fn start() -> impl Strategy<Value = u64> {
            prop_oneof![
                0u64..3 * (1u64 << 12),
                0u64..3 * (1u64 << 12),
                0u64..3 * (1u64 << 12),
                (1u64 << 20) - (1 << 12)..(1u64 << 20) + (1 << 12),
                (1u64 << 28) - (1 << 12)..(1u64 << 28) + (1 << 12),
                (1u64 << 36) - (1 << 12)..(1u64 << 36) + (1 << 12),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn drains_in_model_order(
                start in start(),
                batches in proptest::collection::vec(
                    proptest::collection::vec(delta(), 1..8),
                    1..40,
                ),
            ) {
                let mut q = WakeQueue::new();
                let mut model: BTreeMap<Slot, Vec<u32>> = BTreeMap::new();
                q.advance_to(start);
                let mut now = start;
                let mut next_id = 0u32;
                for batch in &batches {
                    for &delta in batch {
                        let slot = now + delta;
                        q.schedule(slot, next_id);
                        model.entry(slot).or_default().push(next_id);
                        next_id += 1;
                        // Inline/spill split invariant for in-block pushes:
                        // spilling only happens once the inline cell is
                        // full.
                        if slot < block_end(now, SHIFT[1]) {
                            let (inline, spill) = q.bucket_shape(slot);
                            prop_assert!(spill == 0 || inline == INLINE);
                        }
                    }
                    // Drain one event slot, keeping the two in lockstep.
                    let next = q.next_slot().expect("events pending");
                    take_and_check(&mut q, &mut model, next)?;
                    now = next;
                }
                // Drain the rest.
                while let Some(next) = q.next_slot() {
                    take_and_check(&mut q, &mut model, next)?;
                }
                prop_assert!(model.is_empty());
                prop_assert!(q.is_empty());
            }
        }
    }

    #[test]
    fn cap_scratch_shrinks_only_past_hysteresis() {
        let mut v: Vec<u32> = Vec::with_capacity(10 * SCRATCH_CAP);
        cap_scratch(&mut v, SCRATCH_CAP);
        assert!(v.capacity() <= SCRATCH_CAP, "capacity {}", v.capacity());
        let mut warm: Vec<u32> = Vec::with_capacity(2 * SCRATCH_CAP);
        cap_scratch(&mut warm, SCRATCH_CAP);
        assert_eq!(warm.capacity(), 2 * SCRATCH_CAP, "within band: untouched");
        // Live entries survive a shrink.
        let mut live: Vec<u32> = Vec::with_capacity(3 * SCRATCH_CAP);
        live.extend(0..10);
        cap_scratch(&mut live, SCRATCH_CAP);
        assert_eq!(live, (0..10).collect::<Vec<_>>());
    }
}
