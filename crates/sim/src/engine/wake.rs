//! The wake set of the event-driven sparse engine.
//!
//! A [`WakeQueue`] holds, for every live packet, the one slot in which it
//! will next access the channel. The classic structure for this is a binary
//! heap keyed by `(slot, id)` — but a heap pays `O(log n)` scattered memory
//! touches *per access*, and at paper scale (tens of thousands of packets,
//! hundreds of accesses per slot) those heap ops dominate the whole
//! simulation. This module replaces the heap with a **calendar queue**:
//!
//! * a ring of `RING` buckets covers the slots `[base, base + RING)`; an
//!   event lands in bucket `slot % RING` with an O(1) push;
//! * a bitmap with one bit per bucket makes "earliest non-empty bucket" a
//!   handful of word scans instead of a heap percolation;
//! * the rare event scheduled beyond the ring horizon overflows into a
//!   small binary heap and migrates into the ring as time advances.
//!
//! Within one slot the engine must process packets in ascending id order
//! (that is the pop order of the `(slot, id)` heap it replaces, and RNG
//! reproducibility pins it), so [`WakeQueue::take`] sorts the bucket — a
//! contiguous `u32` sort, far cheaper than the per-element heap traffic it
//! replaces.
//!
//! Total cost: `O(1)` amortized per scheduled access plus `O(k log k)` per
//! event slot with `k` participants, instead of `O(log n)` per access.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Slot;

/// Number of slots covered by the ring. Backoff protocols sleep for
/// geometrically distributed gaps whose mean is far below this, so overflow
/// into the far heap is rare; 4096 buckets keep the hot metadata inside L2.
const RING: usize = 1 << 12;
const MASK: usize = RING - 1;
const WORDS: usize = RING / 64;

/// Calendar queue of pending wake events, keyed by absolute slot.
///
/// Slots must be consumed in nondecreasing order via
/// [`WakeQueue::advance_to`] + [`WakeQueue::take`]; events may only be
/// scheduled at or after the current base slot.
#[derive(Debug)]
pub struct WakeQueue {
    /// Start of the ring window `[base, base + RING)`.
    base: Slot,
    /// Events currently stored in ring buckets (excludes the far heap).
    in_ring: usize,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Cached `base + RING`, the first slot past the ring window; kept in
    /// sync by `advance_to` so the hot `schedule` path pays one compare
    /// instead of a saturating add per event.
    horizon: Slot,
    /// `buckets[slot % RING]` holds the ids waking in `slot`. A boxed
    /// fixed-size array (not a `Vec`) so masked indexing is provably in
    /// bounds and the per-event push carries no bounds check.
    buckets: Box<[Vec<u32>; RING]>,
    /// Events beyond the ring horizon, migrated inward by `advance_to`.
    far: BinaryHeap<Reverse<(Slot, u32)>>,
}

impl Default for WakeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WakeQueue {
    /// An empty queue with its window starting at slot 0.
    pub fn new() -> Self {
        let buckets: Box<[Vec<u32>; RING]> = (0..RING)
            .map(|_| Vec::new())
            .collect::<Vec<_>>()
            .try_into()
            .expect("RING buckets");
        WakeQueue {
            base: 0,
            in_ring: 0,
            occupied: [0; WORDS],
            horizon: RING as u64,
            buckets,
            far: BinaryHeap::new(),
        }
    }

    /// Whether no event is pending anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_ring == 0 && self.far.is_empty()
    }

    /// Schedules packet `id` to wake in `slot` (which must be ≥ the current
    /// base).
    #[inline]
    pub fn schedule(&mut self, slot: Slot, id: u32) {
        debug_assert!(slot >= self.base, "scheduling into the past");
        if slot < self.horizon {
            let idx = (slot as usize) & MASK;
            self.buckets[idx].push(id);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.in_ring += 1;
        } else {
            self.far.push(Reverse((slot, id)));
        }
    }

    /// The earliest slot with a pending event, if any.
    pub fn next_slot(&self) -> Option<Slot> {
        if self.in_ring > 0 {
            // Ring events always precede far events (far ≥ base + RING).
            Some(self.next_ring_slot())
        } else {
            self.far.peek().map(|Reverse((s, _))| *s)
        }
    }

    /// Scans the occupancy bitmap circularly from `base` for the earliest
    /// non-empty bucket. Caller guarantees `in_ring > 0`.
    fn next_ring_slot(&self) -> Slot {
        let start = (self.base as usize) & MASK;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return self.slot_of(w0 * 64 + first.trailing_zeros() as usize);
        }
        for i in 1..WORDS {
            let w = (w0 + i) % WORDS;
            let m = self.occupied[w];
            if m != 0 {
                return self.slot_of(w * 64 + m.trailing_zeros() as usize);
            }
        }
        // Wrapped remainder of the first word (bits below b0).
        let last = self.occupied[w0] & !(!0u64 << b0);
        debug_assert!(last != 0, "in_ring > 0 but no occupied bucket");
        self.slot_of(w0 * 64 + last.trailing_zeros() as usize)
    }

    /// Absolute slot of the bucket at bitmap position `bit`, relative to the
    /// current window.
    #[inline]
    fn slot_of(&self, bit: usize) -> Slot {
        let start = (self.base as usize) & MASK;
        let delta = (bit + RING - start) & MASK;
        self.base + delta as u64
    }

    /// Moves the window start forward to `t` and migrates far events that
    /// now fit inside the ring.
    ///
    /// All buckets in `[base, t)` must already be empty — the engine only
    /// ever advances to the next pending slot, so this holds by
    /// construction.
    pub fn advance_to(&mut self, t: Slot) {
        debug_assert!(t >= self.base, "time moved backwards");
        self.base = t;
        self.horizon = t.saturating_add(RING as u64);
        while let Some(&Reverse((s, id))) = self.far.peek() {
            if s >= self.horizon {
                break;
            }
            self.far.pop();
            let idx = (s as usize) & MASK;
            self.buckets[idx].push(id);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.in_ring += 1;
        }
    }

    /// Drains every event scheduled for slot `t` (which must lie inside the
    /// current window), appending the ids to `out` in ascending order.
    /// Entries already in `out` are left untouched.
    pub fn take(&mut self, t: Slot, out: &mut Vec<u32>) {
        debug_assert!(t >= self.base && t < self.horizon);
        let idx = (t as usize) & MASK;
        let bucket = &mut self.buckets[idx];
        if bucket.is_empty() {
            return;
        }
        self.in_ring -= bucket.len();
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        let start = out.len();
        out.append(bucket);
        out[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue fully, returning (slot, sorted ids) per event slot.
    fn drain(q: &mut WakeQueue) -> Vec<(Slot, Vec<u32>)> {
        let mut events = Vec::new();
        let mut out = Vec::new();
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            out.clear();
            q.take(s, &mut out);
            assert!(!out.is_empty(), "next_slot pointed at an empty slot");
            events.push((s, out.clone()));
        }
        events
    }

    #[test]
    fn empty_queue_has_no_next() {
        let q = WakeQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_slot(), None);
    }

    #[test]
    fn orders_by_slot_then_id() {
        let mut q = WakeQueue::new();
        q.schedule(5, 2);
        q.schedule(3, 7);
        q.schedule(5, 1);
        q.schedule(3, 0);
        let events = drain(&mut q);
        assert_eq!(events, vec![(3, vec![0, 7]), (5, vec![1, 2])]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_migrate_into_the_ring() {
        let mut q = WakeQueue::new();
        q.schedule(2, 1);
        q.schedule(1_000_000, 3); // far beyond the ring
        q.schedule(1_000_000, 2);
        q.schedule(50_000, 9);
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![(2, vec![1]), (50_000, vec![9]), (1_000_000, vec![2, 3])]
        );
    }

    #[test]
    fn ring_boundary_exactly_at_horizon() {
        let mut q = WakeQueue::new();
        // One event at the last in-window slot, one just past the horizon.
        q.schedule(RING as u64 - 1, 1);
        q.schedule(RING as u64, 2);
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![(RING as u64 - 1, vec![1]), (RING as u64, vec![2])]
        );
    }

    #[test]
    fn schedule_and_take_at_window_edge_slots() {
        // Pin the `schedule`/`take` window contract at the exact edge: with
        // the window at `[base, base + RING)`, slot `base + RING - 1` is the
        // last ring-resident slot (and the last slot `take` may be asked
        // for), while `base + RING` must overflow into the far heap and
        // migrate back in once the window has advanced. A non-zero,
        // non-multiple-of-RING base exercises the index wrap too.
        let base = 3 * RING as u64 + 17;
        let mut q = WakeQueue::new();
        q.advance_to(base);
        q.schedule(base + RING as u64 - 1, 7); // last in-window slot
        q.schedule(base + RING as u64, 8); // first beyond: far heap
        q.schedule(base, 3); // window start is schedulable too
        assert_eq!(q.next_slot(), Some(base));
        let mut out = Vec::new();
        q.take(base, &mut out);
        assert_eq!(out, vec![3]);
        assert_eq!(q.next_slot(), Some(base + RING as u64 - 1));
        // Take at the very last in-window slot without advancing: `t` sits
        // exactly at `horizon - 1`, the debug_assert's boundary.
        out.clear();
        q.take(base + RING as u64 - 1, &mut out);
        assert_eq!(out, vec![7]);
        // The far event becomes visible and migrates on advance.
        assert_eq!(q.next_slot(), Some(base + RING as u64));
        q.advance_to(base + RING as u64);
        out.clear();
        q.take(base + RING as u64, &mut out);
        assert_eq!(out, vec![8]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_event_exactly_at_new_horizon_stays_far() {
        // After advance_to(t), an event at `t + RING` is exactly at the new
        // horizon and must stay in the far heap (the ring bucket for that
        // slot index is `t`'s own bucket).
        let mut q = WakeQueue::new();
        q.schedule(100, 1);
        q.schedule(100 + RING as u64, 2); // == horizon after advance_to(100)
        q.advance_to(100);
        let mut out = Vec::new();
        q.take(100, &mut out);
        assert_eq!(out, vec![1]);
        // Event 2 is still pending and correctly ordered.
        assert_eq!(q.next_slot(), Some(100 + RING as u64));
        q.advance_to(100 + RING as u64);
        out.clear();
        q.take(100 + RING as u64, &mut out);
        assert_eq!(out, vec![2]);
        assert!(q.is_empty());
    }

    #[test]
    fn wraparound_scan_finds_earlier_bucket_index() {
        let mut q = WakeQueue::new();
        q.advance_to(RING as u64 - 2);
        // Bucket indices wrap: slot RING+1 maps below the base index.
        q.schedule(RING as u64 + 1, 4);
        q.schedule(RING as u64 - 1, 3);
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![(RING as u64 - 1, vec![3]), (RING as u64 + 1, vec![4])]
        );
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(42);
        let mut q = WakeQueue::new();
        let mut heap: BinaryHeap<Reverse<(Slot, u32)>> = BinaryHeap::new();
        for id in 0..512u32 {
            let s = rng.range_u64(64);
            q.schedule(s, id);
            heap.push(Reverse((s, id)));
        }
        let mut processed = 0u32;
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            let mut got = Vec::new();
            q.take(s, &mut got);
            for &id in &got {
                let Reverse((hs, hid)) = heap.pop().expect("heap in sync");
                assert_eq!((hs, hid), (s, id));
                processed += 1;
                // Reschedule a while: mixed near/far delays.
                if processed < 4_000 {
                    let d = 1 + rng.range_u64(10_000);
                    q.schedule(s + d, id);
                    heap.push(Reverse((s + d, id)));
                }
            }
        }
        assert!(heap.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn take_on_eventless_slot_is_a_noop() {
        let mut q = WakeQueue::new();
        q.schedule(10, 1);
        q.advance_to(5);
        let mut out = Vec::new();
        q.take(5, &mut out);
        assert!(out.is_empty());
        assert_eq!(q.next_slot(), Some(10));
    }
}
