//! The retained flat calendar ring, kept as a drain-order oracle for the
//! hierarchical wake wheel in [`wake`](crate::engine::wake).
//!
//! This is the PR 2–4 production `WakeQueue` verbatim: a single ring of
//! `RING` buckets covering `[base, base + RING)`, an occupancy bitmap, and
//! a `(slot, seq)`-keyed far-overflow heap for events beyond the window.
//! When the production queue became a multi-level timing wheel, this
//! structure moved here unchanged so the wheel has a *second*,
//! structurally different implementation of the same insertion-order
//! contract to be pinned against — the same role the heap-based
//! [`run_sparse_reference`](crate::engine::sparse_reference) plays one
//! layer up. The three-way equivalence tests run the sparse engine over
//! the wheel, over this flat ring
//! ([`run_sparse_flat`](crate::engine::sparse::run_sparse_flat)), and over
//! the reference heap, and demand bit-identical [`RunResult`]s.
//!
//! Use it for validation only: at million-station scale its far heap
//! degrades (every long-gap event pays `O(log n)` heap traffic), which is
//! exactly what the wheel was built to fix.
//!
//! # Insertion-order drain
//!
//! Within one slot the engine processes packets in **insertion order**: the
//! order in which their events were [`schedule`](FlatWakeQueue::schedule)d,
//! across the whole run. [`FlatWakeQueue::take`] therefore just hands back
//! the bucket as-is — no per-slot sort — because a bucket is *already* in
//! insertion order:
//!
//! * direct pushes land in the bucket in call order, and every `schedule`
//!   call carries an implicit global sequence number (its position in the
//!   run's schedule-call stream);
//! * far events are keyed by `(slot, seq)` in the overflow heap, so when a
//!   slot's far events migrate inward they arrive in ascending-seq order;
//! * far and direct pushes for one slot cannot interleave: an event for
//!   slot `s` goes far only while `s ≥ horizon` and direct only while
//!   `s < horizon`, and the horizon never decreases — so every far event
//!   for `s` precedes (in seq) every direct event for `s`, and the
//!   migration happens at the exact `advance_to` that makes direct pushes
//!   to `s` possible.
//!
//! [`RunResult`]: crate::metrics::RunResult

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::wake::{cap_scratch, WakeSet};
use crate::time::Slot;

/// Number of slots covered by the ring. Backoff protocols at paper scale
/// sleep for gaps whose mean is far below this, so overflow into the far
/// heap is rare; 4096 buckets keep the hot metadata inside L2.
const RING: usize = 1 << 12;
const MASK: usize = RING - 1;
const WORDS: usize = RING / 64;

/// Retained capacity (in events) of a drained bucket's spill vector.
const BUCKET_CAP: usize = 64;

/// Events stored inline in a bucket before spilling to its vector. Sized
/// so one bucket is exactly one cache line.
const INLINE: usize = 6;

/// One calendar bucket: a cache-line cell holding its slot's pending ids
/// in insertion order — the first [`INLINE`] inline, the rest in `spill`.
#[derive(Debug)]
#[repr(align(64))]
struct Bucket {
    /// Ids pushed while `len < INLINE`; `inline[..len]` is valid.
    inline: [u32; INLINE],
    /// Inline occupancy (spilling starts only once this hits `INLINE`).
    len: u32,
    /// Overflow beyond the inline cell, still in push order.
    spill: Vec<u32>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            inline: [0; INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Total pending events in this bucket.
    #[inline]
    fn count(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Appends `id`, preserving push order across the inline/spill split.
    #[inline]
    fn push(&mut self, id: u32) {
        let n = self.len as usize;
        if n < INLINE {
            self.inline[n] = id;
            self.len += 1;
        } else {
            self.spill.push(id);
        }
    }
}

/// The PR 2–4 flat calendar queue of pending wake events, keyed by
/// absolute slot — now a test-only oracle (see the module docs).
///
/// Slots must be consumed in nondecreasing order via
/// [`FlatWakeQueue::advance_to`] + [`FlatWakeQueue::take`]; events may only
/// be scheduled at or after the current base slot. Within one slot, events
/// come back in insertion order (the order of the `schedule` calls).
#[derive(Debug)]
pub struct FlatWakeQueue {
    /// Start of the ring window `[base, base + RING)`.
    base: Slot,
    /// Events currently stored in ring buckets (excludes the far heap).
    in_ring: usize,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Cached `base + RING`, the first slot past the ring window.
    horizon: Slot,
    /// Position of the next `schedule` call in the run's global schedule
    /// stream. Far events carry it so migration replays insertion order.
    seq: u64,
    /// `buckets[slot % RING]` holds the ids waking in `slot`, in insertion
    /// order, inline-first (see [`Bucket`]).
    buckets: Box<[Bucket; RING]>,
    /// Events beyond the ring horizon, keyed `(slot, seq, id)` and migrated
    /// inward by `advance_to` in that order.
    far: BinaryHeap<Reverse<(Slot, u64, u32)>>,
}

impl Default for FlatWakeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl FlatWakeQueue {
    /// Width in slots of the in-ring scheduling window `[base, base +
    /// WINDOW)`; events at or past `base + WINDOW` spill into the far heap.
    pub const WINDOW: u64 = RING as u64;

    /// An empty queue with its window starting at slot 0.
    pub fn new() -> Self {
        let buckets: Box<[Bucket; RING]> = (0..RING)
            .map(|_| Bucket::new())
            .collect::<Vec<_>>()
            .try_into()
            .expect("RING buckets");
        FlatWakeQueue {
            base: 0,
            in_ring: 0,
            occupied: [0; WORDS],
            horizon: RING as u64,
            seq: 0,
            buckets,
            far: BinaryHeap::new(),
        }
    }

    /// Whether no event is pending anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_ring == 0 && self.far.is_empty()
    }

    /// Schedules packet `id` to wake in `slot` (which must be ≥ the current
    /// base).
    #[inline]
    pub fn schedule(&mut self, slot: Slot, id: u32) {
        debug_assert!(slot >= self.base, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        if slot < self.horizon {
            let idx = (slot as usize) & MASK;
            self.buckets[idx].push(id);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.in_ring += 1;
        } else {
            self.far.push(Reverse((slot, seq, id)));
        }
    }

    /// Debug-only invariant check used by the model proptest: the spill
    /// vector may be non-empty only when the inline cell is full.
    #[cfg(test)]
    pub(crate) fn bucket_shape(&self, slot: Slot) -> (usize, usize) {
        let b = &self.buckets[(slot as usize) & MASK];
        (b.len as usize, b.spill.len())
    }

    /// The earliest slot with a pending event, if any.
    pub fn next_slot(&self) -> Option<Slot> {
        if self.in_ring > 0 {
            // Ring events always precede far events (far ≥ base + RING).
            Some(self.next_ring_slot())
        } else {
            self.far.peek().map(|Reverse((s, _, _))| *s)
        }
    }

    /// Scans the occupancy bitmap circularly from `base` for the earliest
    /// non-empty bucket. Caller guarantees `in_ring > 0`.
    fn next_ring_slot(&self) -> Slot {
        let start = (self.base as usize) & MASK;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return self.slot_of(w0 * 64 + first.trailing_zeros() as usize);
        }
        for i in 1..WORDS {
            let w = (w0 + i) % WORDS;
            let m = self.occupied[w];
            if m != 0 {
                return self.slot_of(w * 64 + m.trailing_zeros() as usize);
            }
        }
        // Wrapped remainder of the first word (bits below b0).
        let last = self.occupied[w0] & !(!0u64 << b0);
        debug_assert!(last != 0, "in_ring > 0 but no occupied bucket");
        self.slot_of(w0 * 64 + last.trailing_zeros() as usize)
    }

    /// Absolute slot of the bucket at bitmap position `bit`, relative to the
    /// current window.
    #[inline]
    fn slot_of(&self, bit: usize) -> Slot {
        let start = (self.base as usize) & MASK;
        let delta = (bit + RING - start) & MASK;
        self.base + delta as u64
    }

    /// Moves the window start forward to `t` and migrates far events that
    /// now fit inside the ring.
    ///
    /// All buckets in `[base, t)` must already be empty — the engine only
    /// ever advances to the next pending slot, so this holds by
    /// construction.
    pub fn advance_to(&mut self, t: Slot) {
        debug_assert!(t >= self.base, "time moved backwards");
        self.base = t;
        self.horizon = t.saturating_add(RING as u64);
        // Pops come out keyed `(slot, seq, _)`, so each bucket receives its
        // slot's migrants in ascending insertion order — and any direct
        // push to those slots can only happen after this migration (the
        // slot was at or past the horizon until now), keeping the whole
        // bucket insertion-ordered.
        while let Some(&Reverse((s, _, id))) = self.far.peek() {
            if s >= self.horizon {
                break;
            }
            self.far.pop();
            let idx = (s as usize) & MASK;
            self.buckets[idx].push(id);
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            self.in_ring += 1;
        }
    }

    /// Drains every event scheduled for slot `t` (which must lie inside the
    /// current window), appending the ids to `out` in insertion order (the
    /// order of the `schedule` calls). Entries already in `out` are left
    /// untouched.
    pub fn take(&mut self, t: Slot, out: &mut Vec<u32>) {
        debug_assert!(t >= self.base && t < self.horizon);
        let idx = (t as usize) & MASK;
        let bucket = &mut self.buckets[idx];
        let n = bucket.count();
        if n == 0 {
            return;
        }
        self.in_ring -= n;
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        // Inline entries were pushed strictly before any spill entry, so
        // inline-then-spill is push order.
        out.extend_from_slice(&bucket.inline[..bucket.len as usize]);
        bucket.len = 0;
        out.append(&mut bucket.spill);
        cap_scratch(&mut bucket.spill, BUCKET_CAP);
    }
}

impl WakeSet for FlatWakeQueue {
    fn new() -> Self {
        FlatWakeQueue::new()
    }
    #[inline]
    fn schedule(&mut self, slot: Slot, id: u32) {
        FlatWakeQueue::schedule(self, slot, id)
    }
    #[inline]
    fn next_slot(&self) -> Option<Slot> {
        FlatWakeQueue::next_slot(self)
    }
    #[inline]
    fn advance_to(&mut self, t: Slot) {
        FlatWakeQueue::advance_to(self, t)
    }
    #[inline]
    fn take(&mut self, t: Slot, out: &mut Vec<u32>) {
        FlatWakeQueue::take(self, t, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue fully, returning (slot, insertion-ordered ids) per
    /// event slot.
    fn drain(q: &mut FlatWakeQueue) -> Vec<(Slot, Vec<u32>)> {
        let mut events = Vec::new();
        let mut out = Vec::new();
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            out.clear();
            q.take(s, &mut out);
            assert!(!out.is_empty(), "next_slot pointed at an empty slot");
            events.push((s, out.clone()));
        }
        events
    }

    #[test]
    fn empty_queue_has_no_next() {
        let q = FlatWakeQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_slot(), None);
    }

    #[test]
    fn orders_by_slot_then_insertion() {
        let mut q = FlatWakeQueue::new();
        q.schedule(5, 2);
        q.schedule(3, 7);
        q.schedule(5, 1);
        q.schedule(3, 0);
        let events = drain(&mut q);
        // Within a slot, ids come back in schedule-call order, not sorted.
        assert_eq!(events, vec![(3, vec![7, 0]), (5, vec![2, 1])]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_migrate_into_the_ring_in_insertion_order() {
        let mut q = FlatWakeQueue::new();
        q.schedule(2, 1);
        q.schedule(1_000_000, 3); // far beyond the ring
        q.schedule(1_000_000, 2);
        q.schedule(50_000, 9);
        let events = drain(&mut q);
        // Slot 1_000_000 drains [3, 2]: the far heap is keyed (slot, seq),
        // so migration replays the schedule-call order, not id order.
        assert_eq!(
            events,
            vec![(2, vec![1]), (50_000, vec![9]), (1_000_000, vec![3, 2])]
        );
    }

    #[test]
    fn far_migrants_precede_direct_pushes_in_their_bucket() {
        // An event scheduled while its slot was beyond the horizon must
        // drain before one scheduled directly once the window had advanced
        // — that is the (slot, seq) order, since the far schedule happened
        // first.
        let target = FlatWakeQueue::WINDOW + 100;
        let mut q = FlatWakeQueue::new();
        q.schedule(target, 9); // far (beyond horizon at base 0)
        q.schedule(200, 1);
        let mut out = Vec::new();
        q.advance_to(200);
        q.take(200, &mut out);
        assert_eq!(out, vec![1]);
        // `target` is now inside the window: the far event has migrated,
        // and a direct push appends after it despite the smaller id.
        q.schedule(target, 4);
        q.advance_to(target);
        out.clear();
        q.take(target, &mut out);
        assert_eq!(out, vec![9, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_boundary_exactly_at_horizon() {
        let mut q = FlatWakeQueue::new();
        // One event at the last in-window slot, one just past the horizon.
        q.schedule(RING as u64 - 1, 1);
        q.schedule(RING as u64, 2);
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![(RING as u64 - 1, vec![1]), (RING as u64, vec![2])]
        );
    }

    #[test]
    fn schedule_and_take_at_window_edge_slots() {
        // Pin the `schedule`/`take` window contract at the exact edge: with
        // the window at `[base, base + RING)`, slot `base + RING - 1` is the
        // last ring-resident slot (and the last slot `take` may be asked
        // for), while `base + RING` must overflow into the far heap and
        // migrate back in once the window has advanced. A non-zero,
        // non-multiple-of-RING base exercises the index wrap too.
        let base = 3 * RING as u64 + 17;
        let mut q = FlatWakeQueue::new();
        q.advance_to(base);
        q.schedule(base + RING as u64 - 1, 7); // last in-window slot
        q.schedule(base + RING as u64, 8); // first beyond: far heap
        q.schedule(base, 3); // window start is schedulable too
        assert_eq!(q.next_slot(), Some(base));
        let mut out = Vec::new();
        q.take(base, &mut out);
        assert_eq!(out, vec![3]);
        assert_eq!(q.next_slot(), Some(base + RING as u64 - 1));
        // Take at the very last in-window slot without advancing: `t` sits
        // exactly at `horizon - 1`, the debug_assert's boundary.
        out.clear();
        q.take(base + RING as u64 - 1, &mut out);
        assert_eq!(out, vec![7]);
        // The far event becomes visible and migrates on advance.
        assert_eq!(q.next_slot(), Some(base + RING as u64));
        q.advance_to(base + RING as u64);
        out.clear();
        q.take(base + RING as u64, &mut out);
        assert_eq!(out, vec![8]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_event_exactly_at_new_horizon_stays_far() {
        // After advance_to(t), an event at `t + RING` is exactly at the new
        // horizon and must stay in the far heap (the ring bucket for that
        // slot index is `t`'s own bucket).
        let mut q = FlatWakeQueue::new();
        q.schedule(100, 1);
        q.schedule(100 + RING as u64, 2); // == horizon after advance_to(100)
        q.advance_to(100);
        let mut out = Vec::new();
        q.take(100, &mut out);
        assert_eq!(out, vec![1]);
        // Event 2 is still pending and correctly ordered.
        assert_eq!(q.next_slot(), Some(100 + RING as u64));
        q.advance_to(100 + RING as u64);
        out.clear();
        q.take(100 + RING as u64, &mut out);
        assert_eq!(out, vec![2]);
        assert!(q.is_empty());
    }

    #[test]
    fn wraparound_scan_finds_earlier_bucket_index() {
        let mut q = FlatWakeQueue::new();
        q.advance_to(RING as u64 - 2);
        // Bucket indices wrap: slot RING+1 maps below the base index.
        q.schedule(RING as u64 + 1, 4);
        q.schedule(RING as u64 - 1, 3);
        let events = drain(&mut q);
        assert_eq!(
            events,
            vec![(RING as u64 - 1, vec![3]), (RING as u64 + 1, vec![4])]
        );
    }

    #[test]
    fn matches_seq_keyed_reference_heap_on_random_workload() {
        // The reference oracle keys its heap (slot, seq): pop order within
        // a slot is schedule-call order. The calendar queue must drain in
        // exactly that order on a workload mixing near and far delays.
        use crate::rng::SimRng;
        let mut rng = SimRng::new(42);
        let mut q = FlatWakeQueue::new();
        let mut heap: BinaryHeap<Reverse<(Slot, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for id in 0..512u32 {
            let s = rng.range_u64(64);
            q.schedule(s, id);
            heap.push(Reverse((s, seq, id)));
            seq += 1;
        }
        let mut processed = 0u32;
        while let Some(s) = q.next_slot() {
            q.advance_to(s);
            let mut got = Vec::new();
            q.take(s, &mut got);
            for &id in &got {
                let Reverse((hs, _, hid)) = heap.pop().expect("heap in sync");
                assert_eq!((hs, hid), (s, id));
                processed += 1;
                // Reschedule a while: mixed near/far delays.
                if processed < 4_000 {
                    let d = 1 + rng.range_u64(10_000);
                    q.schedule(s + d, id);
                    heap.push(Reverse((s + d, seq, id)));
                    seq += 1;
                }
            }
        }
        assert!(heap.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn take_on_eventless_slot_is_a_noop() {
        let mut q = FlatWakeQueue::new();
        q.schedule(10, 1);
        q.advance_to(5);
        let mut out = Vec::new();
        q.take(5, &mut out);
        assert!(out.is_empty());
        assert_eq!(q.next_slot(), Some(10));
    }

    #[test]
    fn oversized_bucket_capacity_is_released_after_drain() {
        // A collision burst parks far more events in one slot than the
        // steady state ever will; the drained bucket must give the memory
        // back instead of pinning it for the rest of the run.
        let mut q = FlatWakeQueue::new();
        let burst = 16 * BUCKET_CAP as u32;
        for id in 0..burst {
            q.schedule(7, id);
        }
        let mut out = Vec::new();
        q.advance_to(7);
        q.take(7, &mut out);
        assert_eq!(out.len(), burst as usize);
        assert_eq!(out, (0..burst).collect::<Vec<_>>());
        assert!(
            q.buckets[7].spill.capacity() <= BUCKET_CAP,
            "bucket kept {} spill capacity",
            q.buckets[7].spill.capacity()
        );
        // A modest bucket keeps its warm spill allocation (hysteresis).
        for id in 0..BUCKET_CAP as u32 {
            q.schedule(9, id);
        }
        let before = q.buckets[9].spill.capacity();
        out.clear();
        q.take(9, &mut out);
        assert_eq!(q.buckets[9].spill.capacity(), before);
    }

    mod model {
        //! The flat ring against an insertion-order `BTreeMap` model — the
        //! same model the hierarchical wheel's (wider) proptest uses in
        //! `wake.rs`.

        use super::*;
        use proptest::prelude::*;
        use proptest::test_runner::TestCaseError;
        use std::collections::BTreeMap;

        /// Takes slot `t` from both structures and asserts they agree.
        fn take_and_check(
            q: &mut FlatWakeQueue,
            model: &mut BTreeMap<Slot, Vec<u32>>,
            t: Slot,
        ) -> Result<(), TestCaseError> {
            prop_assert_eq!(Some(t), model.keys().next().copied());
            q.advance_to(t);
            let mut got = Vec::new();
            q.take(t, &mut got);
            let want = model.remove(&t).expect("model has the slot");
            prop_assert_eq!(&got, &want);
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn drains_in_model_order(
                // Bases straddling ring multiples exercise index wrap.
                start in 0u64..3 * FlatWakeQueue::WINDOW,
                // Deltas up to WINDOW + 2 cover in-ring, the exact horizon
                // (== WINDOW, which must spill far), and beyond.
                batches in proptest::collection::vec(
                    proptest::collection::vec(0u64..FlatWakeQueue::WINDOW + 3, 1..8),
                    1..40,
                ),
            ) {
                let mut q = FlatWakeQueue::new();
                let mut model: BTreeMap<Slot, Vec<u32>> = BTreeMap::new();
                q.advance_to(start);
                let mut now = start;
                let mut next_id = 0u32;
                for batch in &batches {
                    for &delta in batch {
                        let slot = now + delta;
                        q.schedule(slot, next_id);
                        model.entry(slot).or_default().push(next_id);
                        next_id += 1;
                        // Inline/spill split invariant: spilling only
                        // happens once the inline cell is full.
                        let (inline, spill) = q.bucket_shape(slot);
                        prop_assert!(spill == 0 || inline == INLINE);
                    }
                    // Drain one event slot, keeping the two in lockstep.
                    let next = q.next_slot().expect("events pending");
                    take_and_check(&mut q, &mut model, next)?;
                    now = next;
                }
                // Drain the rest.
                while let Some(next) = q.next_slot() {
                    take_and_check(&mut q, &mut model, next)?;
                }
                prop_assert!(model.is_empty());
                prop_assert!(q.is_empty());
            }
        }
    }
}
