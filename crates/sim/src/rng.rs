//! Deterministic pseudo-random number generation for simulations.
//!
//! The simulator needs bit-for-bit reproducible Monte Carlo runs across
//! platforms and across dependency upgrades, so the core generator
//! (xoshiro256++ seeded through SplitMix64) is implemented here rather than
//! borrowed from an external crate. [`SimRng`] also implements
//! [`rand::Rng`] so it composes with the wider `rand` ecosystem, which
//! the test suite uses to cross-check distributions.
//!
//! # Examples
//!
//! ```
//! use lowsense_sim::rng::SimRng;
//!
//! let mut rng = SimRng::new(42);
//! let x = rng.f64();
//! assert!((0.0..1.0).contains(&x));
//! // Identical seeds give identical streams.
//! assert_eq!(SimRng::new(7).next_u64(), SimRng::new(7).next_u64());
//! ```

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Statistical quality is more than sufficient for Monte Carlo simulation
/// (it passes BigCrush); it is *not* cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) is valid; SplitMix64 expansion guarantees a
    /// non-degenerate internal state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give packets, threads, or adversaries their own streams
    /// without coupling their consumption rates.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }

    /// Returns a uniform integer in `[0, n)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 requires n > 0");
        // Lemire's nearly-divisionless unbiased method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }
}

/// Infallible `rand` interop: [`SimRng`] satisfies `rand::Rng` through the
/// blanket impl for `TryRng<Error = Infallible>`.
impl rand::TryRng for SimRng {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok(SimRng::next_u32(self))
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(SimRng::next_u64(self))
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(5);
        let mut child = parent.fork();
        // Parent continues its own stream; child stream differs.
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::new(3);
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(1.5));
        assert!(!rng.bernoulli(0.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(!rng.bernoulli(f64::NAN)); // NaN comparison is false
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SimRng::new(17);
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn range_u64_bounds_and_uniformity() {
        let mut rng = SimRng::new(19);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = rng.range_u64(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous slack.
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_u64_n_one() {
        let mut rng = SimRng::new(21);
        for _ in 0..100 {
            assert_eq!(rng.range_u64(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn range_u64_zero_panics() {
        SimRng::new(1).range_u64(0);
    }

    #[test]
    fn rand_interop_fill_bytes_exercises_remainder() {
        use rand::Rng as _;
        let mut rng = SimRng::new(23);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn matches_reference_xoshiro_stream_shape() {
        // Smoke check: outputs are well distributed at the bit level.
        let mut rng = SimRng::new(0);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
