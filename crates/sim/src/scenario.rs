//! Declarative scenario layer: named, reusable run descriptions.
//!
//! A [`Scenario`] composes **arrivals × jammer × limits × metrics × seed**
//! into one value; the protocol joins at the final step, when a run method
//! is called with a factory. Experiments, examples, tests, and benches all
//! construct runs through this layer, so adding a workload is a one-liner
//! everywhere:
//!
//! ```
//! use lowsense_sim::prelude::*;
//!
//! #[derive(Clone)]
//! struct Aloha(f64);
//! impl Protocol for Aloha {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(lowsense_sim::dist::geometric(rng, self.0))
//!     }
//! }
//! impl SparseProtocol for Aloha {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! let scenario = Scenario::named("noisy-batch")
//!     .arrivals(Batch::new(32))
//!     .jammer(RandomJam::new(0.1))
//!     .seed(7);
//! let result = scenario.run_sparse(|_| Aloha(1.0 / 32.0));
//! assert!(result.drained());
//! // The same description replays under any engine or seed.
//! let again = scenario.seeded(8).run_dense(|_| Aloha(1.0 / 32.0));
//! assert!(again.drained());
//! ```
//!
//! The [`scenarios`] module is the registry of canonical instances (batch
//! drain, Poisson stream, adversarial queuing, random/burst/reactive
//! jamming, the mixed-protocol face-off workload); [`DynScenario`] erases
//! the arrival/jammer types so heterogeneous scenario sets can be swept in
//! one loop.

use std::borrow::Cow;
use std::fmt;

use crate::arrivals::ArrivalProcess;
use crate::config::{Limits, SimConfig};
use crate::engine::{
    run_dense, run_dense_model, run_grouped, run_grouped_model, run_sparse, run_sparse_flat,
    run_sparse_flat_model, run_sparse_model, run_sparse_reference, run_sparse_reference_model,
    SymmetricProtocol,
};
use crate::feedback::{ChannelModel, CostlyCollisions, NoCollisionDetection};
use crate::hooks::{Hooks, NoHooks};
use crate::jamming::{Jammer, NoJam};
use crate::metrics::{MetricsConfig, RunResult};
use crate::packet::PacketId;
use crate::protocol::{Protocol, SparseProtocol};
use crate::rng::SimRng;
use crate::time::Slot;
use crate::view::SystemView;

/// Placeholder arrival slot of a freshly [`named`](Scenario::named)
/// scenario. Deliberately **not** an [`ArrivalProcess`]: a scenario cannot
/// run until [`Scenario::arrivals`] replaces it, so forgetting the workload
/// is a compile error instead of a vacuously green zero-packet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoArrivals;

/// A named, reusable description of one simulation run: arrivals, jamming,
/// limits, metrics, and seed. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct Scenario<A = NoArrivals, J = NoJam> {
    name: Cow<'static, str>,
    seed: u64,
    arrivals: A,
    jammer: J,
    limits: Limits,
    metrics: MetricsConfig,
    model: ChannelModel,
}

impl Scenario<NoArrivals, NoJam> {
    /// Starts a scenario description: no workload yet (set one with
    /// [`Scenario::arrivals`] — the run methods only exist once it is set),
    /// no jamming, seed 0, default limits and metrics.
    pub fn named(name: impl Into<Cow<'static, str>>) -> Self {
        Scenario {
            name: name.into(),
            seed: 0,
            arrivals: NoArrivals,
            jammer: NoJam,
            limits: Limits::default(),
            metrics: MetricsConfig::default(),
            model: ChannelModel::Ternary,
        }
    }
}

impl<A, J> Scenario<A, J> {
    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the arrival process.
    pub fn arrivals<A2: ArrivalProcess>(self, arrivals: A2) -> Scenario<A2, J> {
        Scenario {
            name: self.name,
            seed: self.seed,
            arrivals,
            jammer: self.jammer,
            limits: self.limits,
            metrics: self.metrics,
            model: self.model,
        }
    }

    /// Replaces the jammer.
    pub fn jammer<J2: Jammer>(self, jammer: J2) -> Scenario<A, J2> {
        Scenario {
            name: self.name,
            seed: self.seed,
            arrivals: self.arrivals,
            jammer,
            limits: self.limits,
            metrics: self.metrics,
            model: self.model,
        }
    }

    /// Selects the channel model the run resolves slots through
    /// (default: the paper's ternary channel).
    pub fn model(mut self, model: ChannelModel) -> Self {
        self.model = model;
        self
    }

    /// The scenario's channel model.
    pub fn channel_model(&self) -> ChannelModel {
        self.model
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the safety limits.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Stops the slot clock after `max_slot` (shorthand for
    /// [`Limits::until_slot`]).
    pub fn until_slot(self, max_slot: Slot) -> Self {
        let limits = Limits::until_slot(max_slot);
        self.limits(limits)
    }

    /// Replaces the metrics configuration.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Records totals only (the cheapest metrics configuration).
    pub fn totals_only(self) -> Self {
        self.metrics(MetricsConfig::totals_only())
    }

    /// Enables the trajectory series with checkpoint spacing `factor` on
    /// top of the current metrics configuration.
    pub fn series(mut self, factor: f64) -> Self {
        self.metrics = self.metrics.with_series(factor);
        self
    }

    /// The [`SimConfig`] this scenario resolves to.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.seed)
            .limits(self.limits)
            .metrics(self.metrics)
    }
}

impl<A, J> Scenario<A, J>
where
    A: ArrivalProcess + Clone,
    J: Jammer + Clone,
{
    /// A copy of the scenario with a different seed — the Monte Carlo
    /// idiom: `(0..seeds).map(|s| scenario.seeded(s).run_sparse(..))`.
    pub fn seeded(&self, seed: u64) -> Self {
        self.clone().seed(seed)
    }

    /// Runs the scenario on the [dense engine](crate::engine::dense).
    pub fn run_dense<P, F>(&self, factory: F) -> RunResult
    where
        P: Protocol,
        F: FnMut(&mut SimRng) -> P,
    {
        self.run_dense_hooked(factory, &mut NoHooks)
    }

    /// [`Scenario::run_dense`] with analysis hooks attached.
    ///
    /// The channel model is dispatched **once here** (as in every run
    /// method), outside the slot loop, to the matching monomorphized
    /// engine body.
    pub fn run_dense_hooked<P, F, H>(&self, factory: F, hooks: &mut H) -> RunResult
    where
        P: Protocol,
        F: FnMut(&mut SimRng) -> P,
        H: Hooks<P>,
    {
        let (cfg, a, j) = (
            self.sim_config(),
            self.arrivals.clone(),
            self.jammer.clone(),
        );
        match self.model {
            ChannelModel::Ternary => run_dense(&cfg, a, j, factory, hooks),
            ChannelModel::NoCollisionDetection => {
                run_dense_model(&cfg, a, j, NoCollisionDetection, factory, hooks)
            }
            ChannelModel::CostlyCollisions { alpha } => {
                run_dense_model(&cfg, a, j, CostlyCollisions::new(alpha), factory, hooks)
            }
        }
    }

    /// Runs the scenario on the [sparse engine](crate::engine::sparse).
    pub fn run_sparse<P, F>(&self, factory: F) -> RunResult
    where
        P: SparseProtocol,
        F: FnMut(&mut SimRng) -> P,
    {
        self.run_sparse_hooked(factory, &mut NoHooks)
    }

    /// [`Scenario::run_sparse`] with analysis hooks attached.
    pub fn run_sparse_hooked<P, F, H>(&self, factory: F, hooks: &mut H) -> RunResult
    where
        P: SparseProtocol,
        F: FnMut(&mut SimRng) -> P,
        H: Hooks<P>,
    {
        let (cfg, a, j) = (
            self.sim_config(),
            self.arrivals.clone(),
            self.jammer.clone(),
        );
        match self.model {
            ChannelModel::Ternary => run_sparse(&cfg, a, j, factory, hooks),
            ChannelModel::NoCollisionDetection => {
                run_sparse_model(&cfg, a, j, NoCollisionDetection, factory, hooks)
            }
            ChannelModel::CostlyCollisions { alpha } => {
                run_sparse_model(&cfg, a, j, CostlyCollisions::new(alpha), factory, hooks)
            }
        }
    }

    /// Runs the scenario on the sparse loop over the retained flat
    /// calendar ring ([`run_sparse_flat`]) — the second oracle of the
    /// three-way equivalence suite (hierarchical wheel vs flat ring vs
    /// heap reference). Intended for validation only.
    pub fn run_sparse_flat<P, F>(&self, factory: F) -> RunResult
    where
        P: SparseProtocol,
        F: FnMut(&mut SimRng) -> P,
    {
        let (cfg, a, j) = (
            self.sim_config(),
            self.arrivals.clone(),
            self.jammer.clone(),
        );
        match self.model {
            ChannelModel::Ternary => run_sparse_flat(&cfg, a, j, factory, &mut NoHooks),
            ChannelModel::NoCollisionDetection => {
                run_sparse_flat_model(&cfg, a, j, NoCollisionDetection, factory, &mut NoHooks)
            }
            ChannelModel::CostlyCollisions { alpha } => run_sparse_flat_model(
                &cfg,
                a,
                j,
                CostlyCollisions::new(alpha),
                factory,
                &mut NoHooks,
            ),
        }
    }

    /// Runs the scenario on the retained heap-based sparse loop
    /// ([`run_sparse_reference`]) — the equivalence oracle for
    /// [`Scenario::run_sparse`]. Slower; intended for validation only.
    pub fn run_sparse_reference<P, F>(&self, factory: F) -> RunResult
    where
        P: SparseProtocol,
        F: FnMut(&mut SimRng) -> P,
    {
        let (cfg, a, j) = (
            self.sim_config(),
            self.arrivals.clone(),
            self.jammer.clone(),
        );
        match self.model {
            ChannelModel::Ternary => run_sparse_reference(&cfg, a, j, factory, &mut NoHooks),
            ChannelModel::NoCollisionDetection => {
                run_sparse_reference_model(&cfg, a, j, NoCollisionDetection, factory, &mut NoHooks)
            }
            ChannelModel::CostlyCollisions { alpha } => run_sparse_reference_model(
                &cfg,
                a,
                j,
                CostlyCollisions::new(alpha),
                factory,
                &mut NoHooks,
            ),
        }
    }

    /// Runs the scenario on the [grouped engine](crate::engine::grouped).
    pub fn run_grouped<P, F>(&self, factory: F) -> RunResult
    where
        P: SymmetricProtocol,
        F: FnMut(&mut SimRng) -> P,
    {
        let (cfg, a, j) = (
            self.sim_config(),
            self.arrivals.clone(),
            self.jammer.clone(),
        );
        match self.model {
            ChannelModel::Ternary => run_grouped(&cfg, a, j, factory),
            ChannelModel::NoCollisionDetection => {
                run_grouped_model(&cfg, a, j, NoCollisionDetection, factory)
            }
            ChannelModel::CostlyCollisions { alpha } => {
                run_grouped_model(&cfg, a, j, CostlyCollisions::new(alpha), factory)
            }
        }
    }
}

impl<A, J> Scenario<A, J>
where
    A: ArrivalProcess + Clone + Send + Sync + 'static,
    J: Jammer + Clone + Send + Sync + 'static,
{
    /// Erases the arrival/jammer types so scenarios with different
    /// adversaries can live in one collection (see [`DynScenario`]).
    ///
    /// The erased scenario stays `Send + Sync`, so campaign sweeps can
    /// share one description across shard threads.
    pub fn boxed(self) -> DynScenario {
        Scenario {
            name: self.name,
            seed: self.seed,
            arrivals: BoxedArrivals(Box::new(self.arrivals)),
            jammer: BoxedJammer(Box::new(self.jammer)),
            limits: self.limits,
            metrics: self.metrics,
            model: self.model,
        }
    }
}

/// A [`Scenario`] with type-erased arrivals and jammer, so heterogeneous
/// scenario sets (the [`scenarios::registry`]) can be iterated uniformly.
pub type DynScenario = Scenario<BoxedArrivals, BoxedJammer>;

trait AnyArrivals: ArrivalProcess + Send + Sync {
    fn clone_box(&self) -> Box<dyn AnyArrivals>;
}

impl<T: ArrivalProcess + Clone + Send + Sync + 'static> AnyArrivals for T {
    fn clone_box(&self) -> Box<dyn AnyArrivals> {
        Box::new(self.clone())
    }
}

/// Type-erased, cloneable arrival process.
pub struct BoxedArrivals(Box<dyn AnyArrivals>);

impl Clone for BoxedArrivals {
    fn clone(&self) -> Self {
        BoxedArrivals(self.0.clone_box())
    }
}

impl fmt::Debug for BoxedArrivals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedArrivals(..)")
    }
}

impl ArrivalProcess for BoxedArrivals {
    fn next_arrival(
        &mut self,
        after: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        self.0.next_arrival(after, view, rng)
    }

    fn is_adaptive(&self) -> bool {
        self.0.is_adaptive()
    }

    fn total_hint(&self) -> Option<u64> {
        self.0.total_hint()
    }
}

trait AnyJammer: Jammer + Send + Sync {
    fn clone_box(&self) -> Box<dyn AnyJammer>;
}

impl<T: Jammer + Clone + Send + Sync + 'static> AnyJammer for T {
    fn clone_box(&self) -> Box<dyn AnyJammer> {
        Box::new(self.clone())
    }
}

/// Type-erased, cloneable jammer.
pub struct BoxedJammer(Box<dyn AnyJammer>);

impl Clone for BoxedJammer {
    fn clone(&self) -> Self {
        BoxedJammer(self.0.clone_box())
    }
}

impl fmt::Debug for BoxedJammer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedJammer(..)")
    }
}

impl Jammer for BoxedJammer {
    fn jams(&mut self, t: Slot, view: &SystemView<'_>, rng: &mut SimRng) -> bool {
        self.0.jams(t, view, rng)
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> u64 {
        self.0.count_range(from, to, view, rng)
    }

    fn reactive_jams(
        &mut self,
        t: Slot,
        senders: &[PacketId],
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> bool {
        self.0.reactive_jams(t, senders, view, rng)
    }

    fn is_reactive(&self) -> bool {
        self.0.is_reactive()
    }
}

/// The registry of canonical scenarios.
///
/// Each constructor returns a fully typed [`Scenario`] that callers may
/// specialize further with the builder methods; [`scenarios::registry`]
/// returns one
/// bounded, type-erased instance of each for uniform sweeps (smoke tests,
/// cross-engine equivalence, perf baselines).
pub mod scenarios {
    use super::{ChannelModel, DynScenario, Scenario};
    use crate::arrivals::{
        AdversarialQueuing, BacklogTriggered, Batch, Bernoulli, Placement, PoissonArrivals,
    };
    use crate::jamming::{NoJam, PeriodicBurst, RandomJam, ReactiveAny, WindowPrefixJam};

    /// `n` packets in one slot, clean channel — the classical batch/static
    /// instance (Corollary 1.4's workload).
    pub fn batch_drain(n: u64) -> Scenario<Batch, NoJam> {
        Scenario::named(format!("batch-drain(n={n})")).arrivals(Batch::new(n))
    }

    /// Batch of `n` under random jamming at rate `rho` (Corollary 1.4 with
    /// the jam credit).
    pub fn random_jam_batch(n: u64, rho: f64) -> Scenario<Batch, RandomJam> {
        Scenario::named(format!("random-jam-batch(n={n},rho={rho})"))
            .arrivals(Batch::new(n))
            .jammer(RandomJam::new(rho))
    }

    /// Batch of `n` under deterministic bursty jamming: the first
    /// `burst_len` slots of every `period`-slot cycle are destroyed.
    pub fn burst_jam_batch(n: u64, period: u64, burst_len: u64) -> Scenario<Batch, PeriodicBurst> {
        Scenario::named(format!("burst-jam-batch(n={n},{burst_len}/{period})"))
            .arrivals(Batch::new(n))
            .jammer(PeriodicBurst::new(period, burst_len, 0))
    }

    /// Batch of `n` under reactive denial-of-service: the first `budget`
    /// transmission slots are jammed (§1.3).
    pub fn reactive_dos_batch(n: u64, budget: u64) -> Scenario<Batch, ReactiveAny> {
        Scenario::named(format!("reactive-dos-batch(n={n},budget={budget})"))
            .arrivals(Batch::new(n))
            .jammer(ReactiveAny::new(budget))
    }

    /// Poisson stream: mean `rate` packets per slot, `total` packets in
    /// all, clean channel.
    pub fn poisson_stream(rate: f64, total: u64) -> Scenario<PoissonArrivals, NoJam> {
        Scenario::named(format!("poisson-stream(rate={rate},total={total})"))
            .arrivals(PoissonArrivals::new(rate).with_total(total))
    }

    /// Bernoulli stream: one packet per slot with probability `rate`,
    /// `total` packets in all, clean channel.
    pub fn bernoulli_stream(rate: f64, total: u64) -> Scenario<Bernoulli, NoJam> {
        Scenario::named(format!("bernoulli-stream(rate={rate},total={total})"))
            .arrivals(Bernoulli::new(rate).with_total(total))
    }

    /// Adversarial-queuing arrivals (Corollary 1.5): at most
    /// `lambda · granularity` packets per window, placed adversarially.
    /// Unbounded — pair with [`Scenario::until_slot`] or an arrival total.
    pub fn adversarial_queuing(
        lambda: f64,
        granularity: u64,
        placement: Placement,
    ) -> Scenario<AdversarialQueuing, NoJam> {
        Scenario::named(format!(
            "adversarial-queuing(lambda={lambda},S={granularity},{placement:?})"
        ))
        .arrivals(AdversarialQueuing::new(lambda, granularity, placement))
    }

    /// [`adversarial_queuing`] bounded to `total` packets.
    pub fn adversarial_queuing_total(
        lambda: f64,
        granularity: u64,
        placement: Placement,
        total: u64,
    ) -> Scenario<AdversarialQueuing, NoJam> {
        Scenario::named(format!(
            "adversarial-queuing(lambda={lambda},S={granularity},{placement:?},total={total})"
        ))
        .arrivals(AdversarialQueuing::new(lambda, granularity, placement).with_total(total))
    }

    /// Adversarial queuing with the matching window-prefix jammer — the
    /// joint arrival+jam budget of Corollary 1.5. Unbounded; pair with
    /// [`Scenario::until_slot`].
    pub fn queuing_jammed(
        lambda_arrivals: f64,
        lambda_jam: f64,
        granularity: u64,
    ) -> Scenario<AdversarialQueuing, WindowPrefixJam> {
        Scenario::named(format!(
            "queuing-jammed(arr={lambda_arrivals},jam={lambda_jam},S={granularity})"
        ))
        .arrivals(AdversarialQueuing::new(
            lambda_arrivals,
            granularity,
            Placement::Front,
        ))
        .jammer(WindowPrefixJam::new(lambda_jam, granularity))
    }

    /// Adaptive saturation: a burst of `burst` packets lands whenever the
    /// system drains, until `total` packets have been injected — keeps the
    /// system permanently busy.
    pub fn saturated(burst: u32, total: u64) -> Scenario<BacklogTriggered, NoJam> {
        Scenario::named(format!("saturated(burst={burst},total={total})"))
            .arrivals(BacklogTriggered::new(burst, total))
    }

    /// The mixed-protocol face-off workload: a clean batch of `n` with
    /// per-packet metrics, meant to be run once per contending protocol
    /// (LSB vs. BEB vs. CJP vs. …) on the same seed for paired comparisons.
    pub fn protocol_faceoff(n: u64) -> Scenario<Batch, NoJam> {
        Scenario::named(format!("protocol-faceoff(n={n})")).arrivals(Batch::new(n))
    }

    /// Batch of `n` on the no-collision-detection channel (Jiang–Zheng,
    /// arXiv:2111.06650): listeners cannot tell collisions from silence.
    pub fn nocd_batch(n: u64) -> Scenario<Batch, NoJam> {
        Scenario::named(format!("nocd-batch(n={n})"))
            .arrivals(Batch::new(n))
            .model(ChannelModel::NoCollisionDetection)
    }

    /// The staging-coverage workload: a batch of `n` with a hard horizon
    /// cap, meant to be run with a *small-window* protocol factory (e.g.
    /// `LowSensing::with_window(params, 64.0)`) so early slots carry
    /// thousand-packet participant sets. With `n` large enough that the
    /// state lane spills past the staged gather/scatter gate (see
    /// [`staging_applies`](crate::engine::stage::staging_applies)), the
    /// sparse engines run the address-sorted staged path while the heap
    /// reference runs its unstaged per-element loop — the scenario the
    /// three-way equivalence suite uses to pin the two paths against each
    /// other. Not part of [`registry`]: at staging-relevant sizes it is too
    /// heavy for the registry's every-protocol sweeps.
    pub fn high_fanout_batch(n: u64, horizon: u64) -> Scenario<Batch, NoJam> {
        Scenario::named(format!("high-fanout-batch(n={n},horizon={horizon})"))
            .arrivals(Batch::new(n))
            .until_slot(horizon)
    }

    /// Jammed batch of `n` on the costly-collisions channel
    /// (Anderton–Young, arXiv:1705.09271): a `k`-way collision occupies
    /// `1 + ceil(alpha·k)` physical slots.
    pub fn costly_jam_batch(n: u64, alpha: f64, rho: f64) -> Scenario<Batch, RandomJam> {
        Scenario::named(format!("costly-jam-batch(n={n},alpha={alpha},rho={rho})"))
            .arrivals(Batch::new(n))
            .jammer(RandomJam::new(rho))
            .model(ChannelModel::CostlyCollisions { alpha })
    }

    /// One bounded, type-erased instance of every canonical scenario,
    /// scaled to roughly `n` packets. The order is stable; names identify
    /// the entries.
    pub fn registry(n: u64) -> Vec<DynScenario> {
        let n = n.max(4);
        let granularity = 128;
        vec![
            batch_drain(n).boxed(),
            random_jam_batch(n, 0.2).boxed(),
            burst_jam_batch(n, 16, 4).boxed(),
            reactive_dos_batch(n, n / 4).boxed(),
            poisson_stream(0.05, n).boxed(),
            bernoulli_stream(0.02, n).boxed(),
            adversarial_queuing(0.1, granularity, Placement::Front)
                .until_slot(granularity * 100)
                .boxed(),
            queuing_jammed(0.08, 0.05, granularity)
                .until_slot(granularity * 100)
                .boxed(),
            saturated(32, n).boxed(),
            protocol_faceoff(n).boxed(),
            // Model-variant entries are appended so the indices (and pinned
            // per-name recordings) of the original ten stay stable. The
            // no-CD entry is horizon-capped: a full-sensing protocol that
            // reads collisions as silence can keep escalating forever, and
            // the registry promises bounded runs for *any* protocol.
            nocd_batch(n).until_slot(n.saturating_mul(200)).boxed(),
            costly_jam_batch(n, 0.5, 0.1).boxed(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::scenarios;
    use super::*;
    use crate::arrivals::{Batch, Trace};
    use crate::dist::geometric;
    use crate::feedback::{Intent, Observation};
    use crate::jamming::RandomJam;

    /// Memoryless p-sender used to exercise the scenario layer.
    #[derive(Clone)]
    struct Fixed(f64);

    impl Protocol for Fixed {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(self.0) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            self.0
        }
        fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
            Some(geometric(rng, self.0))
        }
    }

    impl SparseProtocol for Fixed {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            true
        }
    }

    impl SymmetricProtocol for Fixed {
        fn send_probability(&self) -> f64 {
            self.0
        }
        fn on_feedback(&mut self, _fb: crate::feedback::Feedback) {}
    }

    #[test]
    fn builder_composes_config() {
        let s = Scenario::named("cfg")
            .arrivals(Batch::new(3))
            .jammer(RandomJam::new(0.1))
            .seed(9)
            .until_slot(100)
            .totals_only();
        assert_eq!(s.name(), "cfg");
        let cfg = s.sim_config();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.limits.max_slot, 100);
        assert!(!cfg.metrics.per_packet);
    }

    #[test]
    fn scenario_is_reusable_across_runs_and_engines() {
        let s = scenarios::batch_drain(16).seed(1);
        let a = s.run_sparse(|_| Fixed(0.05));
        let b = s.run_sparse(|_| Fixed(0.05));
        assert_eq!(a.totals, b.totals, "same description, same run");
        let dense = s.run_dense(|_| Fixed(0.05));
        assert_eq!(dense.totals.successes, 16);
        let grouped = s.run_grouped(|_| Fixed(0.05));
        assert_eq!(grouped.totals.successes, 16);
    }

    #[test]
    fn seeded_varies_only_the_seed() {
        let s = scenarios::batch_drain(8);
        let a = s.seeded(1).run_sparse(|_| Fixed(0.1));
        let b = s.seeded(2).run_sparse(|_| Fixed(0.1));
        assert_eq!(a.seed, 1);
        assert_eq!(b.seed, 2);
        assert_eq!(a.totals.successes, b.totals.successes);
    }

    #[test]
    fn boxed_scenario_runs_like_the_typed_one() {
        let typed = scenarios::random_jam_batch(12, 0.15).seed(5);
        let erased = typed.clone().boxed();
        let a = typed.run_sparse(|_| Fixed(0.08));
        let b = erased.run_sparse(|_| Fixed(0.08));
        assert_eq!(a.totals, b.totals, "type erasure must not change the run");
    }

    #[test]
    fn series_shorthand_records_trajectory() {
        let r = scenarios::batch_drain(50)
            .series(1.5)
            .run_sparse(|_| Fixed(0.05));
        assert!(!r.series.is_empty());
    }

    #[test]
    fn registry_names_are_unique_and_runs_complete() {
        let reg = scenarios::registry(16);
        let mut names: Vec<String> = reg.iter().map(|s| s.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
        for s in &reg {
            let r = s.seeded(3).run_sparse(|_| Fixed(0.05));
            let t = &r.totals;
            assert!(t.successes <= t.arrivals, "{}", s.name());
            assert_eq!(
                t.active_slots,
                t.empty_active + t.successes + t.collision_slots + t.jammed_active,
                "{}: slot classes must partition active slots",
                s.name()
            );
        }
    }

    #[test]
    fn hooked_runs_observe_the_run() {
        #[derive(Default)]
        struct CountSlots(u64, u64);
        impl Hooks<Fixed> for CountSlots {
            fn on_slot(&mut self, _t: Slot, _o: &crate::feedback::SlotOutcome) {
                self.0 += 1;
            }
            fn on_gap(&mut self, from: Slot, to: Slot, _jammed: u64) {
                self.1 += to - from;
            }
        }
        let mut hooks = CountSlots::default();
        let r = scenarios::batch_drain(8)
            .seed(2)
            .run_sparse_hooked(|_| Fixed(0.02), &mut hooks);
        assert_eq!(hooks.0 + hooks.1, r.totals.active_slots);
    }

    #[test]
    fn zero_packet_batch_is_a_clean_noop_on_every_engine() {
        // A Batch of 0 exhausts immediately: no arrivals, no active slots,
        // throughput defined as 1 (0/0 convention), on all four engines.
        let s = scenarios::batch_drain(0).seed(3);
        for r in [
            s.run_sparse(|_| Fixed(0.1)),
            s.run_sparse_reference(|_| Fixed(0.1)),
            s.run_dense(|_| Fixed(0.1)),
            s.run_grouped(|_| Fixed(0.1)),
        ] {
            assert_eq!(r.totals.arrivals, 0);
            assert_eq!(r.totals.active_slots, 0);
            assert_eq!(r.totals.last_slot, 0);
            assert!(r.drained());
            assert_eq!(r.totals.throughput(), 1.0);
            assert_eq!(r.access_counts(), Vec::<u64>::new());
        }
    }

    #[test]
    fn totals_only_metrics_equal_full_metrics_totals() {
        // Disabling per-packet recording must not change the execution —
        // only what is recorded. Totals agree exactly per engine.
        let full = scenarios::random_jam_batch(32, 0.1).seed(6);
        let cheap = full.clone().totals_only();
        let a = full.run_sparse(|_| Fixed(0.07));
        let b = cheap.run_sparse(|_| Fixed(0.07));
        assert_eq!(a.totals, b.totals);
        assert!(a.per_packet.is_some() && b.per_packet.is_none());
        let c = full.run_dense(|_| Fixed(0.07));
        let d = cheap.run_dense(|_| Fixed(0.07));
        assert_eq!(c.totals, d.totals);
        let e = full.run_grouped(|_| Fixed(0.07));
        let f = cheap.run_grouped(|_| Fixed(0.07));
        assert_eq!(e.totals, f.totals);
    }

    #[test]
    fn seed_determinism_holds_across_all_engines() {
        // Same seed ⇒ identical run, per engine; different seed ⇒ a
        // different execution (for a workload long enough to mix).
        let s = scenarios::random_jam_batch(24, 0.15);
        let runs = |seed: u64| {
            (
                s.seeded(seed).run_sparse(|_| Fixed(0.05)).totals,
                s.seeded(seed).run_sparse_reference(|_| Fixed(0.05)).totals,
                s.seeded(seed).run_dense(|_| Fixed(0.05)).totals,
                s.seeded(seed).run_grouped(|_| Fixed(0.05)).totals,
            )
        };
        assert_eq!(runs(9), runs(9), "same seed must replay identically");
        let (a, _, c, d) = runs(9);
        let (a2, _, c2, d2) = runs(10);
        assert!(
            a != a2 || c != c2 || d != d2,
            "different seeds should not all coincide"
        );
    }

    #[test]
    fn arrivals_replacement_keeps_other_settings() {
        let s = scenarios::batch_drain(4)
            .seed(11)
            .totals_only()
            .arrivals(Trace::new(vec![(0, 2), (10, 2)]));
        let r = s.run_sparse(|_| Fixed(0.2));
        assert_eq!(r.seed, 11);
        assert_eq!(r.totals.arrivals, 4);
        assert!(r.per_packet.is_none());
    }
}
