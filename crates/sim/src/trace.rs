//! Event tracing: a bounded in-memory log of everything that happened.
//!
//! [`EventLog`] is a [`Hooks`] implementation that records injections,
//! observations, slot outcomes, gaps, and departures — capped at a
//! configurable length so long runs cannot exhaust memory. Logged
//! [`PacketId`]s are original injection-order ids, stable for the whole
//! run: the sparse engine's internal table compaction never shows through
//! (see [`PacketTable`](crate::engine::table::PacketTable)). It is the
//! debugging companion for protocol implementations: run a small instance,
//! dump the log, and read the execution slot by slot.
//!
//! ```
//! use lowsense_sim::prelude::*;
//! use lowsense_sim::trace::{Event, EventLog};
//! use lowsense_sim::dist::geometric;
//!
//! #[derive(Clone)]
//! struct Fixed(f64);
//! impl Protocol for Fixed {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(geometric(rng, self.0))
//!     }
//! }
//! impl SparseProtocol for Fixed {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! let mut log = EventLog::new(1024);
//! let _ = run_sparse(&SimConfig::new(1), Batch::new(2), NoJam, |_| Fixed(0.2), &mut log);
//! assert!(log.events().any(|e| matches!(e, Event::Depart { .. })));
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::feedback::SlotOutcome;
use crate::hooks::Hooks;
use crate::packet::PacketId;
use crate::time::Slot;

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A packet entered the system.
    Inject {
        /// Slot of injection.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A packet left the system (successful transmission).
    Depart {
        /// Slot of success.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A packet observed a slot it accessed.
    Observe {
        /// The observed slot.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A slot resolved with the given outcome.
    Slot {
        /// The slot.
        slot: Slot,
        /// Its resolution.
        outcome: SlotOutcome,
    },
    /// The engine skipped a silent range `[from, to)`.
    Gap {
        /// First skipped slot.
        from: Slot,
        /// One past the last skipped slot.
        to: Slot,
        /// Jammed slots inside the range.
        jammed: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Inject { slot, id } => write!(f, "[{slot}] inject {id}"),
            Event::Depart { slot, id } => write!(f, "[{slot}] depart {id}"),
            Event::Observe { slot, id } => write!(f, "[{slot}] observe {id}"),
            Event::Slot { slot, outcome } => write!(f, "[{slot}] {outcome:?}"),
            Event::Gap { from, to, jammed } => {
                write!(f, "[{from}..{to}) silent gap ({jammed} jammed)")
            }
        }
    }
}

/// A bounded event log; oldest events are evicted once `capacity` is
/// reached.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        EventLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, e: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained tail as one line per event.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} earlier events dropped …", self.dropped);
        }
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Serializes the log as JSON Lines: a header record carrying the
    /// schema tag, the capacity, and the `dropped` count, followed by one
    /// record per retained event (oldest first). The exact inverse of
    /// [`EventLog::from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{}\",\"capacity\":{},\"dropped\":{},\"events\":{}}}",
            TRACE_SCHEMA,
            self.capacity,
            self.dropped,
            self.events.len()
        );
        for e in &self.events {
            match e {
                Event::Inject { slot, id } => {
                    let _ = writeln!(out, "{{\"ev\":\"inject\",\"slot\":{slot},\"id\":{}}}", id.0);
                }
                Event::Depart { slot, id } => {
                    let _ = writeln!(out, "{{\"ev\":\"depart\",\"slot\":{slot},\"id\":{}}}", id.0);
                }
                Event::Observe { slot, id } => {
                    let _ = writeln!(
                        out,
                        "{{\"ev\":\"observe\",\"slot\":{slot},\"id\":{}}}",
                        id.0
                    );
                }
                Event::Slot { slot, outcome } => {
                    let _ = match outcome {
                        SlotOutcome::Empty => writeln!(
                            out,
                            "{{\"ev\":\"slot\",\"slot\":{slot},\"outcome\":\"empty\"}}"
                        ),
                        SlotOutcome::Success { id } => writeln!(
                            out,
                            "{{\"ev\":\"slot\",\"slot\":{slot},\"outcome\":\"success\",\"id\":{}}}",
                            id.0
                        ),
                        SlotOutcome::Collision { senders } => writeln!(
                            out,
                            "{{\"ev\":\"slot\",\"slot\":{slot},\"outcome\":\"collision\",\"senders\":{senders}}}"
                        ),
                        SlotOutcome::Jammed { senders } => writeln!(
                            out,
                            "{{\"ev\":\"slot\",\"slot\":{slot},\"outcome\":\"jammed\",\"senders\":{senders}}}"
                        ),
                    };
                }
                Event::Gap { from, to, jammed } => {
                    let _ = writeln!(
                        out,
                        "{{\"ev\":\"gap\",\"from\":{from},\"to\":{to},\"jammed\":{jammed}}}"
                    );
                }
            }
        }
        out
    }

    /// Reconstructs a log from [`EventLog::to_jsonl`] output.
    ///
    /// Returns an error naming the offending line for an unknown schema,
    /// a malformed record, or an event count that disagrees with the
    /// header. Round-trips exactly: capacity, dropped count, and the
    /// retained event sequence all survive.
    pub fn from_jsonl(text: &str) -> Result<EventLog, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty trace: missing header")?;
        if json_str(header, "schema").as_deref() != Some(TRACE_SCHEMA) {
            return Err(format!("unknown trace schema in header: {header}"));
        }
        let capacity = json_u64(header, "capacity")
            .ok_or_else(|| format!("header missing capacity: {header}"))?
            as usize;
        let dropped = json_u64(header, "dropped")
            .ok_or_else(|| format!("header missing dropped: {header}"))?;
        let declared =
            json_u64(header, "events").ok_or_else(|| format!("header missing events: {header}"))?;
        let mut log = EventLog::new(capacity.max(1));
        let mut events = VecDeque::new();
        for line in lines {
            let bad = || format!("malformed trace record: {line}");
            let ev = json_str(line, "ev").ok_or_else(bad)?;
            let e = match ev.as_str() {
                "inject" | "depart" | "observe" => {
                    let slot = json_u64(line, "slot").ok_or_else(bad)?;
                    let id = PacketId(json_u64(line, "id").ok_or_else(bad)? as u32);
                    match ev.as_str() {
                        "inject" => Event::Inject { slot, id },
                        "depart" => Event::Depart { slot, id },
                        _ => Event::Observe { slot, id },
                    }
                }
                "slot" => {
                    let slot = json_u64(line, "slot").ok_or_else(bad)?;
                    let outcome = match json_str(line, "outcome").ok_or_else(bad)?.as_str() {
                        "empty" => SlotOutcome::Empty,
                        "success" => SlotOutcome::Success {
                            id: PacketId(json_u64(line, "id").ok_or_else(bad)? as u32),
                        },
                        "collision" => SlotOutcome::Collision {
                            senders: json_u64(line, "senders").ok_or_else(bad)? as u32,
                        },
                        "jammed" => SlotOutcome::Jammed {
                            senders: json_u64(line, "senders").ok_or_else(bad)? as u32,
                        },
                        _ => return Err(bad()),
                    };
                    Event::Slot { slot, outcome }
                }
                "gap" => Event::Gap {
                    from: json_u64(line, "from").ok_or_else(bad)?,
                    to: json_u64(line, "to").ok_or_else(bad)?,
                    jammed: json_u64(line, "jammed").ok_or_else(bad)?,
                },
                _ => return Err(bad()),
            };
            events.push_back(e);
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "header declares {declared} events, found {}",
                events.len()
            ));
        }
        log.events = events;
        log.dropped = dropped;
        Ok(log)
    }
}

/// Schema tag stamped on the [`EventLog::to_jsonl`] header record.
pub const TRACE_SCHEMA: &str = "lowsense-trace/1";

/// Extracts the unsigned-integer value of `"key":<digits>` from a flat
/// one-line JSON record (the only shape this module emits).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"…"` from a flat one-line JSON
/// record. Values never contain escapes in this module's schema.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

impl<P> Hooks<P> for EventLog {
    fn on_inject(&mut self, t: Slot, id: PacketId, _state: &P) {
        self.push(Event::Inject { slot: t, id });
    }

    fn on_depart(&mut self, t: Slot, id: PacketId, _state: &P) {
        self.push(Event::Depart { slot: t, id });
    }

    fn on_observe(&mut self, t: Slot, id: PacketId, _before: &P, _after: &P) {
        self.push(Event::Observe { slot: t, id });
    }

    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.push(Event::Slot {
            slot: t,
            outcome: *outcome,
        });
    }

    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.push(Event::Gap { from, to, jammed });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks(log: &mut EventLog) -> &mut dyn Hooks<u8> {
        log
    }

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(16);
        hooks(&mut log).on_inject(0, PacketId(0), &0);
        hooks(&mut log).on_slot(0, &SlotOutcome::Empty);
        hooks(&mut log).on_gap(1, 5, 2);
        hooks(&mut log).on_observe(5, PacketId(0), &0, &1);
        hooks(&mut log).on_depart(5, PacketId(0), &1);
        let events: Vec<&Event> = log.events().collect();
        assert_eq!(events.len(), 5);
        assert!(matches!(events[0], Event::Inject { slot: 0, .. }));
        assert!(matches!(events[4], Event::Depart { slot: 5, .. }));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = EventLog::new(3);
        for t in 0..5 {
            hooks(&mut log).on_slot(t, &SlotOutcome::Empty);
        }
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.dropped(), 2);
        // Oldest retained event is slot 2.
        assert!(matches!(
            log.events().next(),
            Some(Event::Slot { slot: 2, .. })
        ));
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut log = EventLog::new(2);
        for t in 0..3 {
            hooks(&mut log).on_slot(t, &SlotOutcome::Empty);
        }
        let dump = log.dump();
        assert!(dump.starts_with("… 1 earlier events dropped …"));
        assert_eq!(dump.lines().count(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Event::Inject {
                slot: 3,
                id: PacketId(1)
            }
            .to_string(),
            "[3] inject pkt#1"
        );
        assert_eq!(
            Event::Gap {
                from: 2,
                to: 9,
                jammed: 1
            }
            .to_string(),
            "[2..9) silent gap (1 jammed)"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }

    #[test]
    fn jsonl_round_trips_with_dropped_header() {
        let mut log = EventLog::new(4);
        hooks(&mut log).on_inject(0, PacketId(0), &0);
        hooks(&mut log).on_slot(0, &SlotOutcome::Collision { senders: 2 });
        hooks(&mut log).on_gap(1, 9, 3);
        hooks(&mut log).on_slot(9, &SlotOutcome::Success { id: PacketId(0) });
        hooks(&mut log).on_observe(9, PacketId(0), &0, &1);
        hooks(&mut log).on_depart(9, PacketId(0), &1);
        assert_eq!(log.dropped(), 2, "capacity 4 evicted the oldest two");

        let text = log.to_jsonl();
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"schema\":\"lowsense-trace/1\""));
        assert!(header.contains("\"dropped\":2"));
        assert_eq!(text.lines().count(), 1 + 4, "header + retained events");

        let back = EventLog::from_jsonl(&text).unwrap();
        assert_eq!(back.dropped(), log.dropped());
        assert_eq!(
            back.events().collect::<Vec<_>>(),
            log.events().collect::<Vec<_>>()
        );
        // A second trip is byte-stable.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_covers_every_outcome_variant() {
        let mut log = EventLog::new(8);
        hooks(&mut log).on_slot(0, &SlotOutcome::Empty);
        hooks(&mut log).on_slot(1, &SlotOutcome::Success { id: PacketId(7) });
        hooks(&mut log).on_slot(2, &SlotOutcome::Collision { senders: 5 });
        hooks(&mut log).on_slot(3, &SlotOutcome::Jammed { senders: 1 });
        let back = EventLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(
            back.events().collect::<Vec<_>>(),
            log.events().collect::<Vec<_>>()
        );
    }

    #[test]
    fn jsonl_rejects_malformed_input() {
        assert!(EventLog::from_jsonl("").is_err());
        assert!(EventLog::from_jsonl("{\"schema\":\"bogus/9\"}").is_err());
        let missing =
            "{\"schema\":\"lowsense-trace/1\",\"capacity\":4,\"dropped\":0,\"events\":1}\n\
                       {\"ev\":\"slot\",\"slot\":0}";
        assert!(EventLog::from_jsonl(missing).is_err(), "outcome missing");
        let miscount =
            "{\"schema\":\"lowsense-trace/1\",\"capacity\":4,\"dropped\":0,\"events\":2}\n\
                        {\"ev\":\"gap\",\"from\":0,\"to\":5,\"jammed\":0}";
        assert!(EventLog::from_jsonl(miscount).is_err(), "count mismatch");
    }
}
