//! Event tracing: a bounded in-memory log of everything that happened.
//!
//! [`EventLog`] is a [`Hooks`] implementation that records injections,
//! observations, slot outcomes, gaps, and departures — capped at a
//! configurable length so long runs cannot exhaust memory. Logged
//! [`PacketId`]s are original injection-order ids, stable for the whole
//! run: the sparse engine's internal table compaction never shows through
//! (see [`PacketTable`](crate::engine::table::PacketTable)). It is the
//! debugging companion for protocol implementations: run a small instance,
//! dump the log, and read the execution slot by slot.
//!
//! ```
//! use lowsense_sim::prelude::*;
//! use lowsense_sim::trace::{Event, EventLog};
//! use lowsense_sim::dist::geometric;
//!
//! #[derive(Clone)]
//! struct Fixed(f64);
//! impl Protocol for Fixed {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(geometric(rng, self.0))
//!     }
//! }
//! impl SparseProtocol for Fixed {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! let mut log = EventLog::new(1024);
//! let _ = run_sparse(&SimConfig::new(1), Batch::new(2), NoJam, |_| Fixed(0.2), &mut log);
//! assert!(log.events().any(|e| matches!(e, Event::Depart { .. })));
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::feedback::SlotOutcome;
use crate::hooks::Hooks;
use crate::packet::PacketId;
use crate::time::Slot;

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A packet entered the system.
    Inject {
        /// Slot of injection.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A packet left the system (successful transmission).
    Depart {
        /// Slot of success.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A packet observed a slot it accessed.
    Observe {
        /// The observed slot.
        slot: Slot,
        /// The packet.
        id: PacketId,
    },
    /// A slot resolved with the given outcome.
    Slot {
        /// The slot.
        slot: Slot,
        /// Its resolution.
        outcome: SlotOutcome,
    },
    /// The engine skipped a silent range `[from, to)`.
    Gap {
        /// First skipped slot.
        from: Slot,
        /// One past the last skipped slot.
        to: Slot,
        /// Jammed slots inside the range.
        jammed: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Inject { slot, id } => write!(f, "[{slot}] inject {id}"),
            Event::Depart { slot, id } => write!(f, "[{slot}] depart {id}"),
            Event::Observe { slot, id } => write!(f, "[{slot}] observe {id}"),
            Event::Slot { slot, outcome } => write!(f, "[{slot}] {outcome:?}"),
            Event::Gap { from, to, jammed } => {
                write!(f, "[{from}..{to}) silent gap ({jammed} jammed)")
            }
        }
    }
}

/// A bounded event log; oldest events are evicted once `capacity` is
/// reached.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        EventLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, e: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained tail as one line per event.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} earlier events dropped …", self.dropped);
        }
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

impl<P> Hooks<P> for EventLog {
    fn on_inject(&mut self, t: Slot, id: PacketId, _state: &P) {
        self.push(Event::Inject { slot: t, id });
    }

    fn on_depart(&mut self, t: Slot, id: PacketId, _state: &P) {
        self.push(Event::Depart { slot: t, id });
    }

    fn on_observe(&mut self, t: Slot, id: PacketId, _before: &P, _after: &P) {
        self.push(Event::Observe { slot: t, id });
    }

    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.push(Event::Slot {
            slot: t,
            outcome: *outcome,
        });
    }

    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.push(Event::Gap { from, to, jammed });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks(log: &mut EventLog) -> &mut dyn Hooks<u8> {
        log
    }

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(16);
        hooks(&mut log).on_inject(0, PacketId(0), &0);
        hooks(&mut log).on_slot(0, &SlotOutcome::Empty);
        hooks(&mut log).on_gap(1, 5, 2);
        hooks(&mut log).on_observe(5, PacketId(0), &0, &1);
        hooks(&mut log).on_depart(5, PacketId(0), &1);
        let events: Vec<&Event> = log.events().collect();
        assert_eq!(events.len(), 5);
        assert!(matches!(events[0], Event::Inject { slot: 0, .. }));
        assert!(matches!(events[4], Event::Depart { slot: 5, .. }));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = EventLog::new(3);
        for t in 0..5 {
            hooks(&mut log).on_slot(t, &SlotOutcome::Empty);
        }
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.dropped(), 2);
        // Oldest retained event is slot 2.
        assert!(matches!(
            log.events().next(),
            Some(Event::Slot { slot: 2, .. })
        ));
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut log = EventLog::new(2);
        for t in 0..3 {
            hooks(&mut log).on_slot(t, &SlotOutcome::Empty);
        }
        let dump = log.dump();
        assert!(dump.starts_with("… 1 earlier events dropped …"));
        assert_eq!(dump.lines().count(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Event::Inject {
                slot: 3,
                id: PacketId(1)
            }
            .to_string(),
            "[3] inject pkt#1"
        );
        assert_eq!(
            Event::Gap {
                from: 2,
                to: 9,
                jammed: 1
            }
            .to_string(),
            "[2..9) silent gap (1 jammed)"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }
}
