//! Channel actions, feedback models, and slot outcomes (paper §1.1).
//!
//! The paper's channel is the *ternary full-sensing* model: a listener
//! hears empty / success / noise and cannot tell collision noise from
//! jamming noise. Related work studies the same protocols under different
//! channels, so the mapping from a resolved [`SlotOutcome`] to what each
//! station perceives is factored into a [`FeedbackModel`]: [`Ternary`]
//! (the paper, and the default), [`NoCollisionDetection`] (Jiang–Zheng,
//! arXiv:2111.06650), and [`CostlyCollisions`] (Anderton–Young,
//! arXiv:1705.09271). Engines are generic over the model and monomorphize;
//! [`ChannelModel`] is the runtime-selectable mirror used by scenarios and
//! campaign specs.

use crate::packet::PacketId;
use crate::time::Slot;

/// What a listening packet hears about a slot — the *ternary feedback model*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// (0) No packet transmitted and the slot was not jammed.
    Empty,
    /// (1) Exactly one packet transmitted in an unjammed slot.
    Success,
    /// (2+) Two or more packets transmitted, or the slot was jammed.
    ///
    /// A listener cannot distinguish collision noise from jamming noise.
    Noisy,
}

/// A packet's action in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Do not access the channel; learn nothing.
    Sleep,
    /// Listen only. Costs one channel access.
    Listen,
    /// Transmit. Costs one channel access; the sender learns the slot
    /// outcome implicitly (it either departs or observes noise).
    Send,
}

impl Intent {
    /// Whether this action touches the channel (send or listen).
    #[inline]
    pub fn accesses_channel(self) -> bool {
        !matches!(self, Intent::Sleep)
    }
}

/// Everything a packet learns about a slot it accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The slot observed.
    pub slot: Slot,
    /// Channel feedback for the slot, as filtered by the run's
    /// [`FeedbackModel`] (ternary under the paper's model).
    pub feedback: Feedback,
    /// Whether this packet transmitted in the slot.
    pub sent: bool,
    /// Whether this packet's transmission succeeded (implies `sent`).
    pub succeeded: bool,
}

impl Observation {
    /// Builds an observation, checking the `succeeded ⇒ sent` invariant.
    ///
    /// A feedback model that claims a station succeeded without having
    /// transmitted would hand protocols a contradictory world; the
    /// `debug_assert!` makes that loud in every debug/test build.
    #[inline]
    pub fn new(slot: Slot, feedback: Feedback, sent: bool, succeeded: bool) -> Self {
        debug_assert!(sent || !succeeded, "Observation: succeeded implies sent");
        Observation {
            slot,
            feedback,
            sent,
            succeeded,
        }
    }

    /// Observation delivered to a pure listener (did not send).
    #[inline]
    pub fn listener(slot: Slot, feedback: Feedback) -> Self {
        Self::new(slot, feedback, false, false)
    }

    /// Observation delivered to a sender.
    #[inline]
    pub fn sender(slot: Slot, feedback: Feedback, succeeded: bool) -> Self {
        Self::new(slot, feedback, true, succeeded)
    }
}

/// Global resolution of one slot, as seen by an omniscient observer.
///
/// Protocols never see this; it feeds metrics, hooks, and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// At least one packet active, nobody transmitted, no jamming.
    Empty,
    /// Exactly one transmission, no jamming: the packet departs.
    Success {
        /// The packet that succeeded.
        id: PacketId,
    },
    /// Two or more transmissions, no jamming.
    Collision {
        /// Number of simultaneous transmissions.
        senders: u32,
    },
    /// The adversary jammed the slot (any number of senders fail).
    Jammed {
        /// Number of transmissions swallowed by the jam.
        senders: u32,
    },
}

impl SlotOutcome {
    /// The ternary feedback a listener receives for this outcome.
    #[inline]
    pub fn feedback(&self) -> Feedback {
        match self {
            SlotOutcome::Empty => Feedback::Empty,
            SlotOutcome::Success { .. } => Feedback::Success,
            SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => Feedback::Noisy,
        }
    }

    /// Whether the algorithm "used" the slot in the throughput sense
    /// (a success, or a jammed slot which no algorithm could have used).
    #[inline]
    pub fn is_useful(&self) -> bool {
        matches!(
            self,
            SlotOutcome::Success { .. } | SlotOutcome::Jammed { .. }
        )
    }
}

/// How a resolved [`SlotOutcome`] is perceived by stations, and what it
/// costs in physical time.
///
/// Implementations are zero-sized (or tiny `Copy` structs) so the engines
/// can be generic over the model and monomorphize: under [`Ternary`] every
/// method is a trivial inline and the slot loops compile to the same
/// machine code as before the model existed. The mapping must be total —
/// every implementation matches all four [`SlotOutcome`] variants, so a new
/// outcome variant is a compile error in every model rather than a silent
/// misclassification.
pub trait FeedbackModel: Copy + Send + Sync + 'static {
    /// Short stable name for labels and artifacts (no parameters).
    fn name(&self) -> &'static str;

    /// What a pure listener hears for this outcome.
    fn listener_feedback(&self, outcome: &SlotOutcome) -> Feedback;

    /// What a sender perceives for this outcome. `succeeded` is whether
    /// this sender's own transmission won the slot.
    fn sender_feedback(&self, outcome: &SlotOutcome, succeeded: bool) -> Feedback;

    /// Extra *physical* slots this outcome occupies beyond its logical
    /// slot. The engine accumulates this as clock skew: scheduling stays in
    /// logical time, metrics are recorded at physical time.
    #[inline]
    fn overhead_slots(&self, outcome: &SlotOutcome) -> u64 {
        let _ = outcome;
        0
    }
}

/// The paper's ternary full-sensing channel — the default model.
///
/// Listeners and senders both perceive the raw ternary feedback of the
/// outcome; nothing costs extra time. This is bit-identical to the
/// pre-model engines (pinned by `tests/feedback_recordings.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ternary;

impl FeedbackModel for Ternary {
    #[inline]
    fn name(&self) -> &'static str {
        "ternary"
    }

    #[inline]
    fn listener_feedback(&self, outcome: &SlotOutcome) -> Feedback {
        outcome.feedback()
    }

    #[inline]
    fn sender_feedback(&self, outcome: &SlotOutcome, _succeeded: bool) -> Feedback {
        outcome.feedback()
    }
}

/// No collision detection (Jiang–Zheng, arXiv:2111.06650).
///
/// Listeners cannot distinguish a collision (or a jammed slot) from
/// silence — only a lone transmission is audible. Senders still learn
/// whether their own transmission succeeded (acknowledgement), but nothing
/// more: a failed send sounds like noise regardless of cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCollisionDetection;

impl FeedbackModel for NoCollisionDetection {
    #[inline]
    fn name(&self) -> &'static str {
        "no-cd"
    }

    #[inline]
    fn listener_feedback(&self, outcome: &SlotOutcome) -> Feedback {
        match outcome {
            SlotOutcome::Success { .. } => Feedback::Success,
            SlotOutcome::Empty | SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => {
                Feedback::Empty
            }
        }
    }

    #[inline]
    fn sender_feedback(&self, outcome: &SlotOutcome, succeeded: bool) -> Feedback {
        match outcome {
            SlotOutcome::Empty
            | SlotOutcome::Success { .. }
            | SlotOutcome::Collision { .. }
            | SlotOutcome::Jammed { .. } => {
                if succeeded {
                    Feedback::Success
                } else {
                    Feedback::Noisy
                }
            }
        }
    }
}

/// Collisions cost time proportional to contention (Anderton–Young,
/// arXiv:1705.09271).
///
/// Sensing stays ternary, but a collision among `k` senders occupies
/// `1 + ceil(α·k)` physical slots instead of 1. Jammed slots are *not*
/// dilated: the adversary burns exactly the slots it jams. The engine
/// keeps scheduling in logical time and carries the accumulated overhead
/// as clock skew, so all stepping strategies agree on wake/arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostlyCollisions {
    /// Per-contender cost factor `α ≥ 0`.
    pub alpha: f64,
}

impl CostlyCollisions {
    /// Creates the model with cost factor `alpha` (must be finite and ≥ 0).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "CostlyCollisions alpha must be finite and non-negative"
        );
        CostlyCollisions { alpha }
    }
}

impl FeedbackModel for CostlyCollisions {
    #[inline]
    fn name(&self) -> &'static str {
        "costly"
    }

    #[inline]
    fn listener_feedback(&self, outcome: &SlotOutcome) -> Feedback {
        outcome.feedback()
    }

    #[inline]
    fn sender_feedback(&self, outcome: &SlotOutcome, _succeeded: bool) -> Feedback {
        outcome.feedback()
    }

    #[inline]
    fn overhead_slots(&self, outcome: &SlotOutcome) -> u64 {
        match outcome {
            SlotOutcome::Collision { senders } => (self.alpha * f64::from(*senders)).ceil() as u64,
            SlotOutcome::Empty | SlotOutcome::Success { .. } | SlotOutcome::Jammed { .. } => 0,
        }
    }
}

/// Runtime-selectable channel model — the scenario/campaign-facing mirror
/// of the static [`FeedbackModel`] implementations.
///
/// Scenarios carry one of these and dispatch **once per run** (outside the
/// slot loop) to the matching monomorphized engine body, so model choice
/// never costs dyn dispatch per slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChannelModel {
    /// The paper's ternary full-sensing channel (default).
    #[default]
    Ternary,
    /// Jiang–Zheng no-collision-detection channel.
    NoCollisionDetection,
    /// Anderton–Young costly collisions with cost factor `alpha`.
    CostlyCollisions {
        /// Per-contender cost factor `α ≥ 0`.
        alpha: f64,
    },
}

impl ChannelModel {
    /// Human/artifact label, including parameters.
    pub fn label(&self) -> String {
        match self {
            ChannelModel::Ternary => "ternary".to_string(),
            ChannelModel::NoCollisionDetection => "no-cd".to_string(),
            ChannelModel::CostlyCollisions { alpha } => format!("costly(alpha={alpha})"),
        }
    }
}

/// Resolves a slot given the sender set and the jamming decision.
#[inline]
pub fn resolve_slot(jammed: bool, senders: &[PacketId]) -> SlotOutcome {
    if jammed {
        SlotOutcome::Jammed {
            senders: senders.len() as u32,
        }
    } else {
        match senders {
            [] => SlotOutcome::Empty,
            [only] => SlotOutcome::Success { id: *only },
            many => SlotOutcome::Collision {
                senders: many.len() as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_truth_table() {
        let a = PacketId(0);
        let b = PacketId(1);
        assert_eq!(resolve_slot(false, &[]), SlotOutcome::Empty);
        assert_eq!(resolve_slot(false, &[a]), SlotOutcome::Success { id: a });
        assert_eq!(
            resolve_slot(false, &[a, b]),
            SlotOutcome::Collision { senders: 2 }
        );
        assert_eq!(resolve_slot(true, &[]), SlotOutcome::Jammed { senders: 0 });
        assert_eq!(resolve_slot(true, &[a]), SlotOutcome::Jammed { senders: 1 });
        assert_eq!(
            resolve_slot(true, &[a, b]),
            SlotOutcome::Jammed { senders: 2 }
        );
    }

    #[test]
    fn feedback_matches_model() {
        assert_eq!(SlotOutcome::Empty.feedback(), Feedback::Empty);
        assert_eq!(
            SlotOutcome::Success { id: PacketId(3) }.feedback(),
            Feedback::Success
        );
        assert_eq!(
            SlotOutcome::Collision { senders: 2 }.feedback(),
            Feedback::Noisy
        );
        // Jammed slots are full and noisy even with zero senders.
        assert_eq!(
            SlotOutcome::Jammed { senders: 0 }.feedback(),
            Feedback::Noisy
        );
    }

    #[test]
    fn useful_slots() {
        assert!(SlotOutcome::Success { id: PacketId(0) }.is_useful());
        assert!(SlotOutcome::Jammed { senders: 0 }.is_useful());
        assert!(!SlotOutcome::Empty.is_useful());
        assert!(!SlotOutcome::Collision { senders: 2 }.is_useful());
    }

    #[test]
    fn intent_channel_access() {
        assert!(!Intent::Sleep.accesses_channel());
        assert!(Intent::Listen.accesses_channel());
        assert!(Intent::Send.accesses_channel());
    }

    /// All four outcome variants, for exhaustive model-mapping checks.
    fn all_outcomes() -> [SlotOutcome; 4] {
        [
            SlotOutcome::Empty,
            SlotOutcome::Success { id: PacketId(7) },
            SlotOutcome::Collision { senders: 3 },
            SlotOutcome::Jammed { senders: 1 },
        ]
    }

    #[test]
    fn ternary_model_matches_raw_feedback_exhaustively() {
        for o in all_outcomes() {
            assert_eq!(Ternary.listener_feedback(&o), o.feedback());
            for succeeded in [false, true] {
                // A sender under ternary hears the raw channel, same as a
                // listener — success is inferred from departing.
                assert_eq!(Ternary.sender_feedback(&o, succeeded), o.feedback());
            }
            assert_eq!(Ternary.overhead_slots(&o), 0);
        }
    }

    #[test]
    fn no_cd_listener_collapses_everything_but_success() {
        let m = NoCollisionDetection;
        assert_eq!(m.listener_feedback(&SlotOutcome::Empty), Feedback::Empty);
        assert_eq!(
            m.listener_feedback(&SlotOutcome::Success { id: PacketId(0) }),
            Feedback::Success
        );
        // The defining property: collisions and jams are inaudible.
        assert_eq!(
            m.listener_feedback(&SlotOutcome::Collision { senders: 9 }),
            Feedback::Empty
        );
        assert_eq!(
            m.listener_feedback(&SlotOutcome::Jammed { senders: 0 }),
            Feedback::Empty
        );
        for o in all_outcomes() {
            assert_eq!(m.sender_feedback(&o, true), Feedback::Success);
            assert_eq!(m.sender_feedback(&o, false), Feedback::Noisy);
            assert_eq!(m.overhead_slots(&o), 0);
        }
    }

    #[test]
    fn costly_collisions_dilate_only_collisions() {
        let m = CostlyCollisions::new(0.5);
        for o in all_outcomes() {
            // Sensing is ternary; only the clock changes.
            assert_eq!(m.listener_feedback(&o), o.feedback());
            assert_eq!(m.sender_feedback(&o, false), o.feedback());
        }
        assert_eq!(m.overhead_slots(&SlotOutcome::Empty), 0);
        assert_eq!(
            m.overhead_slots(&SlotOutcome::Success { id: PacketId(0) }),
            0
        );
        assert_eq!(m.overhead_slots(&SlotOutcome::Collision { senders: 2 }), 1);
        assert_eq!(m.overhead_slots(&SlotOutcome::Collision { senders: 3 }), 2);
        assert_eq!(m.overhead_slots(&SlotOutcome::Collision { senders: 5 }), 3);
        // Jamming is the adversary's time, not a collision penalty.
        assert_eq!(m.overhead_slots(&SlotOutcome::Jammed { senders: 5 }), 0);
        // α = 0 degenerates to free collisions.
        let free = CostlyCollisions::new(0.0);
        assert_eq!(
            free.overhead_slots(&SlotOutcome::Collision { senders: 100 }),
            0
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn costly_collisions_rejects_negative_alpha() {
        let _ = CostlyCollisions::new(-0.1);
    }

    #[test]
    fn observation_constructors_set_roles() {
        let l = Observation::listener(4, Feedback::Noisy);
        assert!(!l.sent && !l.succeeded);
        let s = Observation::sender(4, Feedback::Success, true);
        assert!(s.sent && s.succeeded);
        let f = Observation::sender(4, Feedback::Noisy, false);
        assert!(f.sent && !f.succeeded);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "succeeded implies sent")]
    fn observation_rejects_succeeded_without_sent() {
        let _ = Observation::new(0, Feedback::Success, false, true);
    }

    #[test]
    fn channel_model_labels_and_default() {
        assert_eq!(ChannelModel::default(), ChannelModel::Ternary);
        assert_eq!(ChannelModel::Ternary.label(), "ternary");
        assert_eq!(ChannelModel::NoCollisionDetection.label(), "no-cd");
        assert_eq!(
            ChannelModel::CostlyCollisions { alpha: 0.5 }.label(),
            "costly(alpha=0.5)"
        );
    }
}
