//! Channel actions, ternary feedback, and slot outcomes (paper §1.1).

use crate::packet::PacketId;
use crate::time::Slot;

/// What a listening packet hears about a slot — the *ternary feedback model*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// (0) No packet transmitted and the slot was not jammed.
    Empty,
    /// (1) Exactly one packet transmitted in an unjammed slot.
    Success,
    /// (2+) Two or more packets transmitted, or the slot was jammed.
    ///
    /// A listener cannot distinguish collision noise from jamming noise.
    Noisy,
}

/// A packet's action in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Do not access the channel; learn nothing.
    Sleep,
    /// Listen only. Costs one channel access.
    Listen,
    /// Transmit. Costs one channel access; the sender learns the slot
    /// outcome implicitly (it either departs or observes noise).
    Send,
}

impl Intent {
    /// Whether this action touches the channel (send or listen).
    #[inline]
    pub fn accesses_channel(self) -> bool {
        !matches!(self, Intent::Sleep)
    }
}

/// Everything a packet learns about a slot it accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The slot observed.
    pub slot: Slot,
    /// Ternary feedback for the slot.
    pub feedback: Feedback,
    /// Whether this packet transmitted in the slot.
    pub sent: bool,
    /// Whether this packet's transmission succeeded (implies `sent`).
    pub succeeded: bool,
}

/// Global resolution of one slot, as seen by an omniscient observer.
///
/// Protocols never see this; it feeds metrics, hooks, and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// At least one packet active, nobody transmitted, no jamming.
    Empty,
    /// Exactly one transmission, no jamming: the packet departs.
    Success {
        /// The packet that succeeded.
        id: PacketId,
    },
    /// Two or more transmissions, no jamming.
    Collision {
        /// Number of simultaneous transmissions.
        senders: u32,
    },
    /// The adversary jammed the slot (any number of senders fail).
    Jammed {
        /// Number of transmissions swallowed by the jam.
        senders: u32,
    },
}

impl SlotOutcome {
    /// The ternary feedback a listener receives for this outcome.
    #[inline]
    pub fn feedback(&self) -> Feedback {
        match self {
            SlotOutcome::Empty => Feedback::Empty,
            SlotOutcome::Success { .. } => Feedback::Success,
            SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => Feedback::Noisy,
        }
    }

    /// Whether the algorithm "used" the slot in the throughput sense
    /// (a success, or a jammed slot which no algorithm could have used).
    #[inline]
    pub fn is_useful(&self) -> bool {
        matches!(
            self,
            SlotOutcome::Success { .. } | SlotOutcome::Jammed { .. }
        )
    }
}

/// Resolves a slot given the sender set and the jamming decision.
#[inline]
pub fn resolve_slot(jammed: bool, senders: &[PacketId]) -> SlotOutcome {
    if jammed {
        SlotOutcome::Jammed {
            senders: senders.len() as u32,
        }
    } else {
        match senders {
            [] => SlotOutcome::Empty,
            [only] => SlotOutcome::Success { id: *only },
            many => SlotOutcome::Collision {
                senders: many.len() as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_truth_table() {
        let a = PacketId(0);
        let b = PacketId(1);
        assert_eq!(resolve_slot(false, &[]), SlotOutcome::Empty);
        assert_eq!(resolve_slot(false, &[a]), SlotOutcome::Success { id: a });
        assert_eq!(
            resolve_slot(false, &[a, b]),
            SlotOutcome::Collision { senders: 2 }
        );
        assert_eq!(resolve_slot(true, &[]), SlotOutcome::Jammed { senders: 0 });
        assert_eq!(resolve_slot(true, &[a]), SlotOutcome::Jammed { senders: 1 });
        assert_eq!(
            resolve_slot(true, &[a, b]),
            SlotOutcome::Jammed { senders: 2 }
        );
    }

    #[test]
    fn feedback_matches_model() {
        assert_eq!(SlotOutcome::Empty.feedback(), Feedback::Empty);
        assert_eq!(
            SlotOutcome::Success { id: PacketId(3) }.feedback(),
            Feedback::Success
        );
        assert_eq!(
            SlotOutcome::Collision { senders: 2 }.feedback(),
            Feedback::Noisy
        );
        // Jammed slots are full and noisy even with zero senders.
        assert_eq!(
            SlotOutcome::Jammed { senders: 0 }.feedback(),
            Feedback::Noisy
        );
    }

    #[test]
    fn useful_slots() {
        assert!(SlotOutcome::Success { id: PacketId(0) }.is_useful());
        assert!(SlotOutcome::Jammed { senders: 0 }.is_useful());
        assert!(!SlotOutcome::Empty.is_useful());
        assert!(!SlotOutcome::Collision { senders: 2 }.is_useful());
    }

    #[test]
    fn intent_channel_access() {
        assert!(!Intent::Sleep.accesses_channel());
        assert!(Intent::Listen.accesses_channel());
        assert!(Intent::Send.accesses_channel());
    }
}
