//! Jamming adversaries.
//!
//! A jammed slot is full and noisy: listeners hear noise and cannot tell it
//! from a collision; senders fail (paper §1.1). The *adaptive* adversary
//! decides jamming from state up to slot `t − 1`; a *reactive* adversary
//! (§1.3) additionally sees which packets transmit in slot `t` itself —
//! sending is detectable, listening is not.
//!
//! # Contract
//!
//! Engines call [`Jammer::jams`] at most once per resolved slot and
//! [`Jammer::count_range`] once per skipped gap, in nondecreasing time order
//! with disjoint ranges, so budgeted jammers may keep internal state.
//! `count_range` is only invoked for gaps in which no packet accesses the
//! channel, so the choice of *which* slots in the gap are jammed cannot
//! affect any packet — only the `J_t` accounting.

use crate::dist::Binomial;
use crate::packet::PacketId;
use crate::rng::SimRng;
use crate::time::Slot;
use crate::view::SystemView;

/// A strategy for jamming slots.
pub trait Jammer {
    /// Whether slot `t` is jammed (adaptive decision, made "at the start of
    /// the slot").
    fn jams(&mut self, t: Slot, view: &SystemView<'_>, rng: &mut SimRng) -> bool;

    /// Number of jammed slots in `[from, to)` given that no packet accesses
    /// the channel anywhere in the range.
    fn count_range(&mut self, from: Slot, to: Slot, view: &SystemView<'_>, rng: &mut SimRng)
        -> u64;

    /// Reactive decision for slot `t`, taken *after* seeing the sender set.
    /// Only consulted when [`Jammer::is_reactive`] returns `true`, and only
    /// when [`Jammer::jams`] returned `false` for the slot.
    fn reactive_jams(
        &mut self,
        t: Slot,
        senders: &[PacketId],
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> bool {
        let _ = (t, senders, view, rng);
        false
    }

    /// Whether this adversary has a reactive component.
    fn is_reactive(&self) -> bool {
        false
    }
}

/// Never jams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoJam;

impl Jammer for NoJam {
    fn jams(&mut self, _t: Slot, _view: &SystemView<'_>, _rng: &mut SimRng) -> bool {
        false
    }

    fn count_range(
        &mut self,
        _from: Slot,
        _to: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> u64 {
        0
    }
}

/// Jams each slot independently with probability `rho`.
///
/// # Examples
///
/// ```
/// use lowsense_sim::prelude::*;
/// use lowsense_sim::metrics::Totals;
///
/// let totals = Totals::default();
/// let view = SystemView { slot: 0, backlog: 1, contention: 0.1, totals: &totals };
/// let mut rng = SimRng::new(1);
/// let mut jam = RandomJam::new(0.25);
/// let hits = (0..10_000u64).filter(|&t| jam.jams(t, &view, &mut rng)).count();
/// assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RandomJam {
    rho: f64,
}

impl RandomJam {
    /// Creates the jammer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rho <= 1`.
    pub fn new(rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho {rho} out of [0,1]");
        RandomJam { rho }
    }
}

impl Jammer for RandomJam {
    fn jams(&mut self, _t: Slot, _view: &SystemView<'_>, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.rho)
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        _view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> u64 {
        Binomial::new(to - from, self.rho).sample(rng)
    }
}

/// Deterministic periodic bursts: jams the first `burst_len` slots of every
/// `period`-slot cycle, offset by `phase`.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicBurst {
    period: u64,
    burst_len: u64,
    phase: u64,
}

impl PeriodicBurst {
    /// Creates the jammer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < burst_len <= period`.
    pub fn new(period: u64, burst_len: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(
            burst_len > 0 && burst_len <= period,
            "burst_len must be in 1..=period"
        );
        PeriodicBurst {
            period,
            burst_len,
            phase: phase % period,
        }
    }

    #[inline]
    fn in_burst(&self, t: Slot) -> bool {
        (t + self.period - self.phase) % self.period < self.burst_len
    }

    /// Jammed slots in `[0, n)` of the phase-0 pattern.
    fn count_prefix(&self, n: u64) -> u64 {
        let full = n / self.period;
        let rem = n % self.period;
        full * self.burst_len + rem.min(self.burst_len)
    }
}

impl Jammer for PeriodicBurst {
    fn jams(&mut self, t: Slot, _view: &SystemView<'_>, _rng: &mut SimRng) -> bool {
        self.in_burst(t)
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> u64 {
        // Shift so that bursts start at multiples of `period`.
        let a = from + self.period - self.phase;
        let b = to + self.period - self.phase;
        self.count_prefix(b) - self.count_prefix(a)
    }
}

/// Adversarial-queuing jamming: in every window of `granularity` slots, jams
/// the leading `⌊rate·granularity⌋` slots (with fractional carry), mirroring
/// the arrival-side budget of Corollary 1.5.
#[derive(Debug, Clone, Copy)]
pub struct WindowPrefixJam {
    rate: f64,
    granularity: u64,
}

impl WindowPrefixJam {
    /// Creates the jammer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1` and `granularity ≥ 1`.
    pub fn new(rate: f64, granularity: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate {rate} out of [0,1)");
        assert!(granularity >= 1);
        WindowPrefixJam { rate, granularity }
    }

    /// Budget of window `w`: `⌊r·S·(w+1)⌋ − ⌊r·S·w⌋`.
    #[inline]
    fn budget(&self, w: u64) -> u64 {
        let rs = self.rate * self.granularity as f64;
        ((w + 1) as f64 * rs).floor() as u64 - (w as f64 * rs).floor() as u64
    }

    /// Jammed slots in `[0, n)`.
    fn count_prefix(&self, n: u64) -> u64 {
        let w = n / self.granularity;
        let rem = n % self.granularity;
        let rs = self.rate * self.granularity as f64;
        let full = (w as f64 * rs).floor() as u64;
        full + rem.min(self.budget(w))
    }
}

impl Jammer for WindowPrefixJam {
    fn jams(&mut self, t: Slot, _view: &SystemView<'_>, _rng: &mut SimRng) -> bool {
        (t % self.granularity) < self.budget(t / self.granularity)
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> u64 {
        self.count_prefix(to) - self.count_prefix(from)
    }
}

/// Random jamming with a finite budget of `budget` jams.
#[derive(Debug, Clone, Copy)]
pub struct BudgetedRandomJam {
    rho: f64,
    remaining: u64,
}

impl BudgetedRandomJam {
    /// Jams with probability `rho` per slot until `budget` jams are spent.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rho <= 1`.
    pub fn new(rho: f64, budget: u64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho {rho} out of [0,1]");
        BudgetedRandomJam {
            rho,
            remaining: budget,
        }
    }

    /// Jams left in the budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Jammer for BudgetedRandomJam {
    fn jams(&mut self, _t: Slot, _view: &SystemView<'_>, rng: &mut SimRng) -> bool {
        if self.remaining > 0 && rng.bernoulli(self.rho) {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        _view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> u64 {
        let k = Binomial::new(to - from, self.rho)
            .sample(rng)
            .min(self.remaining);
        self.remaining -= k;
        k
    }
}

/// Adaptive end-game jammer: jams with probability `rho` only while the
/// backlog is at most `max_backlog`.
///
/// This targets the phase where few packets remain and each jam can stall a
/// back-on — the adaptive strategy the potential-function analysis has to
/// absorb via the `L(t)` term.
#[derive(Debug, Clone, Copy)]
pub struct BacklogJam {
    rho: f64,
    max_backlog: u64,
    remaining: Option<u64>,
}

impl BacklogJam {
    /// Creates the jammer (unbounded jam budget).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rho <= 1`.
    pub fn new(rho: f64, max_backlog: u64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho {rho} out of [0,1]");
        BacklogJam {
            rho,
            max_backlog,
            remaining: None,
        }
    }

    /// Caps the total number of jams. With an unbounded budget and a high
    /// rate this adversary can stall the end-game forever (which the
    /// throughput metric absorbs as jam credit); a finite budget lets runs
    /// drain.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.remaining = Some(budget);
        self
    }

    fn active(&self, view: &SystemView<'_>) -> bool {
        view.backlog > 0 && view.backlog <= self.max_backlog && self.remaining != Some(0)
    }

    fn spend(&mut self, k: u64) -> u64 {
        match &mut self.remaining {
            Some(r) => {
                let k = k.min(*r);
                *r -= k;
                k
            }
            None => k,
        }
    }
}

impl Jammer for BacklogJam {
    fn jams(&mut self, _t: Slot, view: &SystemView<'_>, rng: &mut SimRng) -> bool {
        self.active(view) && rng.bernoulli(self.rho) && self.spend(1) == 1
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> u64 {
        if self.active(view) {
            let k = Binomial::new(to - from, self.rho).sample(rng);
            self.spend(k)
        } else {
            0
        }
    }
}

/// Reactive adversary that targets one packet: jams exactly the slots in
/// which `target` transmits, until the budget runs out (§1.3).
#[derive(Debug, Clone, Copy)]
pub struct ReactiveTargeted {
    target: PacketId,
    remaining: u64,
}

impl ReactiveTargeted {
    /// Jams the first `budget` transmissions of `target`.
    pub fn new(target: PacketId, budget: u64) -> Self {
        ReactiveTargeted {
            target,
            remaining: budget,
        }
    }

    /// Jams left in the budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Jammer for ReactiveTargeted {
    fn jams(&mut self, _t: Slot, _view: &SystemView<'_>, _rng: &mut SimRng) -> bool {
        false
    }

    fn count_range(
        &mut self,
        _from: Slot,
        _to: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> u64 {
        0
    }

    fn reactive_jams(
        &mut self,
        _t: Slot,
        senders: &[PacketId],
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> bool {
        if self.remaining > 0 && senders.contains(&self.target) {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    fn is_reactive(&self) -> bool {
        true
    }
}

/// Reactive denial-of-service: jams every slot containing at least one
/// transmission until the budget is spent — no packet can succeed while the
/// budget lasts.
#[derive(Debug, Clone, Copy)]
pub struct ReactiveAny {
    remaining: u64,
}

impl ReactiveAny {
    /// Jams the first `budget` transmission slots.
    pub fn new(budget: u64) -> Self {
        ReactiveAny { remaining: budget }
    }

    /// Jams left in the budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Jammer for ReactiveAny {
    fn jams(&mut self, _t: Slot, _view: &SystemView<'_>, _rng: &mut SimRng) -> bool {
        false
    }

    fn count_range(
        &mut self,
        _from: Slot,
        _to: Slot,
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> u64 {
        0
    }

    fn reactive_jams(
        &mut self,
        _t: Slot,
        senders: &[PacketId],
        _view: &SystemView<'_>,
        _rng: &mut SimRng,
    ) -> bool {
        if self.remaining > 0 && !senders.is_empty() {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    fn is_reactive(&self) -> bool {
        true
    }
}

/// Composes a base (adaptive) jammer with a reactive component: the slot is
/// jammed if the base jams it, or — failing that — if the reactive component
/// fires on the sender set.
///
/// The base side owns the silent-gap accounting (`count_range`), which is
/// exact because reactive components by definition act only on slots with
/// transmissions, and gaps have none. This is how the paper's strongest
/// adversary — background noise *plus* a sniper (§1.3) — is expressed:
///
/// ```
/// use lowsense_sim::prelude::*;
/// use lowsense_sim::jamming::WithReactive;
///
/// let adversary = WithReactive::new(
///     RandomJam::new(0.1),
///     ReactiveTargeted::new(PacketId(0), 16),
/// );
/// assert!(adversary.is_reactive());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WithReactive<B, R> {
    base: B,
    reactive: R,
}

impl<B: Jammer, R: Jammer> WithReactive<B, R> {
    /// Combines `base` (adaptive + gap accounting) with `reactive`.
    pub fn new(base: B, reactive: R) -> Self {
        WithReactive { base, reactive }
    }

    /// The reactive component (e.g. to read a remaining budget).
    pub fn reactive(&self) -> &R {
        &self.reactive
    }
}

impl<B: Jammer, R: Jammer> Jammer for WithReactive<B, R> {
    fn jams(&mut self, t: Slot, view: &SystemView<'_>, rng: &mut SimRng) -> bool {
        self.base.jams(t, view, rng)
    }

    fn count_range(
        &mut self,
        from: Slot,
        to: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> u64 {
        self.base.count_range(from, to, view, rng)
    }

    fn reactive_jams(
        &mut self,
        t: Slot,
        senders: &[PacketId],
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> bool {
        self.reactive.reactive_jams(t, senders, view, rng)
            || self.base.reactive_jams(t, senders, view, rng)
    }

    fn is_reactive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Totals;

    fn dummy_view(totals: &Totals, backlog: u64) -> SystemView<'_> {
        SystemView {
            slot: 0,
            backlog,
            contention: 0.0,
            totals,
        }
    }

    #[test]
    fn no_jam_never_jams() {
        let totals = Totals::default();
        let mut rng = SimRng::new(1);
        let mut j = NoJam;
        assert!(!j.jams(0, &dummy_view(&totals, 1), &mut rng));
        assert_eq!(j.count_range(0, 1000, &dummy_view(&totals, 1), &mut rng), 0);
        assert!(!j.is_reactive());
    }

    #[test]
    fn random_jam_rate() {
        let totals = Totals::default();
        let mut rng = SimRng::new(2);
        let mut j = RandomJam::new(0.3);
        let v = dummy_view(&totals, 1);
        let n = 100_000;
        let hits = (0..n).filter(|&t| j.jams(t, &v, &mut rng)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        // Range counts match the same rate.
        let c = j.count_range(0, 100_000, &v, &mut rng);
        assert!((c as f64 / 1e5 - 0.3).abs() < 0.01, "range count {c}");
    }

    #[test]
    fn periodic_burst_pattern_and_counts() {
        let totals = Totals::default();
        let mut rng = SimRng::new(3);
        let v = dummy_view(&totals, 1);
        let mut j = PeriodicBurst::new(10, 3, 2);
        // Slots 2,3,4, 12,13,14, ... are jammed.
        let jammed: Vec<Slot> = (0..25).filter(|&t| j.jams(t, &v, &mut rng)).collect();
        assert_eq!(jammed, vec![2, 3, 4, 12, 13, 14, 22, 23, 24]);
        // count_range agrees with per-slot enumeration on arbitrary ranges.
        for (a, b) in [(0, 25), (3, 13), (5, 5), (2, 3), (17, 23)] {
            let mut j2 = PeriodicBurst::new(10, 3, 2);
            let expect = (a..b).filter(|&t| j2.jams(t, &v, &mut rng)).count() as u64;
            assert_eq!(j.count_range(a, b, &v, &mut rng), expect, "range [{a},{b})");
        }
    }

    #[test]
    fn window_prefix_budget_and_counts() {
        let totals = Totals::default();
        let mut rng = SimRng::new(4);
        let v = dummy_view(&totals, 1);
        let mut j = WindowPrefixJam::new(0.25, 8);
        // Budget 2 per window of 8: slots 0,1, 8,9, 16,17, ...
        let jammed: Vec<Slot> = (0..20).filter(|&t| j.jams(t, &v, &mut rng)).collect();
        assert_eq!(jammed, vec![0, 1, 8, 9, 16, 17]);
        for (a, b) in [(0, 20), (1, 9), (2, 8), (9, 17)] {
            let mut j2 = WindowPrefixJam::new(0.25, 8);
            let expect = (a..b).filter(|&t| j2.jams(t, &v, &mut rng)).count() as u64;
            assert_eq!(j.count_range(a, b, &v, &mut rng), expect, "[{a},{b})");
        }
    }

    #[test]
    fn window_prefix_fractional_carry() {
        let totals = Totals::default();
        let mut rng = SimRng::new(5);
        let v = dummy_view(&totals, 1);
        // rate·S = 0.5: every other window jams one slot.
        let mut j = WindowPrefixJam::new(0.05, 10);
        let total = j.count_range(0, 1000, &v, &mut rng);
        assert_eq!(total, 50);
    }

    #[test]
    fn budgeted_jam_exhausts() {
        let totals = Totals::default();
        let mut rng = SimRng::new(6);
        let v = dummy_view(&totals, 1);
        let mut j = BudgetedRandomJam::new(1.0, 5);
        let hits = (0..100).filter(|&t| j.jams(t, &v, &mut rng)).count();
        assert_eq!(hits, 5);
        assert_eq!(j.remaining(), 0);
        let mut j2 = BudgetedRandomJam::new(1.0, 7);
        assert_eq!(j2.count_range(0, 100, &v, &mut rng), 7);
        assert_eq!(j2.count_range(100, 200, &v, &mut rng), 0);
    }

    #[test]
    fn backlog_jam_only_in_endgame() {
        let totals = Totals::default();
        let mut rng = SimRng::new(7);
        let mut j = BacklogJam::new(1.0, 3);
        assert!(
            !j.jams(0, &dummy_view(&totals, 0), &mut rng),
            "idle: no jam"
        );
        assert!(
            !j.jams(0, &dummy_view(&totals, 10), &mut rng),
            "crowded: no jam"
        );
        assert!(j.jams(0, &dummy_view(&totals, 2), &mut rng), "endgame: jam");
        assert_eq!(j.count_range(0, 10, &dummy_view(&totals, 10), &mut rng), 0);
        assert_eq!(j.count_range(0, 10, &dummy_view(&totals, 1), &mut rng), 10);
    }

    #[test]
    fn backlog_jam_budget_exhausts() {
        let totals = Totals::default();
        let mut rng = SimRng::new(17);
        let mut j = BacklogJam::new(1.0, 5).with_budget(7);
        assert_eq!(j.count_range(0, 5, &dummy_view(&totals, 2), &mut rng), 5);
        assert!(j.jams(5, &dummy_view(&totals, 2), &mut rng));
        assert!(j.jams(6, &dummy_view(&totals, 2), &mut rng));
        // Budget spent: no more jams anywhere.
        assert!(!j.jams(7, &dummy_view(&totals, 2), &mut rng));
        assert_eq!(j.count_range(8, 100, &dummy_view(&totals, 2), &mut rng), 0);
    }

    #[test]
    fn reactive_targeted_hits_only_target() {
        let totals = Totals::default();
        let mut rng = SimRng::new(8);
        let v = dummy_view(&totals, 2);
        let mut j = ReactiveTargeted::new(PacketId(7), 2);
        assert!(j.is_reactive());
        assert!(!j.reactive_jams(0, &[PacketId(1)], &v, &mut rng));
        assert!(j.reactive_jams(1, &[PacketId(1), PacketId(7)], &v, &mut rng));
        assert!(j.reactive_jams(2, &[PacketId(7)], &v, &mut rng));
        // Budget exhausted.
        assert!(!j.reactive_jams(3, &[PacketId(7)], &v, &mut rng));
        assert_eq!(j.remaining(), 0);
    }

    #[test]
    fn with_reactive_composes_base_and_sniper() {
        let totals = Totals::default();
        let mut rng = SimRng::new(21);
        let v = dummy_view(&totals, 2);
        let mut j = WithReactive::new(
            PeriodicBurst::new(4, 1, 0), // jams slots 0, 4, 8, …
            ReactiveTargeted::new(PacketId(7), 1),
        );
        assert!(j.is_reactive());
        // Base behaviour passes through.
        assert!(j.jams(0, &v, &mut rng));
        assert!(!j.jams(1, &v, &mut rng));
        assert_eq!(j.count_range(0, 8, &v, &mut rng), 2);
        // Reactive component fires on the target, once.
        assert!(j.reactive_jams(1, &[PacketId(7)], &v, &mut rng));
        assert!(!j.reactive_jams(2, &[PacketId(7)], &v, &mut rng));
        assert_eq!(j.reactive().remaining(), 0);
    }

    #[test]
    fn reactive_any_blocks_all_sends() {
        let totals = Totals::default();
        let mut rng = SimRng::new(9);
        let v = dummy_view(&totals, 2);
        let mut j = ReactiveAny::new(1);
        assert!(!j.reactive_jams(0, &[], &v, &mut rng), "no senders, no jam");
        assert!(j.reactive_jams(1, &[PacketId(0)], &v, &mut rng));
        assert!(!j.reactive_jams(2, &[PacketId(0)], &v, &mut rng));
    }
}
