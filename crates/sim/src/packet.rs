//! Packet identity and per-packet bookkeeping.

use crate::time::Slot;

/// Identifier of a packet, assigned densely in injection order starting at 0.
///
/// The id doubles as an index into per-packet tables, so lookups are O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The table index for this packet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Lifetime statistics of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketStats {
    /// Slot in which the packet was injected.
    pub injected: Slot,
    /// Slot in which the packet succeeded, or `None` if still active when the
    /// run stopped.
    pub departed: Option<Slot>,
    /// Number of slots in which the packet transmitted.
    pub sends: u32,
    /// Number of slots in which the packet listened *without* sending.
    ///
    /// Following the paper (§3 footnote), a sending packet learns the slot
    /// outcome for free, so a send is a single channel access; `listens`
    /// counts only pure listening accesses.
    pub listens: u32,
}

impl PacketStats {
    /// Creates stats for a packet injected at `slot`.
    pub fn new(injected: Slot) -> Self {
        PacketStats {
            injected,
            departed: None,
            sends: 0,
            listens: 0,
        }
    }

    /// Total channel accesses (sends + pure listens). This is the paper's
    /// energy measure.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.sends as u64 + self.listens as u64
    }

    /// Slots from injection to success (inclusive of the success slot), if
    /// the packet completed.
    pub fn latency(&self) -> Option<u64> {
        self.departed.map(|d| d - self.injected + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_sums_sends_and_listens() {
        let mut s = PacketStats::new(10);
        s.sends = 3;
        s.listens = 7;
        assert_eq!(s.accesses(), 10);
    }

    #[test]
    fn latency_requires_departure() {
        let mut s = PacketStats::new(10);
        assert_eq!(s.latency(), None);
        s.departed = Some(10);
        assert_eq!(s.latency(), Some(1)); // injected and succeeded same slot
        s.departed = Some(14);
        assert_eq!(s.latency(), Some(5));
    }

    #[test]
    fn packet_id_display_and_index() {
        let id = PacketId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "pkt#42");
    }
}
