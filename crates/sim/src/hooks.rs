//! Analysis hooks: observe a run without perturbing it.
//!
//! The engines are generic over a [`Hooks`] implementation that gets called
//! at every state transition. This is how the `lowsense` crate's potential
//! function `Φ(t)` (paper §4.2) is tracked incrementally without the
//! simulator knowing anything about windows, and how tests assert engine
//! invariants. [`NoHooks`] compiles to nothing.

use crate::feedback::SlotOutcome;
use crate::packet::PacketId;
use crate::time::Slot;

/// One out-of-band snapshot of engine state, handed to
/// [`Hooks::on_sample`] every [`Hooks::sample_period`] event slots.
///
/// Every field is copied from accounting state the engine already
/// maintains (`Totals`, the live backlog/contention registers, and the
/// sparse-path memory footprints) *after* the slot resolved — taking a
/// sample never touches RNG state, packet ordering, or f64 accumulation,
/// so sampled and unsampled runs produce bit-identical `RunResult`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSample {
    /// Wall-clock slot the sample was taken at (the slot just resolved).
    pub slot: Slot,
    /// Event slots processed so far (slots the sparse engine actually
    /// simulated; gaps are excluded). This is the sampling clock.
    pub event_slots: u64,
    /// Packets currently in the system.
    pub backlog: u64,
    /// Packets injected so far (`N_t`).
    pub arrivals: u64,
    /// Packets delivered so far (`T_t`).
    pub successes: u64,
    /// Active slots so far (`S_t`).
    pub active_slots: u64,
    /// Active slots with zero senders and no jam, so far.
    pub empty_active: u64,
    /// Active slots with ≥ 2 senders and no jam, so far.
    pub collision_slots: u64,
    /// Jammed active slots so far (`J_t`).
    pub jammed_active: u64,
    /// Total transmissions so far.
    pub sends: u64,
    /// Total pure listens so far.
    pub listens: u64,
    /// Extra physical slots charged by the feedback model so far.
    pub overhead_slots: u64,
    /// Contention `C(t)` after the slot resolved.
    pub contention: f64,
    /// Wake-structure heap footprint in bytes (0 where not tracked).
    pub footprint_bytes: u64,
    /// Per-packet state-lane bytes (0 where not tracked).
    pub state_bytes: u64,
}

impl EngineSample {
    /// Implicit throughput `(N_t + J_t) / S_t` at this sample (0/0 ⇒ 1).
    pub fn implicit_throughput(&self) -> f64 {
        if self.active_slots == 0 {
            1.0
        } else {
            (self.arrivals + self.jammed_active) as f64 / self.active_slots as f64
        }
    }
}

/// Callbacks invoked by the engines as the run evolves.
///
/// All methods have empty default bodies; implement only what you need.
/// `P` is the protocol type, so hooks can inspect protocol state (e.g. a
/// backoff window) before and after each observation.
///
/// Packet identity is always the original injection-order [`PacketId`]:
/// engines that relocate per-packet state internally (the sparse engine's
/// epoch-compacted table remaps ids to dense indices) resolve the remap
/// before calling any hook, so one id refers to one packet for the whole
/// run.
pub trait Hooks<P> {
    /// Whether this hook set actually inspects observation state pairs.
    ///
    /// Engines clone each listener's state solely to hand
    /// [`Hooks::on_observe`] its `before`/`after` pair; a hook set that
    /// leaves `on_observe` defaulted can return `false` and the hot
    /// listener path skips the clone (and the call) entirely. This is a
    /// pure engine-side elision: all accounting (contention deltas,
    /// metrics, RNG draws) is unchanged, so `RunResult`s are bit-identical
    /// either way — only the no-op calls disappear. Implementations must
    /// return a constant (the engines monomorphize it into a dead-branch
    /// removal, and may consult it once per run or once per slot).
    fn wants_observe(&self) -> bool {
        true
    }

    /// A packet entered the system in slot `t` with initial state `state`.
    fn on_inject(&mut self, t: Slot, id: PacketId, state: &P) {
        let _ = (t, id, state);
    }

    /// A packet succeeded in slot `t`; `state` is its final state.
    fn on_depart(&mut self, t: Slot, id: PacketId, state: &P) {
        let _ = (t, id, state);
    }

    /// A packet observed slot `t`; `before`/`after` bracket the state
    /// update its observation caused.
    fn on_observe(&mut self, t: Slot, id: PacketId, before: &P, after: &P) {
        let _ = (t, id, before, after);
    }

    /// Slot `t` resolved with `outcome` (called for event slots only in the
    /// sparse engine; silent gaps arrive via [`Hooks::on_gap`]).
    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        let _ = (t, outcome);
    }

    /// The sparse engine skipped slots `[from, to)` during which no packet
    /// accessed the channel and all per-packet state was constant;
    /// `jammed` of them were jammed.
    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        let _ = (from, to, jammed);
    }

    /// How often (in processed event slots) this hook set wants an
    /// [`EngineSample`]; `None` (the default) disables sampling and the
    /// engine's sampling branch compiles away entirely. Like
    /// [`Hooks::wants_observe`], implementations must return a constant:
    /// engines consult it once per run and monomorphize the dead branch
    /// out.
    fn sample_period(&self) -> Option<u64> {
        None
    }

    /// A periodic out-of-band engine snapshot, delivered every
    /// [`Hooks::sample_period`] event slots after the slot resolves.
    fn on_sample(&mut self, sample: &EngineSample) {
        let _ = sample;
    }
}

/// The trivial hook set: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHooks;

impl<P> Hooks<P> for NoHooks {
    fn wants_observe(&self) -> bool {
        false
    }
}

/// Combines two hook sets; both observe every event, in order.
#[derive(Debug, Clone, Default)]
pub struct Both<A, B>(pub A, pub B);

impl<P, A: Hooks<P>, B: Hooks<P>> Hooks<P> for Both<A, B> {
    fn wants_observe(&self) -> bool {
        self.0.wants_observe() || self.1.wants_observe()
    }

    fn on_inject(&mut self, t: Slot, id: PacketId, state: &P) {
        self.0.on_inject(t, id, state);
        self.1.on_inject(t, id, state);
    }

    fn on_depart(&mut self, t: Slot, id: PacketId, state: &P) {
        self.0.on_depart(t, id, state);
        self.1.on_depart(t, id, state);
    }

    fn on_observe(&mut self, t: Slot, id: PacketId, before: &P, after: &P) {
        self.0.on_observe(t, id, before, after);
        self.1.on_observe(t, id, before, after);
    }

    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.0.on_slot(t, outcome);
        self.1.on_slot(t, outcome);
    }

    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.0.on_gap(from, to, jammed);
        self.1.on_gap(from, to, jammed);
    }

    fn sample_period(&self) -> Option<u64> {
        match (self.0.sample_period(), self.1.sample_period()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_sample(&mut self, sample: &EngineSample) {
        self.0.on_sample(sample);
        self.1.on_sample(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        injects: u32,
        departs: u32,
        observes: u32,
        slots: u32,
        gaps: u32,
    }

    impl Hooks<u8> for Counter {
        fn on_inject(&mut self, _t: Slot, _id: PacketId, _s: &u8) {
            self.injects += 1;
        }
        fn on_depart(&mut self, _t: Slot, _id: PacketId, _s: &u8) {
            self.departs += 1;
        }
        fn on_observe(&mut self, _t: Slot, _id: PacketId, _b: &u8, _a: &u8) {
            self.observes += 1;
        }
        fn on_slot(&mut self, _t: Slot, _o: &SlotOutcome) {
            self.slots += 1;
        }
        fn on_gap(&mut self, _f: Slot, _t: Slot, _j: u64) {
            self.gaps += 1;
        }
    }

    #[test]
    fn both_fans_out() {
        let mut both = Both(Counter::default(), Counter::default());
        Hooks::<u8>::on_inject(&mut both, 0, PacketId(0), &0);
        Hooks::<u8>::on_depart(&mut both, 0, PacketId(0), &0);
        Hooks::<u8>::on_observe(&mut both, 0, PacketId(0), &0, &1);
        Hooks::<u8>::on_slot(&mut both, 0, &SlotOutcome::Empty);
        Hooks::<u8>::on_gap(&mut both, 0, 5, 1);
        for c in [&both.0, &both.1] {
            assert_eq!(
                (c.injects, c.departs, c.observes, c.slots, c.gaps),
                (1, 1, 1, 1, 1)
            );
        }
    }

    #[test]
    fn no_hooks_is_callable() {
        let mut h = NoHooks;
        Hooks::<u8>::on_inject(&mut h, 0, PacketId(0), &0);
        Hooks::<u8>::on_gap(&mut h, 0, 1, 0);
    }

    struct Sampler {
        period: u64,
        samples: u32,
    }

    impl Hooks<u8> for Sampler {
        fn sample_period(&self) -> Option<u64> {
            Some(self.period)
        }
        fn on_sample(&mut self, _s: &EngineSample) {
            self.samples += 1;
        }
    }

    fn zero_sample() -> EngineSample {
        EngineSample {
            slot: 0,
            event_slots: 0,
            backlog: 0,
            arrivals: 0,
            successes: 0,
            active_slots: 0,
            empty_active: 0,
            collision_slots: 0,
            jammed_active: 0,
            sends: 0,
            listens: 0,
            overhead_slots: 0,
            contention: 0.0,
            footprint_bytes: 0,
            state_bytes: 0,
        }
    }

    #[test]
    fn sample_period_defaults_off_and_both_takes_min() {
        assert_eq!(Hooks::<u8>::sample_period(&NoHooks), None);
        let a = Sampler {
            period: 64,
            samples: 0,
        };
        let b = Sampler {
            period: 16,
            samples: 0,
        };
        let mut both = Both(a, b);
        assert_eq!(Hooks::<u8>::sample_period(&both), Some(16));
        Hooks::<u8>::on_sample(&mut both, &zero_sample());
        assert_eq!((both.0.samples, both.1.samples), (1, 1));
        // One-sided: the present period wins.
        let one = Both(
            NoHooks,
            Sampler {
                period: 8,
                samples: 0,
            },
        );
        assert_eq!(Hooks::<u8>::sample_period(&one), Some(8));
    }

    #[test]
    fn sample_implicit_throughput_matches_totals_convention() {
        let mut s = zero_sample();
        assert_eq!(s.implicit_throughput(), 1.0, "0/0 => 1");
        s.arrivals = 4;
        s.jammed_active = 2;
        s.active_slots = 12;
        assert!((s.implicit_throughput() - 0.5).abs() < 1e-12);
    }
}
