//! Run accounting: totals, per-packet statistics, and time series.
//!
//! Terminology follows the paper (§1.1):
//! * a slot is **active** if ≥ 1 packet is in the system during it; `S_t`
//!   counts active slots;
//! * **throughput** at the end of a finite run is `(T + J) / S` where `T`
//!   counts successes and `J` jammed (active) slots;
//! * **implicit throughput** at slot `t` is `(N_t + J_t) / S_t` where `N_t`
//!   counts arrivals so far.
//!
//! Jammed slots during *inactive* periods are ignored — no algorithm is
//! being measured there and the paper's metrics only ever divide by active
//! slots.

use crate::feedback::SlotOutcome;
use crate::packet::{PacketId, PacketStats};
use crate::time::Slot;

/// Cumulative counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Packets injected so far (`N_t`).
    pub arrivals: u64,
    /// Packets delivered so far (`T_t`).
    pub successes: u64,
    /// Active slots so far (`S_t`).
    pub active_slots: u64,
    /// Jammed active slots so far (`J_t`).
    pub jammed_active: u64,
    /// Active slots with zero senders and no jam.
    pub empty_active: u64,
    /// Active slots with ≥ 2 senders and no jam.
    pub collision_slots: u64,
    /// Total transmissions (channel accesses that sent).
    pub sends: u64,
    /// Total pure listens (channel accesses that did not send).
    pub listens: u64,
    /// Largest backlog observed.
    pub max_backlog: u64,
    /// Last slot index the engine processed.
    pub last_slot: Slot,
    /// Extra *physical* slots charged by the feedback model (e.g. costly
    /// collisions dilating the clock). Deliberately outside the logical
    /// partition: `active_slots == empty_active + successes +
    /// collision_slots + jammed_active` holds regardless of overhead.
    pub overhead_slots: u64,
}

impl Totals {
    /// `(T + J) / S` — the paper's throughput with jamming (0/0 ⇒ 1).
    pub fn throughput(&self) -> f64 {
        if self.active_slots == 0 {
            1.0
        } else {
            (self.successes + self.jammed_active) as f64 / self.active_slots as f64
        }
    }

    /// `T / S` — throughput ignoring the jam credit (0/0 ⇒ 1).
    pub fn clean_throughput(&self) -> f64 {
        if self.active_slots == 0 {
            1.0
        } else {
            self.successes as f64 / self.active_slots as f64
        }
    }

    /// `(N_t + J_t) / S_t` — implicit throughput (0/0 ⇒ 1).
    pub fn implicit_throughput(&self) -> f64 {
        if self.active_slots == 0 {
            1.0
        } else {
            (self.arrivals + self.jammed_active) as f64 / self.active_slots as f64
        }
    }

    /// Total channel accesses.
    pub fn accesses(&self) -> u64 {
        self.sends + self.listens
    }

    /// Packets still in the system.
    pub fn backlog(&self) -> u64 {
        self.arrivals - self.successes
    }
}

/// One sample of the run's trajectory, taken at geometrically spaced
/// active-slot checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Wall-clock slot of the sample.
    pub slot: Slot,
    /// Active slots so far (the x-axis of the paper's implicit-throughput
    /// statements: "at the t-th active slot").
    pub active_slots: u64,
    /// Arrivals so far.
    pub arrivals: u64,
    /// Jammed active slots so far.
    pub jammed_active: u64,
    /// Packets in the system.
    pub backlog: u64,
    /// Total sends so far.
    pub sends: u64,
    /// Total listens so far.
    pub listens: u64,
    /// Extra physical slots charged by the feedback model so far (costly-
    /// collision clock dilation; 0 under ternary and no-CD channels).
    pub overhead_slots: u64,
    /// Contention `C(t)` at the sample.
    pub contention: f64,
}

impl SeriesPoint {
    /// Implicit throughput `(N_t + J_t) / S_t` at this sample.
    pub fn implicit_throughput(&self) -> f64 {
        if self.active_slots == 0 {
            1.0
        } else {
            (self.arrivals + self.jammed_active) as f64 / self.active_slots as f64
        }
    }
}

/// What to record beyond totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// Record a [`PacketStats`] entry per packet (memory: O(arrivals)).
    pub per_packet: bool,
    /// Record a [`SeriesPoint`] whenever active slots cross checkpoints
    /// spaced by this factor (`None` disables the series).
    pub series_factor: Option<f64>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            per_packet: true,
            series_factor: None,
        }
    }
}

impl MetricsConfig {
    /// Totals only — the cheapest configuration.
    pub fn totals_only() -> Self {
        MetricsConfig {
            per_packet: false,
            series_factor: None,
        }
    }

    /// Enables the trajectory series with checkpoint spacing `factor`
    /// (e.g. `1.2` ⇒ samples at active-slot counts 1, 2, 3, …, ~⌈1.2ᵏ⌉).
    pub fn with_series(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "series factor must exceed 1");
        self.series_factor = Some(factor);
        self
    }
}

/// Mutable accounting state used by the engines.
#[derive(Debug, Clone)]
pub struct Metrics {
    cfg: MetricsConfig,
    /// Cumulative counters (public for cheap read access by engines/views).
    pub totals: Totals,
    per_packet: Vec<PacketStats>,
    series: Vec<SeriesPoint>,
    next_checkpoint: u64,
}

impl Metrics {
    /// Creates empty accounting state.
    pub fn new(cfg: MetricsConfig) -> Self {
        Metrics {
            cfg,
            totals: Totals::default(),
            per_packet: Vec::new(),
            series: Vec::new(),
            next_checkpoint: 1,
        }
    }

    /// Registers an injected packet; returns its id.
    pub fn note_inject(&mut self, t: Slot) -> PacketId {
        let id = PacketId(self.totals.arrivals as u32);
        self.totals.arrivals += 1;
        let backlog = self.totals.backlog();
        if backlog > self.totals.max_backlog {
            self.totals.max_backlog = backlog;
        }
        if self.cfg.per_packet {
            self.per_packet.push(PacketStats::new(t));
        }
        id
    }

    /// Accounts one resolved active slot.
    pub fn note_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.totals.active_slots += 1;
        self.totals.last_slot = t;
        match outcome {
            SlotOutcome::Empty => self.totals.empty_active += 1,
            SlotOutcome::Success { .. } => self.totals.successes += 1,
            SlotOutcome::Collision { .. } => self.totals.collision_slots += 1,
            SlotOutcome::Jammed { .. } => self.totals.jammed_active += 1,
        }
    }

    /// Accounts extra physical slots charged by the feedback model for the
    /// slot just resolved (no-op for `extra == 0`, the ternary steady state).
    #[inline]
    pub fn note_overhead(&mut self, extra: u64) {
        self.totals.overhead_slots += extra;
    }

    /// Accounts a gap `[from, to)` of slots in which no packet accessed the
    /// channel. `active` says whether packets were in the system (constant
    /// across the gap); `jammed` is the number of jammed slots in the gap.
    pub fn note_gap(&mut self, from: Slot, to: Slot, active: bool, jammed: u64) {
        debug_assert!(to >= from);
        let len = to - from;
        if len == 0 {
            return;
        }
        if active {
            self.totals.active_slots += len;
            self.totals.jammed_active += jammed;
            self.totals.empty_active += len - jammed;
            // Inactive gaps are not simulated (the dense engine never visits
            // them), so only active gaps advance the clock watermark.
            self.totals.last_slot = to.saturating_sub(1);
        }
    }

    /// Accounts a transmission by `id`.
    pub fn note_send(&mut self, id: PacketId) {
        self.totals.sends += 1;
        if self.cfg.per_packet {
            self.per_packet[id.index()].sends += 1;
        }
    }

    /// Accounts a pure listen by `id`.
    pub fn note_listen(&mut self, id: PacketId) {
        self.totals.listens += 1;
        if self.cfg.per_packet {
            self.per_packet[id.index()].listens += 1;
        }
    }

    /// Accounts bulk sends/listens without per-packet attribution (grouped
    /// engine).
    pub fn note_bulk_accesses(&mut self, sends: u64, listens: u64) {
        self.totals.sends += sends;
        self.totals.listens += listens;
    }

    /// Sets `id`'s pure-listen count to `lifetime_slots − sends` without
    /// touching aggregate counters.
    ///
    /// Used by the grouped engine, where aggregate listens are accounted in
    /// bulk per slot and per-packet listens are reconstructed from lifetimes
    /// (every-slot listeners access the channel once per slot of life).
    pub fn reconcile_listens(&mut self, id: PacketId, lifetime_slots: u64) {
        if self.cfg.per_packet {
            let p = &mut self.per_packet[id.index()];
            p.listens = lifetime_slots
                .saturating_sub(p.sends as u64)
                .min(u32::MAX as u64) as u32;
        }
    }

    /// Marks `id` as departed in slot `t`.
    pub fn note_depart(&mut self, id: PacketId, t: Slot) {
        if self.cfg.per_packet {
            self.per_packet[id.index()].departed = Some(t);
        }
    }

    /// Takes a series sample if the active-slot count crossed a checkpoint.
    pub fn maybe_checkpoint(&mut self, slot: Slot, backlog: u64, contention: f64) {
        let Some(factor) = self.cfg.series_factor else {
            return;
        };
        if self.totals.active_slots < self.next_checkpoint {
            return;
        }
        self.series.push(SeriesPoint {
            slot,
            active_slots: self.totals.active_slots,
            arrivals: self.totals.arrivals,
            jammed_active: self.totals.jammed_active,
            backlog,
            sends: self.totals.sends,
            listens: self.totals.listens,
            overhead_slots: self.totals.overhead_slots,
            contention,
        });
        let mut next = (self.next_checkpoint as f64 * factor) as u64;
        if next <= self.totals.active_slots {
            next = self.totals.active_slots + 1;
        }
        self.next_checkpoint = next;
    }

    /// Finalizes into an immutable [`RunResult`].
    pub fn finish(self, seed: u64) -> RunResult {
        RunResult {
            seed,
            totals: self.totals,
            per_packet: if self.cfg.per_packet {
                Some(self.per_packet)
            } else {
                None
            },
            series: self.series,
        }
    }
}

/// Immutable outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Cumulative counters at the end of the run.
    pub totals: Totals,
    /// Per-packet lifetime statistics, if recorded.
    pub per_packet: Option<Vec<PacketStats>>,
    /// Trajectory samples, if recorded.
    pub series: Vec<SeriesPoint>,
}

impl RunResult {
    /// Channel accesses per *delivered* packet.
    ///
    /// Returns an empty vector when per-packet stats were not recorded.
    pub fn access_counts(&self) -> Vec<u64> {
        self.per_packet
            .as_deref()
            .map(|ps| {
                ps.iter()
                    .filter(|p| p.departed.is_some())
                    .map(|p| p.accesses())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Latencies (injection → success, inclusive) of delivered packets.
    pub fn latencies(&self) -> Vec<u64> {
        self.per_packet
            .as_deref()
            .map(|ps| ps.iter().filter_map(|p| p.latency()).collect())
            .unwrap_or_default()
    }

    /// Whether every injected packet was delivered.
    pub fn drained(&self) -> bool {
        self.totals.backlog() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_definitions() {
        let t = Totals {
            arrivals: 10,
            successes: 8,
            active_slots: 20,
            jammed_active: 2,
            ..Totals::default()
        };
        assert!((t.throughput() - 0.5).abs() < 1e-12);
        assert!((t.clean_throughput() - 0.4).abs() < 1e-12);
        assert!((t.implicit_throughput() - 0.6).abs() < 1e-12);
        assert_eq!(t.backlog(), 2);
    }

    #[test]
    fn empty_run_throughput_is_one() {
        let t = Totals::default();
        assert_eq!(t.throughput(), 1.0);
        assert_eq!(t.implicit_throughput(), 1.0);
    }

    #[test]
    fn inject_assigns_dense_ids_and_tracks_backlog() {
        let mut m = Metrics::new(MetricsConfig::default());
        let a = m.note_inject(0);
        let b = m.note_inject(0);
        assert_eq!(a, PacketId(0));
        assert_eq!(b, PacketId(1));
        assert_eq!(m.totals.max_backlog, 2);
        m.note_slot(0, &SlotOutcome::Success { id: a });
        m.note_depart(a, 0);
        assert_eq!(m.totals.backlog(), 1);
    }

    #[test]
    fn slot_classification() {
        let mut m = Metrics::new(MetricsConfig::totals_only());
        m.note_slot(0, &SlotOutcome::Empty);
        m.note_slot(1, &SlotOutcome::Collision { senders: 2 });
        m.note_slot(2, &SlotOutcome::Jammed { senders: 0 });
        assert_eq!(m.totals.active_slots, 3);
        assert_eq!(m.totals.empty_active, 1);
        assert_eq!(m.totals.collision_slots, 1);
        assert_eq!(m.totals.jammed_active, 1);
        assert_eq!(m.totals.last_slot, 2);
    }

    #[test]
    fn overhead_stays_outside_the_active_partition() {
        let mut m = Metrics::new(MetricsConfig::totals_only());
        m.note_slot(0, &SlotOutcome::Collision { senders: 4 });
        m.note_overhead(2);
        m.note_overhead(0);
        let t = m.totals;
        assert_eq!(t.overhead_slots, 2);
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active,
            "overhead must not leak into the logical slot partition"
        );
    }

    #[test]
    fn gap_accounting_active_and_inactive() {
        let mut m = Metrics::new(MetricsConfig::totals_only());
        m.note_gap(10, 20, true, 3);
        assert_eq!(m.totals.active_slots, 10);
        assert_eq!(m.totals.jammed_active, 3);
        assert_eq!(m.totals.empty_active, 7);
        m.note_gap(20, 30, false, 0);
        assert_eq!(m.totals.active_slots, 10, "inactive gaps not counted");
        m.note_gap(30, 30, true, 0); // zero-length is a no-op
        assert_eq!(m.totals.active_slots, 10);
    }

    #[test]
    fn per_packet_attribution() {
        let mut m = Metrics::new(MetricsConfig::default());
        let id = m.note_inject(5);
        m.note_send(id);
        m.note_listen(id);
        m.note_listen(id);
        m.note_slot(9, &SlotOutcome::Success { id });
        m.note_depart(id, 9);
        let r = m.finish(0);
        let ps = r.per_packet.as_ref().unwrap();
        assert_eq!(ps[0].sends, 1);
        assert_eq!(ps[0].listens, 2);
        assert_eq!(r.access_counts(), vec![3]);
        assert_eq!(r.latencies(), vec![5]);
        assert!(r.drained());
    }

    #[test]
    fn series_checkpoints_are_geometric() {
        let mut m = Metrics::new(MetricsConfig::totals_only().with_series(2.0));
        for t in 0..100u64 {
            m.note_slot(t, &SlotOutcome::Empty);
            m.maybe_checkpoint(t, 1, 0.5);
        }
        let r = m.finish(0);
        let xs: Vec<u64> = r.series.iter().map(|p| p.active_slots).collect();
        assert_eq!(xs, vec![1, 2, 4, 8, 16, 32, 64]);
        assert!(r.series.iter().all(|p| (p.contention - 0.5).abs() < 1e-12));
    }

    #[test]
    fn series_carries_overhead_slots() {
        let mut m = Metrics::new(MetricsConfig::totals_only().with_series(2.0));
        m.note_slot(0, &SlotOutcome::Collision { senders: 3 });
        m.note_overhead(5);
        m.maybe_checkpoint(0, 3, 1.5);
        m.note_slot(1, &SlotOutcome::Empty);
        m.maybe_checkpoint(1, 3, 1.5);
        let r = m.finish(0);
        let ov: Vec<u64> = r.series.iter().map(|p| p.overhead_slots).collect();
        assert_eq!(ov, vec![5, 5], "samples snapshot cumulative overhead");
    }

    #[test]
    fn series_disabled_records_nothing() {
        let mut m = Metrics::new(MetricsConfig::totals_only());
        m.note_slot(0, &SlotOutcome::Empty);
        m.maybe_checkpoint(0, 1, 0.0);
        assert!(m.finish(0).series.is_empty());
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn bad_series_factor_panics() {
        let _ = MetricsConfig::default().with_series(1.0);
    }
}
