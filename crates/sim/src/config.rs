//! Run configuration shared by all engines.

use crate::arrivals::ArrivalProcess;
use crate::metrics::MetricsConfig;
use crate::rng::SimRng;
use crate::time::Slot;
use crate::view::SystemView;

/// Safety limits for a run.
///
/// Runs normally end when every injected packet has been delivered and the
/// arrival process is exhausted; the limits below bound runaway executions
/// (infinite streams, degenerate protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Hard cap on the slot clock; the run stops before processing any slot
    /// beyond it.
    pub max_slot: Slot,
    /// Hard cap on resolved event slots (sparse engine) or simulated slots
    /// (dense engines).
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_slot: u64::MAX / 2,
            max_steps: u64::MAX,
        }
    }
}

impl Limits {
    /// Limits that stop the clock after `max_slot`.
    pub fn until_slot(max_slot: Slot) -> Self {
        Limits {
            max_slot,
            ..Limits::default()
        }
    }
}

/// Configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Seed of the run's deterministic RNG.
    pub seed: u64,
    /// What to record.
    pub metrics: MetricsConfig,
    /// Safety limits.
    pub limits: Limits,
}

impl SimConfig {
    /// Default-configured run with the given seed.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            metrics: MetricsConfig::default(),
            limits: Limits::default(),
        }
    }

    /// Replaces the metrics configuration.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Replaces the limits.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

/// Caching adapter between engines and an [`ArrivalProcess`].
///
/// Enforces the consumption contract documented in
/// [`crate::arrivals`]: non-adaptive processes are queried once per event and
/// the result cached; adaptive processes are re-queried with a fresh view on
/// every peek.
#[derive(Debug)]
pub struct ArrivalCursor<A> {
    process: A,
    pending: Option<(Slot, u32)>,
    exhausted: bool,
}

impl<A: ArrivalProcess> ArrivalCursor<A> {
    /// Wraps an arrival process.
    pub fn new(process: A) -> Self {
        ArrivalCursor {
            process,
            pending: None,
            exhausted: false,
        }
    }

    /// The next arrival event at slot ≥ `after`, if any.
    pub fn peek(
        &mut self,
        after: Slot,
        view: &SystemView<'_>,
        rng: &mut SimRng,
    ) -> Option<(Slot, u32)> {
        if self.process.is_adaptive() {
            // Adaptive processes derive plans from the view; never cache.
            return self.process.next_arrival(after, view, rng);
        }
        if self.pending.is_none() && !self.exhausted {
            self.pending = self.process.next_arrival(after, view, rng);
            if self.pending.is_none() {
                self.exhausted = true;
            }
        }
        self.pending
    }

    /// Marks the last peeked event as consumed.
    pub fn consume(&mut self) {
        self.pending = None;
    }

    /// Underlying process (for hints).
    pub fn process(&self) -> &A {
        &self.process
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{BacklogTriggered, Batch};
    use crate::metrics::Totals;

    #[test]
    fn cursor_caches_non_adaptive() {
        let totals = Totals::default();
        let view = SystemView {
            slot: 0,
            backlog: 0,
            contention: 0.0,
            totals: &totals,
        };
        let mut rng = SimRng::new(1);
        let mut c = ArrivalCursor::new(Batch::new(5));
        assert_eq!(c.peek(0, &view, &mut rng), Some((0, 5)));
        // Repeated peeks return the cached event without consuming.
        assert_eq!(c.peek(0, &view, &mut rng), Some((0, 5)));
        c.consume();
        assert_eq!(c.peek(1, &view, &mut rng), None);
        assert_eq!(c.peek(2, &view, &mut rng), None, "exhaustion latches");
    }

    #[test]
    fn cursor_requeries_adaptive() {
        let mut totals = Totals::default();
        let mut rng = SimRng::new(2);
        let mut c = ArrivalCursor::new(BacklogTriggered::new(4, 8));
        {
            let view = SystemView {
                slot: 0,
                backlog: 0,
                contention: 0.0,
                totals: &totals,
            };
            assert_eq!(c.peek(0, &view, &mut rng), Some((0, 4)));
        }
        totals.arrivals = 4;
        {
            let view = SystemView {
                slot: 1,
                backlog: 4,
                contention: 0.0,
                totals: &totals,
            };
            // Busy: the adaptive process now declines, despite earlier Some.
            assert_eq!(c.peek(1, &view, &mut rng), None);
        }
        totals.successes = 4;
        {
            let view = SystemView {
                slot: 2,
                backlog: 0,
                contention: 0.0,
                totals: &totals,
            };
            assert_eq!(c.peek(2, &view, &mut rng), Some((2, 4)));
        }
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::new(7)
            .metrics(MetricsConfig::totals_only())
            .limits(Limits::until_slot(100));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.limits.max_slot, 100);
        assert!(!cfg.metrics.per_packet);
    }
}
