//! The interface between packets and the channel.
//!
//! A [`Protocol`] is the per-packet state machine: each slot it declares an
//! [`Intent`] (sleep / listen / send) and receives an [`Observation`] for
//! every slot it accessed. The adversary never sees inside a protocol; the
//! engines never interpret its state.
//!
//! [`SparseProtocol`] is the refinement that unlocks the exact event-driven
//! engine: protocols whose state is frozen between channel accesses and
//! whose next access time is samplable in closed form. Its defaulted
//! [`observe4`](SparseProtocol::observe4) /
//! [`next_wake4`](SparseProtocol::next_wake4) methods form the batched
//! observe/draw surface: engines feed same-slot listener cohorts through
//! them four at a time, and protocols whose per-listener math vectorizes
//! (window updates, geometric redraws) override them with 4-wide
//! implementations that stay bit-identical to the scalar path.

use crate::feedback::{Intent, Observation};
use crate::rng::SimRng;

/// Lane count of the batched observe/draw protocol surface
/// ([`SparseProtocol::observe4`] / [`SparseProtocol::next_wake4`]).
///
/// Four `f64` lanes fill one AVX register (and two SSE2 registers), which
/// is the widest batch the auto-vectorizer reliably profits from without
/// `std::simd`; the engines chunk listener cohorts at this width and
/// handle the remainder through the scalar methods.
pub const BATCH_LANES: usize = 4;

/// Per-packet contention-resolution state machine.
///
/// Implementations must be cheap to clone (the engines clone state around
/// observations so analysis hooks can see before/after pairs).
pub trait Protocol: Clone {
    /// Samples the packet's action for the current slot.
    ///
    /// Called exactly once per slot per active packet by dense engines.
    fn intent(&mut self, rng: &mut SimRng) -> Intent;

    /// Delivers the outcome of a slot this packet accessed.
    ///
    /// Not called for slots the packet slept through, matching the model: a
    /// sleeping packet learns nothing. A packet that sent and succeeded
    /// departs immediately after this call.
    fn observe(&mut self, obs: &Observation);

    /// The packet's current unconditional probability of transmitting in the
    /// next slot.
    ///
    /// Engines maintain the system *contention* `C(t) = Σ_u p_u` (paper
    /// §4.1) incrementally from this value; it must stay constant between
    /// calls to [`Protocol::observe`].
    fn send_probability(&self) -> f64;

    /// Samples the number of slots the packet sleeps before its next channel
    /// access, if the protocol can express that wait in closed form.
    ///
    /// This is the hook the event-driven engines schedule from: a packet
    /// returning `Some(delay)` at a moment where the first candidate slot is
    /// `s` promises to sleep through `delay` slots and access the channel in
    /// slot `s + delay` (the engine chooses `s` as the injection slot for
    /// fresh packets and `t + 1` after an access in slot `t`). `None` — the
    /// default — means the wait is not statically samplable; engines that
    /// require event scheduling treat such a packet as never waking on its
    /// own, and the slot-stepping engines never call this method, so the
    /// default preserves the dense slot-by-slot behaviour exactly.
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        let _ = rng;
        None
    }
}

/// A protocol whose behaviour between channel accesses is statically
/// samplable, enabling exact event-driven simulation.
///
/// # Contract
///
/// * The state (and therefore [`Protocol::send_probability`]) changes only
///   inside [`Protocol::observe`].
/// * [`Protocol::next_wake`] returns `Some(delay)` for every reachable
///   state (a `None` is treated by the event-driven engines as "never wakes
///   again", which is only meaningful for degenerate protocols).
/// * The marginal distribution of (access slots, send decisions) induced by
///   [`Protocol::next_wake`] and
///   [`send_on_access`](SparseProtocol::send_on_access) must equal that
///   induced by [`Protocol::intent`]; the cross-engine equivalence tests
///   enforce this statistically.
pub trait SparseProtocol: Protocol {
    /// Given that the packet accesses the channel, samples whether it
    /// transmits (otherwise it listens only).
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool;

    /// Delivers the same observation to four packets at once.
    ///
    /// This is the batched half of the engines' listener *observation
    /// pass*: every lane heard the same slot, so a symmetric protocol can
    /// evaluate four window updates as independent straight-line lanes the
    /// auto-vectorizer overlaps, instead of serializing four scalar
    /// [`Protocol::observe`] calls.
    ///
    /// # Contract
    ///
    /// Must leave every lane in **exactly** the state four scalar
    /// `observe(obs)` calls would (bit-identical floats, not merely close):
    /// the sparse engine uses this method while its reference oracle uses
    /// the scalar path, and `tests/sparse_equivalence.rs` compares complete
    /// `RunResult`s with exact equality. Observations draw no randomness,
    /// so lane order within the batch is unobservable; the default simply
    /// falls back to the scalar method per lane. (The engines fill lanes
    /// in cohort order — the slot's insertion order — but a conforming
    /// implementation never depends on which packet rides which lane.)
    fn observe4(states: &mut [&mut Self; BATCH_LANES], obs: &Observation)
    where
        Self: Sized,
    {
        for s in states.iter_mut() {
            s.observe(obs);
        }
    }

    /// Samples four packets' next-wake delays at once.
    ///
    /// The batched half of the engines' *wake pass*. Unlike
    /// [`observe4`](SparseProtocol::observe4) this consumes randomness, so
    /// the contract pins the order: RNG values must be drawn **in
    /// ascending lane order** (lane 0 first; the engines fill lanes in
    /// cohort order, i.e. the slot's insertion order), with each lane
    /// drawing exactly what its scalar [`Protocol::next_wake`] would
    /// (including lanes that draw nothing), and each lane's returned delay
    /// must be bit-identical to the scalar call's. Overrides typically draw the lanes' uniforms
    /// sequentially and then evaluate the logarithms 4-wide (see
    /// [`geometric4`](crate::dist::geometric4)); the default falls back to
    /// the scalar method per lane.
    fn next_wake4(
        states: &mut [&mut Self; BATCH_LANES],
        rng: &mut SimRng,
    ) -> [Option<u64>; BATCH_LANES]
    where
        Self: Sized,
    {
        let mut out = [None; BATCH_LANES];
        for (o, s) in out.iter_mut().zip(states.iter_mut()) {
            *o = s.next_wake(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::geometric;
    use crate::feedback::Feedback;

    /// Minimal memoryless protocol for exercising the traits: access with
    /// probability `q`, always send on access.
    #[derive(Debug, Clone)]
    struct FixedProb {
        q: f64,
    }

    impl Protocol for FixedProb {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(self.q) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }

        fn observe(&mut self, _obs: &Observation) {}

        fn send_probability(&self) -> f64 {
            self.q
        }

        fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
            Some(geometric(rng, self.q))
        }
    }

    impl SparseProtocol for FixedProb {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            true
        }
    }

    #[test]
    fn fixed_prob_intent_rate_matches_send_probability() {
        let mut p = FixedProb { q: 0.25 };
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let sends = (0..n)
            .filter(|_| matches!(p.intent(&mut rng), Intent::Send))
            .count();
        let rate = sends as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sparse_delay_matches_geometric_mean() {
        let mut p = FixedProb { q: 0.25 };
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| p.next_wake(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        // E[geometric(0.25)] = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn observe_is_callable() {
        let mut p = FixedProb { q: 0.5 };
        p.observe(&Observation {
            slot: 0,
            feedback: Feedback::Empty,
            sent: false,
            succeeded: false,
        });
        assert_eq!(p.send_probability(), 0.5);
    }
}
