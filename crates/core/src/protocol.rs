//! The `LOW-SENSING BACKOFF` protocol (paper Figure 1).
//!
//! Per slot, a packet with window `w`:
//!
//! 1. **listens** with probability `c·ln³(w)/w`;
//! 2. conditioned on listening, **sends** with probability `1/(c·ln³ w)`
//!    — so the unconditional send probability is exactly `1/w`;
//! 3. on hearing **silence** backs on: `w ← max(w/(1+1/(c·ln w)), w_min)`;
//! 4. on hearing **noise** backs off: `w ← w·(1+1/(c·ln w))`.
//!
//! Hearing a *successful* slot (another packet's lone transmission) changes
//! nothing. Sending and listening are deliberately coupled — a sender has
//! already "decided to listen" — which the energy analysis exploits
//! (Theorem 5.25: every listen carries a `1/(c·ln³ w)` chance of being a
//! send, so long listen streaks imply success).

use lowsense_sim::dist::fast_ln;
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

use crate::params::Params;
use crate::window;

/// Per-packet state of `LOW-SENSING BACKOFF`.
///
/// # Examples
///
/// ```
/// use lowsense::{LowSensing, Params};
/// use lowsense_sim::prelude::*;
///
/// let p = LowSensing::new(Params::default());
/// assert_eq!(p.window(), 4.0);
/// // Fresh packets send with probability exactly 1/w_min.
/// assert!((p.send_probability() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowSensing {
    params: Params,
    w: f64,
    // Cached `ln w`, so the window update (which needs the logarithm of the
    // *current* window) costs no transcendental call — `observe` computes
    // exactly one `ln`, for the new window.
    ln_w: f64,
    // Cached per-slot probabilities; recomputed only on window changes.
    p_listen: f64,
    p_send_given_listen: f64,
    // Cached `1 / ln(1 - p_listen)`, so sampling the next access delay
    // costs one (fast) `ln` of the uniform and a multiply instead of two
    // `ln`s and a divide. Zero in the degenerate cases the draw guards
    // handle (`p_listen` outside `(0, 1)`).
    inv_ln_q_listen: f64,
}

impl LowSensing {
    /// A freshly injected packet: window starts at `w_min`.
    pub fn new(params: Params) -> Self {
        Self::with_window(params, params.w_min())
    }

    /// A packet with an explicit starting window (clamped to `≥ w_min`);
    /// used by tests and ablations.
    pub fn with_window(params: Params, w: f64) -> Self {
        let w = w.max(params.w_min());
        let mut p = LowSensing {
            params,
            w,
            ln_w: 0.0,
            p_listen: 0.0,
            p_send_given_listen: 0.0,
            inv_ln_q_listen: 0.0,
        };
        p.recompute();
        p
    }

    fn recompute(&mut self) {
        self.ln_w = fast_ln(self.w);
        self.p_listen = self.params.listen_probability_ln(self.w, self.ln_w);
        self.p_send_given_listen = self.params.send_probability_given_listen_ln(self.ln_w);
        self.inv_ln_q_listen = if self.p_listen <= 0.0 || self.p_listen >= 1.0 {
            // Degenerate: `next_wake` short-circuits before using this.
            0.0
        } else if self.p_listen < 1e-8 {
            // `1 - p` rounds to 1 here; `ln_1p` keeps full precision.
            1.0 / (-self.p_listen).ln_1p()
        } else {
            1.0 / fast_ln(1.0 - self.p_listen)
        };
    }

    /// Current window size `w_u(t)`.
    #[inline]
    pub fn window(&self) -> f64 {
        self.w
    }

    /// The parameters this packet runs with.
    #[inline]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Probability of accessing the channel (listening) this slot.
    #[inline]
    pub fn access_probability(&self) -> f64 {
        self.p_listen
    }
}

impl Protocol for LowSensing {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if !rng.bernoulli(self.p_listen) {
            return Intent::Sleep;
        }
        if rng.bernoulli(self.p_send_given_listen) {
            Intent::Send
        } else {
            Intent::Listen
        }
    }

    fn observe(&mut self, obs: &Observation) {
        let new_w = match obs.feedback {
            Feedback::Empty => window::back_on_ln(&self.params, self.w, self.ln_w),
            Feedback::Noisy => window::back_off_ln(&self.params, self.w, self.ln_w),
            // Someone else's success: no update (Figure 1 has rules only for
            // silent and noisy slots). Our own success departs us anyway.
            Feedback::Success => return,
        };
        if new_w == self.w {
            // Back-on clamped at the floor: the window (and every cached
            // derived probability) is unchanged, so skip the recompute.
            return;
        }
        self.w = new_w;
        self.recompute();
    }

    fn send_probability(&self) -> f64 {
        self.p_listen * self.p_send_given_listen
    }

    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // Exact inversion sampling, `k = ⌊ln U / ln(1-p_listen)⌋`, like
        // `dist::geometric` — but with the logarithm of `1-p` cached as a
        // reciprocal and `fast_ln` for the uniform, this is one inlined
        // transcendental per draw. The guards mirror `geometric`'s.
        if self.p_listen >= 1.0 {
            return Some(0);
        }
        if self.p_listen <= 0.0 {
            return Some(u64::MAX);
        }
        let u = 1.0 - rng.f64();
        let k = fast_ln(u) * self.inv_ln_q_listen;
        Some(if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        })
    }
}

impl SparseProtocol for LowSensing {
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p_send_given_listen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> LowSensing {
        LowSensing::new(Params::default())
    }

    fn obs(feedback: Feedback) -> Observation {
        Observation {
            slot: 0,
            feedback,
            sent: false,
            succeeded: false,
        }
    }

    #[test]
    fn send_probability_is_one_over_w() {
        let mut p = fresh();
        for _ in 0..200 {
            assert!(
                (p.send_probability() - 1.0 / p.window()).abs() < 1e-12,
                "w={}",
                p.window()
            );
            p.observe(&obs(Feedback::Noisy));
        }
    }

    #[test]
    fn noisy_grows_empty_shrinks_success_noops() {
        let mut p = fresh();
        let w0 = p.window();
        p.observe(&obs(Feedback::Noisy));
        let w1 = p.window();
        assert!(w1 > w0);
        p.observe(&obs(Feedback::Success));
        assert_eq!(p.window(), w1, "success leaves the window unchanged");
        p.observe(&obs(Feedback::Empty));
        assert!(p.window() < w1);
    }

    #[test]
    fn window_never_below_minimum() {
        let mut p = fresh();
        for _ in 0..50 {
            p.observe(&obs(Feedback::Empty));
            assert!(p.window() >= p.params().w_min());
        }
        assert_eq!(p.window(), p.params().w_min());
    }

    #[test]
    fn intent_rates_match_probabilities() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(1);
        let n = 400_000;
        let (mut sends, mut listens) = (0u64, 0u64);
        for _ in 0..n {
            match p.intent(&mut rng) {
                Intent::Send => sends += 1,
                Intent::Listen => listens += 1,
                Intent::Sleep => {}
            }
        }
        let access_rate = (sends + listens) as f64 / n as f64;
        let send_rate = sends as f64 / n as f64;
        assert!(
            (access_rate - p.access_probability()).abs() < 0.005,
            "access {access_rate} vs {}",
            p.access_probability()
        );
        assert!(
            (send_rate - 1.0 / 64.0).abs() < 0.002,
            "send {send_rate} vs {}",
            1.0 / 64.0
        );
    }

    #[test]
    fn sparse_delay_matches_access_probability() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| p.next_wake(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p.access_probability()) / p.access_probability();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn sparse_send_on_access_rate() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let sends = (0..n).filter(|_| p.send_on_access(&mut rng)).count();
        let rate = sends as f64 / n as f64;
        let expect = p.params().send_probability_given_listen(64.0);
        assert!((rate - expect).abs() < 0.005, "rate {rate} expect {expect}");
    }

    #[test]
    fn listening_dominates_sending_at_large_windows() {
        // "Fully energy-efficient" hinges on listens being rare too: the
        // access probability c·ln³(w)/w vanishes as w grows.
        let p = LowSensing::with_window(Params::default(), 1e6);
        assert!(p.access_probability() < 0.002);
        assert!(p.send_probability() < 2e-6);
    }

    #[test]
    fn with_window_clamps() {
        let p = LowSensing::with_window(Params::default(), 1.0);
        assert_eq!(p.window(), 4.0);
    }
}
