//! The `LOW-SENSING BACKOFF` protocol (paper Figure 1).
//!
//! Per slot, a packet with window `w`:
//!
//! 1. **listens** with probability `c·ln³(w)/w`;
//! 2. conditioned on listening, **sends** with probability `1/(c·ln³ w)`
//!    — so the unconditional send probability is exactly `1/w`;
//! 3. on hearing **silence** backs on: `w ← max(w/(1+1/(c·ln w)), w_min)`;
//! 4. on hearing **noise** backs off: `w ← w·(1+1/(c·ln w))`.
//!
//! Hearing a *successful* slot (another packet's lone transmission) changes
//! nothing. Sending and listening are deliberately coupled — a sender has
//! already "decided to listen" — which the energy analysis exploits
//! (Theorem 5.25: every listen carries a `1/(c·ln³ w)` chance of being a
//! send, so long listen streaks imply success).
//!
//! # Representation: the quantized window ladder
//!
//! The window is not stored as a float. Since it only moves by the
//! multiplicative back-off/back-on steps above, the reachable windows form
//! a discrete [`crate::ladder`] precomputed once per parameter set:
//! the state is a **level index**, a window update is a level
//! increment/decrement plus a 3-value gather from a 32-byte table row, and
//! the steady state runs with **zero** `ln` calls and **zero** divides —
//! the only transcendental left is the `ln U` of the wake draw (one
//! [`fast_ln`](lowsense_sim::dist::fast_ln) multiply via
//! [`geometric_inv`]). See `crates/core/src/ladder.rs` and
//! docs/ARCHITECTURE.md § "The quantized window ladder" for why the
//! quantization preserves the analysis's invariants.

use lowsense_sim::dist::{geometric4_inv, geometric_inv};
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

use crate::ladder::{self, Ladder};
use crate::params::Params;

/// Per-packet state of `LOW-SENSING BACKOFF`.
///
/// # Examples
///
/// ```
/// use lowsense::{LowSensing, Params};
/// use lowsense_sim::prelude::*;
///
/// let p = LowSensing::new(Params::default());
/// assert_eq!(p.window(), 4.0);
/// // Fresh packets send with probability exactly 1/w_min.
/// assert!((p.send_probability() - 0.25).abs() < 1e-12);
/// ```
// 40 bytes of live state (ladder pointer, level, three cached row values),
// 64-byte aligned so the event-driven engines' scattered per-listener table
// accesses touch exactly one cache line. The row values are cached inline
// (rather than re-read through the ladder on every `intent`/draw) so the
// non-observing hot calls are pure field reads; `observe` refreshes them
// with a 3-gather from the new level's row.
#[derive(Clone, Copy)]
#[repr(align(64))]
pub struct LowSensing {
    ladder: &'static Ladder,
    level: u32,
    // Cached copies of the current rung's row; bit-identical to
    // `ladder.row(level)` at all times.
    p_listen: f64,
    p_send_given_listen: f64,
    inv_ln_q_listen: f64,
}

impl LowSensing {
    /// A freshly injected packet: window starts at `w_min`.
    pub fn new(params: Params) -> Self {
        Self::with_window(params, params.w_min())
    }

    /// A packet with an explicit starting window (clamped to `≥ w_min`);
    /// used by tests and ablations. The starting window becomes the
    /// ladder's anchor rung, so `window()` reports it exactly.
    pub fn with_window(params: Params, w: f64) -> Self {
        let ladder = ladder::shared(params, w);
        let level = ladder.anchor_level();
        let row = ladder.row(level);
        LowSensing {
            ladder,
            level,
            p_listen: row.p_listen,
            p_send_given_listen: row.p_send_given_listen,
            inv_ln_q_listen: row.inv_ln_q_listen,
        }
    }

    /// Current window size `w_u(t)`.
    #[inline]
    pub fn window(&self) -> f64 {
        self.ladder.row(self.level).w
    }

    /// The parameters this packet runs with.
    #[inline]
    pub fn params(&self) -> &Params {
        self.ladder.params()
    }

    /// The interned window ladder this packet steps along.
    #[inline]
    pub fn ladder(&self) -> &'static Ladder {
        self.ladder
    }

    /// Current rung index on [`LowSensing::ladder`] (0 = the `w_min`
    /// floor).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Probability of accessing the channel (listening) this slot.
    #[inline]
    pub fn access_probability(&self) -> f64 {
        self.p_listen
    }

    /// Moves to `level` and refreshes the cached row values.
    #[inline]
    fn set_level(&mut self, level: u32) {
        let row = self.ladder.row(level);
        self.level = level;
        self.p_listen = row.p_listen;
        self.p_send_given_listen = row.p_send_given_listen;
        self.inv_ln_q_listen = row.inv_ln_q_listen;
    }
}

// The ladder reference compares by identity: `ladder::shared` interns one
// table per (params, anchor), so two packets on the same ladder pointer
// have the same parameters, and equal levels then imply equal windows. The
// cached floats are compared too, pinning the "inline cache matches the
// row" invariant in tests that compare whole states.
impl PartialEq for LowSensing {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.ladder, other.ladder)
            && self.level == other.level
            && self.p_listen == other.p_listen
            && self.p_send_given_listen == other.p_send_given_listen
            && self.inv_ln_q_listen == other.inv_ln_q_listen
    }
}

impl std::fmt::Debug for LowSensing {
    // Manual: deriving would dump the whole interned ladder into every
    // assertion message.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LowSensing")
            .field("params", self.params())
            .field("level", &self.level)
            .field("w", &self.window())
            .field("p_listen", &self.p_listen)
            .field("p_send_given_listen", &self.p_send_given_listen)
            .field("inv_ln_q_listen", &self.inv_ln_q_listen)
            .finish()
    }
}

impl Protocol for LowSensing {
    #[inline]
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if !rng.bernoulli(self.p_listen) {
            return Intent::Sleep;
        }
        if rng.bernoulli(self.p_send_given_listen) {
            Intent::Send
        } else {
            Intent::Listen
        }
    }

    #[inline]
    fn observe(&mut self, obs: &Observation) {
        // Transcendental-free, divide-free window update: one rung up or
        // down the precomputed ladder, clamped at the `w_min` floor (rung
        // 0) and the saturation rung (top).
        //
        // `obs.feedback` is whatever the run's `FeedbackModel` reports —
        // the algorithm assumes the paper's full-sensing ternary channel.
        // Under no-collision-detection it still runs, but collisions
        // arrive as `Empty` and the update walks the wrong way (contention
        // reads as silence); that degradation is measured, not corrected,
        // by the feedback-grid campaign.
        let new_level = match obs.feedback {
            Feedback::Empty => self.level.saturating_sub(1),
            Feedback::Noisy => (self.level + 1).min(self.ladder.top_level()),
            // Someone else's success: no update (Figure 1 has rules only for
            // silent and noisy slots). Our own success departs us anyway.
            Feedback::Success => return,
        };
        if new_level == self.level {
            // Clamped at the floor (or parked on the saturation rung): the
            // window and every cached derived probability are unchanged.
            return;
        }
        self.set_level(new_level);
    }

    #[inline]
    fn send_probability(&self) -> f64 {
        self.p_listen * self.p_send_given_listen
    }

    #[inline]
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // Exact inversion sampling, `k = ⌊ln U / ln(1-p_listen)⌋`, with the
        // logarithm of `1-p` cached (pre-inverted) in the ladder row: one
        // inlined transcendental and one multiply per draw.
        Some(geometric_inv(rng, self.p_listen, self.inv_ln_q_listen))
    }
}

impl SparseProtocol for LowSensing {
    #[inline]
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p_send_given_listen)
    }

    // No `observe4` override: the scalar `observe` is a level step plus a
    // 3-value gather — straight-line integer/load work with nothing left to
    // batch — so the trait's default (four scalar calls, trivially
    // bit-identical) is already optimal. PR 5's hand-maintained 4-wide copy
    // of the window recompute is gone with the recompute itself; the single
    // source of the derived-row arithmetic is `ladder::derive`.

    #[inline]
    fn next_wake4(states: &mut [&mut Self; 4], rng: &mut SimRng) -> [Option<u64>; 4] {
        // Uniforms are drawn in ascending lane order, degenerate lanes
        // drawing nothing, and the four `ln U` evaluations are 4-wide —
        // `geometric4_inv` is bit-identical per lane to the scalar
        // `next_wake`, which the batch contract requires.
        let p_listen = [
            states[0].p_listen,
            states[1].p_listen,
            states[2].p_listen,
            states[3].p_listen,
        ];
        let inv = [
            states[0].inv_ln_q_listen,
            states[1].inv_ln_q_listen,
            states[2].inv_ln_q_listen,
            states[3].inv_ln_q_listen,
        ];
        geometric4_inv(rng, p_listen, inv).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> LowSensing {
        LowSensing::new(Params::default())
    }

    fn obs(feedback: Feedback) -> Observation {
        Observation {
            slot: 0,
            feedback,
            sent: false,
            succeeded: false,
        }
    }

    #[test]
    fn send_probability_is_one_over_w() {
        let mut p = fresh();
        for _ in 0..200 {
            assert!(
                (p.send_probability() - 1.0 / p.window()).abs() < 1e-12,
                "w={}",
                p.window()
            );
            p.observe(&obs(Feedback::Noisy));
        }
    }

    #[test]
    fn noisy_grows_empty_shrinks_success_noops() {
        let mut p = fresh();
        let w0 = p.window();
        p.observe(&obs(Feedback::Noisy));
        let w1 = p.window();
        assert!(w1 > w0);
        p.observe(&obs(Feedback::Success));
        assert_eq!(p.window(), w1, "success leaves the window unchanged");
        p.observe(&obs(Feedback::Empty));
        assert!(p.window() < w1);
    }

    #[test]
    fn back_on_exactly_inverts_back_off() {
        // The quantization's defining property (the continuous update only
        // round-tripped approximately): up-then-down restores the exact
        // prior state, bit for bit.
        let mut p = fresh();
        for _ in 0..7 {
            p.observe(&obs(Feedback::Noisy));
        }
        let before = p;
        p.observe(&obs(Feedback::Noisy));
        p.observe(&obs(Feedback::Empty));
        assert_eq!(p, before);
        assert_eq!(p.window().to_bits(), before.window().to_bits());
    }

    #[test]
    fn window_never_below_minimum() {
        let mut p = fresh();
        for _ in 0..50 {
            p.observe(&obs(Feedback::Empty));
            assert!(p.window() >= p.params().w_min());
        }
        assert_eq!(p.window(), p.params().w_min());
    }

    #[test]
    fn window_saturates_at_the_ladder_top() {
        let mut p = fresh();
        let top = p.ladder().top_level();
        for _ in 0..(top as u64 + 100) {
            p.observe(&obs(Feedback::Noisy));
        }
        assert_eq!(p.level(), top);
        let w_top = p.window();
        p.observe(&obs(Feedback::Noisy));
        assert_eq!(p.window(), w_top, "noise at the top rung is a no-op");
        // The saturation rung is unobservable in any simulable horizon.
        assert!(p.access_probability() <= 1e-21);
    }

    #[test]
    fn intent_rates_match_probabilities() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(1);
        let n = 400_000;
        let (mut sends, mut listens) = (0u64, 0u64);
        for _ in 0..n {
            match p.intent(&mut rng) {
                Intent::Send => sends += 1,
                Intent::Listen => listens += 1,
                Intent::Sleep => {}
            }
        }
        let access_rate = (sends + listens) as f64 / n as f64;
        let send_rate = sends as f64 / n as f64;
        assert!(
            (access_rate - p.access_probability()).abs() < 0.005,
            "access {access_rate} vs {}",
            p.access_probability()
        );
        assert!(
            (send_rate - 1.0 / 64.0).abs() < 0.002,
            "send {send_rate} vs {}",
            1.0 / 64.0
        );
    }

    #[test]
    fn sparse_delay_matches_access_probability() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| p.next_wake(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p.access_probability()) / p.access_probability();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn sparse_send_on_access_rate() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let sends = (0..n).filter(|_| p.send_on_access(&mut rng)).count();
        let rate = sends as f64 / n as f64;
        let expect = p.params().send_probability_given_listen(64.0);
        assert!((rate - expect).abs() < 0.005, "rate {rate} expect {expect}");
    }

    #[test]
    fn listening_dominates_sending_at_large_windows() {
        // "Fully energy-efficient" hinges on listens being rare too: the
        // access probability c·ln³(w)/w vanishes as w grows.
        let p = LowSensing::with_window(Params::default(), 1e6);
        assert!(p.access_probability() < 0.002);
        assert!(p.send_probability() < 2e-6);
    }

    #[test]
    fn with_window_clamps() {
        let p = LowSensing::with_window(Params::default(), 1.0);
        assert_eq!(p.window(), 4.0);
    }

    #[test]
    fn cached_row_values_track_the_ladder() {
        // The inline cache must equal the current rung bit-for-bit after
        // any walk.
        let mut p = fresh();
        let mut seq = SimRng::new(11);
        for _ in 0..2_000 {
            let fb = match seq.range_u64(3) {
                0 => Feedback::Empty,
                1 => Feedback::Noisy,
                _ => Feedback::Success,
            };
            p.observe(&obs(fb));
            let row = p.ladder().row(p.level());
            assert_eq!(p.p_listen.to_bits(), row.p_listen.to_bits());
            assert_eq!(
                p.p_send_given_listen.to_bits(),
                row.p_send_given_listen.to_bits()
            );
            assert_eq!(p.inv_ln_q_listen.to_bits(), row.inv_ln_q_listen.to_bits());
        }
    }

    #[test]
    fn batched_lanes_match_scalar_bitwise() {
        // Long mixed feedback walks: after every batched observe4 +
        // next_wake4 round, all four lane states and delays must equal the
        // scalar path's exactly (PartialEq on LowSensing compares the level
        // and every cached float). Clamped parameters (p_listen = 1 at
        // small w) exercise the degenerate no-draw lanes.
        for params in [
            Params::default(),
            Params::new(1.0, 8.0).unwrap(),
            Params::new(2.0, 4.0).unwrap(), // clamps p_listen to 1 near w=e³
        ] {
            let mut scalar: Vec<LowSensing> = (0..4)
                .map(|i| LowSensing::with_window(params, 4.0 + 17.0 * i as f64))
                .collect();
            let mut batched = scalar.clone();
            let mut rng_s = SimRng::new(123);
            let mut rng_b = SimRng::new(123);
            let mut seq = SimRng::new(9);
            for step in 0..3_000 {
                let fb = match seq.range_u64(3) {
                    0 => Feedback::Empty,
                    1 => Feedback::Noisy,
                    _ => Feedback::Success,
                };
                let o = obs(fb);
                let mut delays_s = [None; 4];
                for (lane, p) in scalar.iter_mut().enumerate() {
                    p.observe(&o);
                    delays_s[lane] = p.next_wake(&mut rng_s);
                }
                let [a, b, c, d] = &mut batched[..] else {
                    unreachable!()
                };
                let mut lanes = [a, b, c, d];
                LowSensing::observe4(&mut lanes, &o);
                let delays_b = LowSensing::next_wake4(&mut lanes, &mut rng_b);
                assert_eq!(delays_s, delays_b, "step {step}");
                assert_eq!(scalar, batched, "step {step}");
            }
            assert_eq!(rng_s.next_u64(), rng_b.next_u64(), "stream lockstep");
        }
    }

    #[test]
    fn no_cd_channel_misreads_collisions_as_silence() {
        // On the no-collision-detection channel a collision is delivered to
        // listeners as `Empty`, so the window update walks *down* — the
        // exact inversion of the full-sensing response. This test pins that
        // documented hazard at the unit level.
        let mut p = fresh();
        p.observe(&obs(Feedback::Noisy));
        let w_backed_off = p.window();
        // What a ternary listener would be told about a collision slot:
        let mut ternary = p;
        ternary.observe(&obs(Feedback::Noisy));
        assert!(ternary.window() > w_backed_off);
        // What a no-CD listener is told about the same collision slot:
        let mut nocd = p;
        nocd.observe(&obs(Feedback::Empty));
        assert!(nocd.window() < w_backed_off);
    }

    #[test]
    fn runs_bounded_and_accounted_on_the_no_cd_channel() {
        // The algorithm must still *run* under the weaker channel — the
        // engines cap the horizon and the accounting stays partitioned —
        // even though draining is not guaranteed there.
        use lowsense_sim::arrivals::Batch;
        use lowsense_sim::config::{Limits, SimConfig};
        use lowsense_sim::engine::run_sparse_model;
        use lowsense_sim::feedback::NoCollisionDetection;
        use lowsense_sim::hooks::NoHooks;
        use lowsense_sim::jamming::NoJam;
        let cfg = SimConfig::new(21).limits(Limits {
            max_slot: 20_000,
            max_steps: u64::MAX,
        });
        let r = run_sparse_model(
            &cfg,
            Batch::new(48),
            NoJam,
            NoCollisionDetection,
            |_| fresh(),
            &mut NoHooks,
        );
        let t = &r.totals;
        assert!(t.last_slot <= 20_000);
        assert!(t.successes <= t.arrivals);
        assert_eq!(
            t.active_slots,
            t.empty_active + t.successes + t.collision_slots + t.jammed_active,
            "slot classes must partition active slots"
        );
    }
}
