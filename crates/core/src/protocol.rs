//! The `LOW-SENSING BACKOFF` protocol (paper Figure 1).
//!
//! Per slot, a packet with window `w`:
//!
//! 1. **listens** with probability `c·ln³(w)/w`;
//! 2. conditioned on listening, **sends** with probability `1/(c·ln³ w)`
//!    — so the unconditional send probability is exactly `1/w`;
//! 3. on hearing **silence** backs on: `w ← max(w/(1+1/(c·ln w)), w_min)`;
//! 4. on hearing **noise** backs off: `w ← w·(1+1/(c·ln w))`.
//!
//! Hearing a *successful* slot (another packet's lone transmission) changes
//! nothing. Sending and listening are deliberately coupled — a sender has
//! already "decided to listen" — which the energy analysis exploits
//! (Theorem 5.25: every listen carries a `1/(c·ln³ w)` chance of being a
//! send, so long listen streaks imply success).

use lowsense_sim::dist::{fast_ln, fast_ln4, saturating_count};
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

use crate::params::Params;

/// Per-packet state of `LOW-SENSING BACKOFF`.
///
/// # Examples
///
/// ```
/// use lowsense::{LowSensing, Params};
/// use lowsense_sim::prelude::*;
///
/// let p = LowSensing::new(Params::default());
/// assert_eq!(p.window(), 4.0);
/// // Fresh packets send with probability exactly 1/w_min.
/// assert!((p.send_probability() - 0.25).abs() < 1e-12);
/// ```
// The 8-f64 state is exactly one 64-byte cache line, so the event-driven
// engines' scattered per-listener table accesses touch one line instead of
// straddling two ~75% of the time.
//
// Everything derived from the window is kept in **reciprocal form**,
// refreshed only when the window changes, so the per-observation hot path
// is divide-free: the window update multiplies against the cached
// `back_off_factor`/`back_on_factor` pair (the old path recomputed
// `1 + 1/(c·ln w)` and divided by it on every silent slot, clamped or
// not), and the recompute itself funnels through one reciprocal
// `x = 1/(c·ln w)` from which the send probability is pure multiplies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(64))]
pub struct LowSensing {
    params: Params,
    w: f64,
    // Cached update factor `1 + 1/(c·ln w)` of the *current* window, and
    // its reciprocal: back-off is `w · back_off_factor`, back-on is
    // `max(w · back_on_factor, w_min)` — no divide, no `ln`.
    back_off_factor: f64,
    back_on_factor: f64,
    // Cached per-slot probabilities; recomputed only on window changes.
    p_listen: f64,
    p_send_given_listen: f64,
    // Cached `1 / ln(1 - p_listen)`, so sampling the next access delay
    // costs one (fast) `ln` of the uniform and a multiply instead of two
    // `ln`s and a divide. Zero in the degenerate cases the draw guards
    // handle (`p_listen` outside `(0, 1)`).
    inv_ln_q_listen: f64,
}

impl LowSensing {
    /// A freshly injected packet: window starts at `w_min`.
    pub fn new(params: Params) -> Self {
        Self::with_window(params, params.w_min())
    }

    /// A packet with an explicit starting window (clamped to `≥ w_min`);
    /// used by tests and ablations.
    pub fn with_window(params: Params, w: f64) -> Self {
        let w = w.max(params.w_min());
        let mut p = LowSensing {
            params,
            w,
            back_off_factor: 0.0,
            back_on_factor: 0.0,
            p_listen: 0.0,
            p_send_given_listen: 0.0,
            inv_ln_q_listen: 0.0,
        };
        p.recompute();
        p
    }

    // Refreshes every window-derived cache. One `fast_ln` plus four
    // divides (`x`, the back-on reciprocal, the listen probability's `/w`,
    // and `1/ln q` — itself a reciprocal cache); everything else is
    // multiplies against `x = 1/(c·ln w)`:
    // `p_send|listen = 1/(c·ln³ w) = x³·c²` exactly in real arithmetic.
    // `observe4` mirrors this per lane bit for bit.
    fn recompute(&mut self) {
        let ln_w = fast_ln(self.w);
        let c = self.params.c();
        let x = 1.0 / (c * ln_w);
        self.back_off_factor = 1.0 + x;
        self.back_on_factor = 1.0 / self.back_off_factor;
        self.p_listen = self.params.listen_probability_ln(self.w, ln_w);
        self.p_send_given_listen = (x * x * x * (c * c)).min(1.0);
        self.inv_ln_q_listen = if self.p_listen <= 0.0 || self.p_listen >= 1.0 {
            // Degenerate: `next_wake` short-circuits before using this.
            0.0
        } else if self.p_listen < 1e-8 {
            // `1 - p` rounds to 1 here; `ln_1p` keeps full precision.
            1.0 / (-self.p_listen).ln_1p()
        } else {
            1.0 / fast_ln(1.0 - self.p_listen)
        };
    }

    /// Current window size `w_u(t)`.
    #[inline]
    pub fn window(&self) -> f64 {
        self.w
    }

    /// The parameters this packet runs with.
    #[inline]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Probability of accessing the channel (listening) this slot.
    #[inline]
    pub fn access_probability(&self) -> f64 {
        self.p_listen
    }
}

impl Protocol for LowSensing {
    #[inline]
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if !rng.bernoulli(self.p_listen) {
            return Intent::Sleep;
        }
        if rng.bernoulli(self.p_send_given_listen) {
            Intent::Send
        } else {
            Intent::Listen
        }
    }

    #[inline]
    fn observe(&mut self, obs: &Observation) {
        // Divide-free window update: multiply against the cached factor /
        // reciprocal pair (`window::back_{on,off}` up to the reciprocal's
        // rounding, which shifts individual trajectories by ulps but not
        // the distributions the analysis is about).
        let new_w = match obs.feedback {
            Feedback::Empty => (self.w * self.back_on_factor).max(self.params.w_min()),
            Feedback::Noisy => self.w * self.back_off_factor,
            // Someone else's success: no update (Figure 1 has rules only for
            // silent and noisy slots). Our own success departs us anyway.
            Feedback::Success => return,
        };
        if new_w == self.w {
            // Back-on clamped at the floor: the window (and every cached
            // derived probability) is unchanged, so skip the recompute.
            return;
        }
        self.w = new_w;
        self.recompute();
    }

    #[inline]
    fn send_probability(&self) -> f64 {
        self.p_listen * self.p_send_given_listen
    }

    #[inline]
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // Exact inversion sampling, `k = ⌊ln U / ln(1-p_listen)⌋`, like
        // `dist::geometric` — but with the logarithm of `1-p` cached as a
        // reciprocal and `fast_ln` for the uniform, this is one inlined
        // transcendental per draw. The guards mirror `geometric`'s.
        if self.p_listen >= 1.0 {
            return Some(0);
        }
        if self.p_listen <= 0.0 {
            return Some(u64::MAX);
        }
        let u = 1.0 - rng.f64();
        Some(saturating_count(fast_ln(u) * self.inv_ln_q_listen))
    }
}

impl SparseProtocol for LowSensing {
    #[inline]
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p_send_given_listen)
    }

    // The 4-wide listener update. Per scalar listen, `observe` +
    // `next_wake` cost three transcendentals (`ln w_new`,
    // `ln(1 - p_listen)`, `ln U`); here each of the three is evaluated
    // once for four lanes through `fast_ln4`, whose per-lane arithmetic is
    // the scalar `fast_ln`'s — so every lane's state and delay are
    // bit-identical to the scalar path, per the `SparseProtocol` batch
    // contract (pinned by `batched_lanes_match_scalar_bitwise` below and
    // by `tests/sparse_equivalence.rs` end to end).
    #[inline]
    fn observe4(states: &mut [&mut Self; 4], obs: &Observation) {
        // Success slots change nothing (the scalar observe returns early).
        if matches!(obs.feedback, Feedback::Success) {
            return;
        }
        // Work on by-value lane copies: `LowSensing` is `Copy`, and a local
        // array is provably alias-free, so everything below is branch-light
        // elementwise arithmetic the auto-vectorizer can pack (through the
        // `&mut` lanes, every store would pessimistically invalidate the
        // other lanes' loads).
        let mut lane = [*states[0], *states[1], *states[2], *states[3]];
        // Divide-free window updates: each lane multiplies against its
        // cached factor / reciprocal pair, exactly like the scalar
        // `observe`.
        let mut new_w = [0.0f64; 4];
        match obs.feedback {
            Feedback::Empty => {
                for i in 0..4 {
                    new_w[i] = (lane[i].w * lane[i].back_on_factor).max(lane[i].params.w_min());
                }
            }
            Feedback::Noisy => {
                for i in 0..4 {
                    new_w[i] = lane[i].w * lane[i].back_off_factor;
                }
            }
            Feedback::Success => unreachable!("handled above"),
        }
        let mut changed = [false; 4];
        for i in 0..4 {
            changed[i] = new_w[i] != lane[i].w;
        }
        if changed == [false; 4] {
            // Every lane's back-on clamped at the floor: the scalar path
            // skips the recompute entirely, and so do we — no
            // transcendentals, no write-back (the common steady state once
            // a batch has drained down to herds parked at w_min).
            return;
        }
        // First 4-wide transcendental: ln of the new windows. A lane whose
        // back-on clamped at the floor keeps its whole cache (the scalar
        // path skips its recompute); its slot in `new_w` is the old
        // window, a valid input whose result is simply discarded.
        let ln_w4 = fast_ln4(new_w);
        // The reciprocal-form recompute for every lane unconditionally (so
        // the lanes pack — the divides vectorize to `divpd`); unchanged
        // lanes discard the results below. Per-lane arithmetic is the
        // scalar `recompute`'s bit for bit.
        let mut factor = [0.0f64; 4];
        let mut inv_factor = [0.0f64; 4];
        let mut p_listen = [0.0f64; 4];
        let mut p_send = [0.0f64; 4];
        for i in 0..4 {
            let c = lane[i].params.c();
            let x = 1.0 / (c * ln_w4[i]);
            factor[i] = 1.0 + x;
            inv_factor[i] = 1.0 / factor[i];
            p_listen[i] = lane[i].params.listen_probability_ln(new_w[i], ln_w4[i]);
            p_send[i] = (x * x * x * (c * c)).min(1.0);
        }
        for i in 0..4 {
            if changed[i] {
                lane[i].w = new_w[i];
                lane[i].back_off_factor = factor[i];
                lane[i].back_on_factor = inv_factor[i];
                lane[i].p_listen = p_listen[i];
                lane[i].p_send_given_listen = p_send[i];
            }
        }
        // Second 4-wide transcendental: ln(1 - p_listen) for lanes in
        // `recompute`'s common branch; the dummy 0.5 keeps other lanes'
        // inputs in the normal range, and their results are discarded.
        let mut q = [0.5f64; 4];
        for i in 0..4 {
            let pl = lane[i].p_listen;
            if changed[i] && (1e-8..1.0).contains(&pl) {
                q[i] = 1.0 - pl;
            }
        }
        let ln_q4 = fast_ln4(q);
        for i in 0..4 {
            if changed[i] {
                let pl = lane[i].p_listen;
                lane[i].inv_ln_q_listen = if pl <= 0.0 || pl >= 1.0 {
                    0.0
                } else if pl < 1e-8 {
                    1.0 / (-pl).ln_1p()
                } else {
                    1.0 / ln_q4[i]
                };
            }
            *states[i] = lane[i];
        }
    }

    #[inline]
    // The negated guards reproduce the scalar `next_wake`'s exact branch
    // structure, which the bit-identity contract of the batch pins.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn next_wake4(states: &mut [&mut Self; 4], rng: &mut SimRng) -> [Option<u64>; 4] {
        // Uniforms are drawn in ascending lane order, degenerate lanes
        // drawing nothing — the scalar `next_wake`'s guard structure,
        // which keeps the RNG stream identical to four scalar calls.
        let p_listen = [
            states[0].p_listen,
            states[1].p_listen,
            states[2].p_listen,
            states[3].p_listen,
        ];
        let inv = [
            states[0].inv_ln_q_listen,
            states[1].inv_ln_q_listen,
            states[2].inv_ln_q_listen,
            states[3].inv_ln_q_listen,
        ];
        let mut u = [1.0f64; 4];
        let mut live = [false; 4];
        for i in 0..4 {
            if !(p_listen[i] >= 1.0) && !(p_listen[i] <= 0.0) {
                u[i] = 1.0 - rng.f64();
                live[i] = true;
            }
        }
        let ln_u = fast_ln4(u);
        let mut out = [None; 4];
        for i in 0..4 {
            out[i] = if live[i] {
                Some(saturating_count(ln_u[i] * inv[i]))
            } else if p_listen[i] >= 1.0 {
                Some(0)
            } else {
                Some(u64::MAX)
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> LowSensing {
        LowSensing::new(Params::default())
    }

    fn obs(feedback: Feedback) -> Observation {
        Observation {
            slot: 0,
            feedback,
            sent: false,
            succeeded: false,
        }
    }

    #[test]
    fn send_probability_is_one_over_w() {
        let mut p = fresh();
        for _ in 0..200 {
            assert!(
                (p.send_probability() - 1.0 / p.window()).abs() < 1e-12,
                "w={}",
                p.window()
            );
            p.observe(&obs(Feedback::Noisy));
        }
    }

    #[test]
    fn noisy_grows_empty_shrinks_success_noops() {
        let mut p = fresh();
        let w0 = p.window();
        p.observe(&obs(Feedback::Noisy));
        let w1 = p.window();
        assert!(w1 > w0);
        p.observe(&obs(Feedback::Success));
        assert_eq!(p.window(), w1, "success leaves the window unchanged");
        p.observe(&obs(Feedback::Empty));
        assert!(p.window() < w1);
    }

    #[test]
    fn window_never_below_minimum() {
        let mut p = fresh();
        for _ in 0..50 {
            p.observe(&obs(Feedback::Empty));
            assert!(p.window() >= p.params().w_min());
        }
        assert_eq!(p.window(), p.params().w_min());
    }

    #[test]
    fn intent_rates_match_probabilities() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(1);
        let n = 400_000;
        let (mut sends, mut listens) = (0u64, 0u64);
        for _ in 0..n {
            match p.intent(&mut rng) {
                Intent::Send => sends += 1,
                Intent::Listen => listens += 1,
                Intent::Sleep => {}
            }
        }
        let access_rate = (sends + listens) as f64 / n as f64;
        let send_rate = sends as f64 / n as f64;
        assert!(
            (access_rate - p.access_probability()).abs() < 0.005,
            "access {access_rate} vs {}",
            p.access_probability()
        );
        assert!(
            (send_rate - 1.0 / 64.0).abs() < 0.002,
            "send {send_rate} vs {}",
            1.0 / 64.0
        );
    }

    #[test]
    fn sparse_delay_matches_access_probability() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| p.next_wake(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p.access_probability()) / p.access_probability();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn sparse_send_on_access_rate() {
        let mut p = LowSensing::with_window(Params::default(), 64.0);
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let sends = (0..n).filter(|_| p.send_on_access(&mut rng)).count();
        let rate = sends as f64 / n as f64;
        let expect = p.params().send_probability_given_listen(64.0);
        assert!((rate - expect).abs() < 0.005, "rate {rate} expect {expect}");
    }

    #[test]
    fn listening_dominates_sending_at_large_windows() {
        // "Fully energy-efficient" hinges on listens being rare too: the
        // access probability c·ln³(w)/w vanishes as w grows.
        let p = LowSensing::with_window(Params::default(), 1e6);
        assert!(p.access_probability() < 0.002);
        assert!(p.send_probability() < 2e-6);
    }

    #[test]
    fn with_window_clamps() {
        let p = LowSensing::with_window(Params::default(), 1.0);
        assert_eq!(p.window(), 4.0);
    }

    #[test]
    fn batched_lanes_match_scalar_bitwise() {
        // Long mixed feedback walks: after every batched observe4 +
        // next_wake4 round, all four lane states and delays must equal the
        // scalar path's exactly (PartialEq on LowSensing compares every
        // cached float). Clamped parameters (p_listen = 1 at small w)
        // exercise the degenerate no-draw lanes.
        for params in [
            Params::default(),
            Params::new(1.0, 8.0).unwrap(),
            Params::new(2.0, 4.0).unwrap(), // clamps p_listen to 1 near w=e³
        ] {
            let mut scalar: Vec<LowSensing> = (0..4)
                .map(|i| LowSensing::with_window(params, 4.0 + 17.0 * i as f64))
                .collect();
            let mut batched = scalar.clone();
            let mut rng_s = SimRng::new(123);
            let mut rng_b = SimRng::new(123);
            let mut seq = SimRng::new(9);
            for step in 0..3_000 {
                let fb = match seq.range_u64(3) {
                    0 => Feedback::Empty,
                    1 => Feedback::Noisy,
                    _ => Feedback::Success,
                };
                let o = obs(fb);
                let mut delays_s = [None; 4];
                for (lane, p) in scalar.iter_mut().enumerate() {
                    p.observe(&o);
                    delays_s[lane] = p.next_wake(&mut rng_s);
                }
                let [a, b, c, d] = &mut batched[..] else {
                    unreachable!()
                };
                let mut lanes = [a, b, c, d];
                LowSensing::observe4(&mut lanes, &o);
                let delays_b = LowSensing::next_wake4(&mut lanes, &mut rng_b);
                assert_eq!(delays_s, delays_b, "step {step}");
                assert_eq!(scalar, batched, "step {step}");
            }
            assert_eq!(rng_s.next_u64(), rng_b.next_u64(), "stream lockstep");
        }
    }
}
