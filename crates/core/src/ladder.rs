//! The quantized window ladder: `LOW-SENSING BACKOFF`'s reachable windows
//! as a precomputed table.
//!
//! The protocol's single state variable only ever moves by multiplicative
//! steps: noise multiplies the window by `1 + 1/(c·ln w)`, silence divides
//! by it (floored at `w_min`). Starting from any anchor window the states a
//! packet can reach therefore form a discrete **ladder**: rung `k+1` is one
//! back-off step above rung `k`, and a back-on step from rung `k+1` returns
//! to rung `k`. Quantizing to the ladder is the one place this differs from
//! the continuous update: the continuous back-on divides by the factor of
//! the *current* window rather than the factor that grew it, so an up-down
//! round trip lands `O(1/(c·ln² w))` relative away from where it started
//! (see `window::tests::back_on_inverts_back_off_approximately`). The
//! ladder snaps that round trip to exact — same `1/w` send-probability
//! identity per rung, same `Θ(1/(c·ln w))`-relative step sizes the
//! analysis charges against the potential, but a finite state space.
//!
//! What that buys the hot path: every rung carries the full set of derived
//! quantities the PR 5 reciprocal-form recompute produced on the fly
//! (`p_listen`, `p_send|listen`, `1/ln(1-p_listen)`), computed by the
//! **same arithmetic** ([`derive()`], pinned bit-identical by
//! `tests/ladder.rs`). A window update becomes a level increment/decrement
//! plus a 3-gather from one 32-byte row — **zero** `ln` calls and **zero**
//! divides. The only transcendental left in the steady state is the
//! irreducible `ln U` of the next-wake draw.
//!
//! Ladders are interned per `(c, w_min, anchor)` in a process-wide cache
//! ([`shared`]) and handed out as `&'static` references, so every packet
//! with the same parameters shares one table (typically a few hundred rungs
//! ≈ tens of KiB) and the per-packet state stays `Copy` and within one
//! cache line. Interned ladders are deliberately leaked; the cache is
//! bounded by the number of distinct parameter sets a process touches.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use lowsense_sim::dist::fast_ln;

use crate::params::Params;

/// Ascent stops once the listen probability drops below this. At
/// `p_listen = 1e-21` the expected gap between channel accesses is `1e21`
/// slots — beyond any simulable horizon (`u64::MAX ≈ 1.8e19`) — so a packet
/// parked on the saturation rung is indistinguishable from one whose window
/// kept growing.
const P_LISTEN_STOP: f64 = 1e-21;

/// Hard cap on rung count, guarding construction against pathological
/// parameters (huge `c` makes the factor minuscule). Reaching it leaves the
/// top rung observable in principle; `Ladder::saturated` reports whether
/// the ladder instead ended at the [`P_LISTEN_STOP`] floor (every parameter
/// set in the test registry does).
const MAX_LEVELS: usize = 16_384;

/// One rung of the ladder: a reachable window and every derived quantity
/// the hot path reads (32 bytes — half a cache line per rung).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRow {
    /// The window value `w` of this rung.
    pub w: f64,
    /// Listen probability `min(1, c·ln³(w)/w)`.
    pub p_listen: f64,
    /// Conditional send probability `min(1, 1/(c·ln³ w))`.
    pub p_send_given_listen: f64,
    /// Cached `1/ln(1 - p_listen)` for the geometric wake draw; `0` in the
    /// degenerate cases the draw guards handle (`p_listen` outside
    /// `(0, 1)`).
    pub inv_ln_q_listen: f64,
}

/// Everything derivable from one window value: the [`LadderRow`] plus the
/// update-factor pair used to construct neighbouring rungs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    /// The precomputed per-rung quantities.
    pub row: LadderRow,
    /// Back-off factor `1 + 1/(c·ln w)` (one rung up is `w · back_off`).
    pub back_off_factor: f64,
    /// Its reciprocal (the continuous back-on multiplies by this).
    pub back_on_factor: f64,
}

/// The window recompute, in one place.
///
/// This is the reciprocal-form arithmetic the PR 5 `LowSensing::recompute`
/// and its hand-maintained 4-wide copy in `observe4` both evaluated per
/// window change; deduplicating them here makes it impossible for the two
/// to drift, and ladder construction reuses it so every rung is
/// bit-identical to what the on-the-fly recompute produced for the same
/// window (pinned by the `tests/ladder.rs` proptest). One `fast_ln` of the
/// window, one reciprocal `x = 1/(c·ln w)` (bit-equal to
/// `window::update_factor_ln(c, ln w) - 1`), and the send probability as
/// pure multiplies: `1/(c·ln³ w) = x³·c²` exactly in real arithmetic.
#[inline]
pub fn derive(params: &Params, w: f64) -> Derived {
    let ln_w = fast_ln(w);
    let c = params.c();
    let x = 1.0 / (c * ln_w);
    let back_off_factor = 1.0 + x;
    let back_on_factor = 1.0 / back_off_factor;
    let p_listen = params.listen_probability_ln(w, ln_w);
    let p_send_given_listen = (x * x * x * (c * c)).min(1.0);
    let inv_ln_q_listen = if p_listen <= 0.0 || p_listen >= 1.0 {
        // Degenerate: the wake draws short-circuit before using this.
        0.0
    } else if p_listen < 1e-8 {
        // `1 - p` rounds to 1 here; `ln_1p` keeps full precision.
        1.0 / (-p_listen).ln_1p()
    } else {
        1.0 / fast_ln(1.0 - p_listen)
    };
    Derived {
        row: LadderRow {
            w,
            p_listen,
            p_send_given_listen,
            inv_ln_q_listen,
        },
        back_off_factor,
        back_on_factor,
    }
}

/// The precomputed reachable-window table for one `(params, anchor)` pair.
///
/// Rung 0 is `w_min` (the back-on floor); the anchor — the window the
/// ladder was grown from, `w_min` itself for freshly injected packets — sits
/// at [`Ladder::anchor_level`], with the continuous back-on orbit below it
/// and the back-off orbit above it, up to the saturation rung.
#[derive(Clone, PartialEq)]
pub struct Ladder {
    params: Params,
    anchor: u32,
    rows: Box<[LadderRow]>,
}

impl Ladder {
    /// Builds the ladder for `params`, anchored at `anchor_w` (clamped to
    /// `≥ w_min`).
    ///
    /// Descending rungs are the continuous back-on orbit of the anchor
    /// (each divides by the *current* rung's factor, exactly as the
    /// continuous update would, until the floor clamp yields `w_min`);
    /// ascending rungs are the back-off orbit. Both use [`derive()`]'s
    /// arithmetic, so a pure back-off (or pure back-on) trajectory of the
    /// ladder protocol is bit-identical to the continuous code's.
    pub fn build(params: Params, anchor_w: f64) -> Self {
        let w_min = params.w_min();
        let anchor_w = anchor_w.max(w_min);
        // Back-on orbit below the anchor, collected top-down. The loop
        // terminates: each step shrinks multiplicatively by at least the
        // anchor's factor until the clamp produces exactly `w_min`.
        let mut below: Vec<f64> = Vec::new();
        let mut v = anchor_w;
        while v > w_min && below.len() < MAX_LEVELS {
            let d = derive(&params, v);
            let next = (v * d.back_on_factor).max(w_min);
            if next >= v {
                break; // fp safety net: no downward progress
            }
            below.push(next);
            v = next;
        }
        let mut rows: Vec<LadderRow> = below
            .iter()
            .rev()
            .map(|&w| derive(&params, w).row)
            .collect();
        let anchor = rows.len() as u32;
        // The anchor itself, then the back-off orbit above it.
        let mut d = derive(&params, anchor_w);
        rows.push(d.row);
        while rows.len() < MAX_LEVELS && d.row.p_listen > P_LISTEN_STOP {
            let next = d.row.w * d.back_off_factor;
            if !next.is_finite() || next <= d.row.w {
                break;
            }
            d = derive(&params, next);
            rows.push(d.row);
        }
        Ladder {
            params,
            anchor,
            rows: rows.into_boxed_slice(),
        }
    }

    /// The parameters this ladder was built for.
    #[inline]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The rung at `level`.
    #[inline]
    pub fn row(&self, level: u32) -> &LadderRow {
        &self.rows[level as usize]
    }

    /// All rungs, bottom (`w_min`) to top (saturation).
    #[inline]
    pub fn rows(&self) -> &[LadderRow] {
        &self.rows
    }

    /// Index of the anchor rung (the window the ladder was grown from).
    #[inline]
    pub fn anchor_level(&self) -> u32 {
        self.anchor
    }

    /// Index of the top (saturation) rung; back-off from here is a no-op.
    #[inline]
    pub fn top_level(&self) -> u32 {
        (self.rows.len() - 1) as u32
    }

    /// Whether ascent ended because the listen probability fell through the
    /// stop floor (the intended saturation), as opposed to the rung-count
    /// safety cap binding first.
    pub fn saturated(&self) -> bool {
        self.rows[self.rows.len() - 1].p_listen <= P_LISTEN_STOP
    }
}

impl std::fmt::Debug for Ladder {
    // A ladder holds hundreds of rungs; summarize instead of dumping them
    // (packet states embed a ladder reference and derive Debug for
    // assertion messages).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ladder")
            .field("params", &self.params)
            .field("levels", &self.rows.len())
            .field("anchor", &self.anchor)
            .field("w_bottom", &self.rows[0].w)
            .field("w_top", &self.rows[self.rows.len() - 1].w)
            .finish()
    }
}

/// Returns the process-wide interned ladder for `(params, anchor_w)`,
/// building it on first use.
///
/// Every packet constructed with the same parameters and starting window
/// shares one `&'static` table — the "cache sharing across same-params
/// packets" that keeps per-packet state `Copy` and one cache line. Entries
/// are leaked intentionally; the cache is bounded by the distinct parameter
/// sets a process touches (a sweep of 100 parameter points costs a few MiB
/// once, not per packet).
pub fn shared(params: Params, anchor_w: f64) -> &'static Ladder {
    type Key = (u64, u64, u64);
    static CACHE: OnceLock<Mutex<HashMap<Key, &'static Ladder>>> = OnceLock::new();
    let anchor_w = anchor_w.max(params.w_min());
    let key = (
        params.c().to_bits(),
        params.w_min().to_bits(),
        anchor_w.to_bits(),
    );
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("ladder cache poisoned");
    match cache.get(&key) {
        Some(ladder) => ladder,
        None => {
            let ladder: &'static Ladder = Box::leak(Box::new(Ladder::build(params, anchor_w)));
            cache.insert(key, ladder);
            ladder
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_rung_is_exactly_w_min() {
        for anchor in [4.0, 5.5, 64.0, 1e6] {
            let l = Ladder::build(Params::default(), anchor);
            assert_eq!(l.row(0).w, 4.0, "anchor {anchor}");
        }
    }

    #[test]
    fn anchor_rung_carries_the_exact_anchor_window() {
        let l = Ladder::build(Params::default(), 64.0);
        assert_eq!(l.row(l.anchor_level()).w, 64.0);
        let fresh = Ladder::build(Params::default(), 4.0);
        assert_eq!(fresh.anchor_level(), 0);
    }

    #[test]
    fn rungs_strictly_increase() {
        let l = Ladder::build(Params::default(), 1e5);
        for pair in l.rows().windows(2) {
            assert!(pair[0].w < pair[1].w);
        }
    }

    #[test]
    fn ascent_saturates_below_the_listen_floor() {
        let l = Ladder::build(Params::default(), 4.0);
        assert!(l.saturated(), "{l:?}");
        assert!(l.row(l.top_level()).p_listen <= P_LISTEN_STOP);
        // One rung below the top is still above the floor (minimal ladder).
        assert!(l.row(l.top_level() - 1).p_listen > P_LISTEN_STOP);
        // The default-params ladder is small: hundreds of rungs, tens of KiB.
        assert!(l.rows().len() < 2_000, "{} rungs", l.rows().len());
    }

    #[test]
    fn rows_match_derive_by_bits() {
        let l = Ladder::build(Params::new(1.0, 8.0).unwrap(), 300.0);
        for row in l.rows() {
            let d = derive(l.params(), row.w);
            assert_eq!(row.p_listen.to_bits(), d.row.p_listen.to_bits());
            assert_eq!(
                row.p_send_given_listen.to_bits(),
                d.row.p_send_given_listen.to_bits()
            );
            assert_eq!(
                row.inv_ln_q_listen.to_bits(),
                d.row.inv_ln_q_listen.to_bits()
            );
        }
    }

    #[test]
    fn descent_is_the_continuous_back_on_orbit() {
        // Each rung below the anchor must be exactly one continuous back-on
        // step (reciprocal multiply + floor clamp) from the rung above it.
        let params = Params::default();
        let l = Ladder::build(params, 1e4);
        for lvl in (1..=l.anchor_level()).rev() {
            let upper = l.row(lvl).w;
            let d = derive(&params, upper);
            let expect = (upper * d.back_on_factor).max(params.w_min());
            assert_eq!(l.row(lvl - 1).w.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn ascent_is_the_continuous_back_off_orbit() {
        let params = Params::default();
        let l = Ladder::build(params, 4.0);
        for lvl in 0..l.top_level() {
            let w = l.row(lvl).w;
            let d = derive(&params, w);
            assert_eq!(
                l.row(lvl + 1).w.to_bits(),
                (w * d.back_off_factor).to_bits()
            );
        }
    }

    #[test]
    fn shared_interns_per_params_and_anchor() {
        let a = shared(Params::default(), 4.0);
        let b = shared(Params::default(), 4.0);
        assert!(std::ptr::eq(a, b));
        // Sub-floor anchors clamp to w_min and share the fresh ladder.
        let c = shared(Params::default(), 1.0);
        assert!(std::ptr::eq(a, c));
        let d = shared(Params::default(), 64.0);
        assert!(!std::ptr::eq(a, d));
        let e = shared(Params::new(1.0, 4.0).unwrap(), 4.0);
        assert!(!std::ptr::eq(a, e));
    }

    #[test]
    fn clamped_listen_probability_rows_are_degenerate_guarded() {
        // c = 2 clamps p_listen to 1 around w = e³; those rungs must carry
        // inv_ln_q = 0 (the draw guards short-circuit on p_listen >= 1).
        let l = Ladder::build(Params::new(2.0, 4.0).unwrap(), 4.0);
        let mut saw_clamped = false;
        for row in l.rows() {
            if row.p_listen >= 1.0 {
                saw_clamped = true;
                assert_eq!(row.inv_ln_q_listen, 0.0, "w = {}", row.w);
            }
        }
        assert!(saw_clamped, "expected clamped rungs near w = e³");
    }
}
