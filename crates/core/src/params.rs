//! Algorithm parameters for `LOW-SENSING BACKOFF` (paper Figure 1).
//!
//! Two constants fully determine the algorithm: the multiplier `c` and the
//! minimum window `w_min`. The paper asks for "sufficiently large" values;
//! the constraints that actually bind an implementation are
//!
//! * `p_send|listen = 1/(c·ln³ w) ≤ 1` for all reachable `w ≥ w_min`, i.e.
//!   `c·ln³(w_min) ≥ 1` — this keeps the *unconditional* send probability
//!   exactly `1/w`, the identity the whole analysis leans on;
//! * `p_listen = c·ln³(w)/w ≤ 1`, i.e. `c ≤ min_{w ≥ w_min} w/ln³ w`
//!   (that minimum is `e³/27 ≈ 0.744`, attained at `w = e³ ≈ 20.1`).
//!
//! The first is enforced at construction; the second is advisory (the
//! implementation clamps the listen probability at 1 and
//! [`Params::respects_listen_cap`] reports whether clamping can occur).
//! Defaults `c = 0.5`, `w_min = 4` satisfy both with margin.

use std::fmt;

/// Parameters of `LOW-SENSING BACKOFF`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    c: f64,
    w_min: f64,
}

/// Validation failure constructing [`Params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `c` was non-positive or not finite.
    BadC,
    /// `w_min` was below 2 or not finite (the analysis needs `w ≥ 2`).
    BadWMin,
    /// `c · ln³(w_min) < 1`, which would force the conditional send
    /// probability above 1 and break the `p_send = 1/w` identity.
    SendProbabilityOverflow,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadC => write!(f, "c must be positive and finite"),
            ParamError::BadWMin => write!(f, "w_min must be finite and at least 2"),
            ParamError::SendProbabilityOverflow => {
                write!(
                    f,
                    "c·ln³(w_min) must be at least 1 so that p_send|listen ≤ 1"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] when `c ≤ 0`, `w_min < 2`, or
    /// `c·ln³(w_min) < 1` (see module docs).
    ///
    /// # Examples
    ///
    /// ```
    /// use lowsense::Params;
    ///
    /// let p = Params::new(0.5, 4.0)?;
    /// assert!(p.respects_listen_cap());
    /// # Ok::<(), lowsense::ParamError>(())
    /// ```
    pub fn new(c: f64, w_min: f64) -> Result<Self, ParamError> {
        if c <= 0.0 || !c.is_finite() {
            return Err(ParamError::BadC);
        }
        if w_min < 2.0 || !w_min.is_finite() {
            return Err(ParamError::BadWMin);
        }
        if c * w_min.ln().powi(3) < 1.0 {
            return Err(ParamError::SendProbabilityOverflow);
        }
        Ok(Params { c, w_min })
    }

    /// The multiplier `c`.
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The minimum window `w_min`.
    #[inline]
    pub fn w_min(&self) -> f64 {
        self.w_min
    }

    /// Whether `c·ln³(w)/w ≤ 1` for every reachable window, so the listen
    /// probability is never clamped and the implementation matches the
    /// paper's idealized algorithm exactly.
    pub fn respects_listen_cap(&self) -> bool {
        // w/ln³w is U-shaped with minimum at w = e³; check the minimum of
        // the reachable region [w_min, ∞).
        let e3 = std::f64::consts::E.powi(3);
        let at = |w: f64| w / w.ln().powi(3);
        let min = if self.w_min <= e3 {
            at(e3)
        } else {
            at(self.w_min)
        };
        self.c <= min
    }

    /// Probability that a packet with window `w` listens this slot:
    /// `min(1, c·ln³(w)/w)`.
    #[inline]
    pub fn listen_probability(&self, w: f64) -> f64 {
        self.listen_probability_ln(w, w.ln())
    }

    /// [`Params::listen_probability`] with the caller supplying `ln w`.
    ///
    /// Hot paths (the per-observation recompute in
    /// [`LowSensing`](crate::LowSensing)) cache the logarithm; passing it in
    /// keeps the arithmetic bit-identical to the uncached form while paying
    /// for one `ln` instead of three per window update.
    #[inline]
    pub fn listen_probability_ln(&self, w: f64, ln_w: f64) -> f64 {
        (self.c * ln_w.powi(3) / w).min(1.0)
    }

    /// Probability that a listening packet also sends:
    /// `min(1, 1/(c·ln³ w))` (the min never binds for valid parameters).
    #[inline]
    pub fn send_probability_given_listen(&self, w: f64) -> f64 {
        self.send_probability_given_listen_ln(w.ln())
    }

    /// [`Params::send_probability_given_listen`] with the caller supplying
    /// `ln w` (see [`Params::listen_probability_ln`]).
    #[inline]
    pub fn send_probability_given_listen_ln(&self, ln_w: f64) -> f64 {
        (1.0 / (self.c * ln_w.powi(3))).min(1.0)
    }
}

impl Default for Params {
    /// Practical defaults `c = 0.5`, `w_min = 4` (see module docs).
    fn default() -> Self {
        Params::new(0.5, 4.0).expect("default parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_unclamped() {
        let p = Params::default();
        assert_eq!(p.c(), 0.5);
        assert_eq!(p.w_min(), 4.0);
        assert!(p.respects_listen_cap());
    }

    #[test]
    fn rejects_bad_c() {
        assert_eq!(Params::new(0.0, 4.0), Err(ParamError::BadC));
        assert_eq!(Params::new(-1.0, 4.0), Err(ParamError::BadC));
        assert_eq!(Params::new(f64::NAN, 4.0), Err(ParamError::BadC));
        assert_eq!(Params::new(f64::INFINITY, 4.0), Err(ParamError::BadC));
    }

    #[test]
    fn rejects_bad_w_min() {
        assert_eq!(Params::new(0.5, 1.9), Err(ParamError::BadWMin));
        assert_eq!(Params::new(0.5, f64::NAN), Err(ParamError::BadWMin));
    }

    #[test]
    fn rejects_send_probability_overflow() {
        // c·ln³(2) = 0.5·0.333 < 1.
        assert_eq!(
            Params::new(0.5, 2.0),
            Err(ParamError::SendProbabilityOverflow)
        );
    }

    #[test]
    fn unconditional_send_probability_is_one_over_w() {
        let p = Params::default();
        for w in [4.0, 7.3, 20.0, 1e3, 1e6] {
            let prod = p.listen_probability(w) * p.send_probability_given_listen(w);
            assert!(
                (prod - 1.0 / w).abs() < 1e-12,
                "w={w}: p_send = {prod}, expect {}",
                1.0 / w
            );
        }
    }

    #[test]
    fn listen_cap_detection() {
        // c = 2 exceeds min w/ln³w ≈ 0.744 ⇒ clamping occurs around w ≈ e³.
        let p = Params::new(2.0, 4.0).unwrap();
        assert!(!p.respects_listen_cap());
        assert_eq!(p.listen_probability(20.0), 1.0);
        // Large w_min moves the reachable region past the dip.
        let q = Params::new(2.0, 2000.0).unwrap();
        assert!(q.respects_listen_cap());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let p = Params::new(1.0, 3.0).unwrap();
        for w in [3.0, 5.0, 20.0, 100.0, 1e9] {
            let pl = p.listen_probability(w);
            let ps = p.send_probability_given_listen(w);
            assert!((0.0..=1.0).contains(&pl), "listen {pl} at w={w}");
            assert!((0.0..=1.0).contains(&ps), "send {ps} at w={w}");
        }
    }

    #[test]
    fn error_display() {
        assert!(ParamError::BadC.to_string().contains('c'));
        assert!(ParamError::SendProbabilityOverflow
            .to_string()
            .contains("ln³"));
    }
}
