//! The potential function `Φ(t)` and contention-regime accounting (§4.1–4.2).
//!
//! `Φ(t) = α₁·N(t) + α₂·H(t) + α₃·L(t)` with
//!
//! * `N(t)` — number of packets in the system,
//! * `H(t) = Σ_u 1/ln(w_u)` — the high-contention term,
//! * `L(t) = w_max/ln²(w_max)` — the large-window term (0 when idle),
//!
//! and `α₁ > α₂ > α₃ > 0`. Contention is `C(t) = Σ_u 1/w_u`; the regimes
//! are *low* (`C < C_low`), *good* (`C_low ≤ C ≤ C_high`), *high*
//! (`C > C_high`), with `C_low ≤ 1/w_min` and `C_high > 1` (§4.1).
//!
//! [`PotentialTracker`] maintains all of this incrementally through the
//! engine [`Hooks`]: `O(log n)` per window change (an ordered multiset of
//! window bit patterns yields `w_max`), `O(1)` per slot.

use std::collections::BTreeMap;

use lowsense_sim::feedback::SlotOutcome;
use lowsense_sim::hooks::Hooks;
use lowsense_sim::packet::PacketId;
use lowsense_sim::time::Slot;

use crate::protocol::LowSensing;

/// Weights of the three potential terms; the analysis needs
/// `α₁ > α₂ > α₃ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alphas {
    /// Weight of `N(t)`.
    pub a1: f64,
    /// Weight of `H(t)`.
    pub a2: f64,
    /// Weight of `L(t)`.
    pub a3: f64,
}

impl Default for Alphas {
    /// `(4, 2, 1)` — any strictly decreasing positive triple works for
    /// measurement purposes.
    fn default() -> Self {
        Alphas {
            a1: 4.0,
            a2: 2.0,
            a3: 1.0,
        }
    }
}

impl Alphas {
    /// Validated constructor enforcing `a1 > a2 > a3 > 0`.
    ///
    /// # Panics
    ///
    /// Panics if the ordering constraint is violated.
    pub fn new(a1: f64, a2: f64, a3: f64) -> Self {
        assert!(
            a1 > a2 && a2 > a3 && a3 > 0.0,
            "potential weights must satisfy a1 > a2 > a3 > 0"
        );
        Alphas { a1, a2, a3 }
    }
}

/// Contention-regime thresholds (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeThresholds {
    /// Below this, contention is *low*. Must be `≤ 1/w_min`.
    pub c_low: f64,
    /// Above this, contention is *high*. Must exceed 1.
    pub c_high: f64,
}

impl Default for RegimeThresholds {
    /// `C_low = 0.25 = 1/w_min` (for the default `w_min = 4`), `C_high = 2`.
    fn default() -> Self {
        RegimeThresholds {
            c_low: 0.25,
            c_high: 2.0,
        }
    }
}

/// The three contention regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// `C < C_low`: slots are mostly silent; progress comes from `L(t)`.
    Low,
    /// `C_low ≤ C ≤ C_high`: constant success probability per slot.
    Good,
    /// `C > C_high`: slots are mostly noisy; `H(t)` drains.
    High,
}

impl RegimeThresholds {
    /// Classifies a contention value.
    #[inline]
    pub fn classify(&self, c: f64) -> Regime {
        if c < self.c_low {
            Regime::Low
        } else if c <= self.c_high {
            Regime::Good
        } else {
            Regime::High
        }
    }
}

/// Slots spent in each contention regime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegimeOccupancy {
    /// Active slots with low contention.
    pub low: u64,
    /// Active slots with good contention.
    pub good: u64,
    /// Active slots with high contention.
    pub high: u64,
}

impl RegimeOccupancy {
    /// Total classified slots.
    pub fn total(&self) -> u64 {
        self.low + self.good + self.high
    }
}

/// Order-preserving bit pattern of a positive finite `f64`.
#[inline]
fn bits(w: f64) -> u64 {
    debug_assert!(w > 0.0 && w.is_finite());
    w.to_bits()
}

/// Incremental tracker of `Φ(t)`, contention, and regime occupancy for a
/// population of [`LowSensing`] packets.
///
/// Plug it into an engine as a [`Hooks`] implementation:
///
/// ```
/// use lowsense::{LowSensing, Params, PotentialTracker};
/// use lowsense_sim::prelude::*;
///
/// let mut tracker = PotentialTracker::default();
/// let result = run_sparse(
///     &SimConfig::new(3),
///     Batch::new(100),
///     NoJam,
///     |_rng| LowSensing::new(Params::default()),
///     &mut tracker,
/// );
/// assert_eq!(result.totals.successes, 100);
/// assert_eq!(tracker.packets(), 0, "drained system has Φ = 0");
/// assert!(tracker.phi().abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PotentialTracker {
    alphas: Alphas,
    thresholds: RegimeThresholds,
    n: u64,
    h: f64,
    contention: f64,
    /// Multiset of live window sizes keyed by order-preserving bits.
    windows: BTreeMap<u64, u32>,
    occupancy: RegimeOccupancy,
    /// `(slot, Φ)` samples, recorded at most once per `sample_stride` events
    /// when the stride is non-zero.
    samples: Vec<(Slot, f64)>,
    sample_stride: u64,
    events_since_sample: u64,
}

impl Default for PotentialTracker {
    fn default() -> Self {
        PotentialTracker::new(Alphas::default(), RegimeThresholds::default())
    }
}

impl PotentialTracker {
    /// Creates a tracker with explicit weights and thresholds.
    pub fn new(alphas: Alphas, thresholds: RegimeThresholds) -> Self {
        PotentialTracker {
            alphas,
            thresholds,
            n: 0,
            h: 0.0,
            contention: 0.0,
            windows: BTreeMap::new(),
            occupancy: RegimeOccupancy::default(),
            samples: Vec::new(),
            sample_stride: 0,
            events_since_sample: 0,
        }
    }

    /// Records a `(slot, Φ)` sample every `stride` slot events.
    pub fn with_sampling(mut self, stride: u64) -> Self {
        assert!(stride > 0, "sampling stride must be positive");
        self.sample_stride = stride;
        self
    }

    /// Packets currently tracked (`N(t)`).
    pub fn packets(&self) -> u64 {
        self.n
    }

    /// The `H(t) = Σ 1/ln w_u` term.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Current contention `C(t) = Σ 1/w_u`.
    pub fn contention(&self) -> f64 {
        self.contention
    }

    /// Largest live window, if any packet is active.
    pub fn w_max(&self) -> Option<f64> {
        self.windows
            .last_key_value()
            .map(|(&bits, _)| f64::from_bits(bits))
    }

    /// The `L(t) = w_max/ln²(w_max)` term (0 when the system is idle).
    pub fn l(&self) -> f64 {
        match self.w_max() {
            Some(w) => w / w.ln().powi(2),
            None => 0.0,
        }
    }

    /// The potential `Φ(t) = α₁N + α₂H + α₃L`.
    pub fn phi(&self) -> f64 {
        self.alphas.a1 * self.n as f64 + self.alphas.a2 * self.h + self.alphas.a3 * self.l()
    }

    /// Current contention regime.
    pub fn regime(&self) -> Regime {
        self.thresholds.classify(self.contention)
    }

    /// Slots spent per regime so far.
    pub fn occupancy(&self) -> RegimeOccupancy {
        self.occupancy
    }

    /// Recorded `(slot, Φ)` samples.
    pub fn samples(&self) -> &[(Slot, f64)] {
        &self.samples
    }

    /// The weights in use.
    pub fn alphas(&self) -> Alphas {
        self.alphas
    }

    fn add_window(&mut self, w: f64) {
        self.h += 1.0 / w.ln();
        self.contention += 1.0 / w;
        *self.windows.entry(bits(w)).or_insert(0) += 1;
    }

    fn remove_window(&mut self, w: f64) {
        self.h -= 1.0 / w.ln();
        self.contention -= 1.0 / w;
        let b = bits(w);
        match self.windows.get_mut(&b) {
            Some(1) => {
                self.windows.remove(&b);
            }
            Some(k) => *k -= 1,
            None => panic!("removing untracked window {w}"),
        }
    }

    fn classify_slots(&mut self, slots: u64) {
        match self.regime() {
            Regime::Low => self.occupancy.low += slots,
            Regime::Good => self.occupancy.good += slots,
            Regime::High => self.occupancy.high += slots,
        }
    }

    fn maybe_sample(&mut self, slot: Slot, events: u64) {
        if self.sample_stride == 0 {
            return;
        }
        self.events_since_sample += events;
        if self.events_since_sample >= self.sample_stride {
            self.events_since_sample = 0;
            self.samples.push((slot, self.phi()));
        }
    }
}

impl Hooks<LowSensing> for PotentialTracker {
    fn on_inject(&mut self, _t: Slot, _id: PacketId, state: &LowSensing) {
        self.n += 1;
        self.add_window(state.window());
    }

    fn on_depart(&mut self, _t: Slot, _id: PacketId, state: &LowSensing) {
        self.n -= 1;
        self.remove_window(state.window());
    }

    fn on_observe(&mut self, _t: Slot, _id: PacketId, before: &LowSensing, after: &LowSensing) {
        if before.window() != after.window() {
            self.remove_window(before.window());
            self.add_window(after.window());
        }
    }

    fn on_slot(&mut self, t: Slot, _outcome: &SlotOutcome) {
        self.classify_slots(1);
        self.maybe_sample(t, 1);
    }

    fn on_gap(&mut self, from: Slot, to: Slot, _jammed: u64) {
        self.classify_slots(to - from);
        self.maybe_sample(to - 1, to - from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use lowsense_sim::feedback::{Feedback, Observation};
    use lowsense_sim::protocol::Protocol;

    fn pkt(w: f64) -> LowSensing {
        LowSensing::with_window(Params::default(), w)
    }

    #[test]
    fn empty_system_has_zero_phi() {
        let tr = PotentialTracker::default();
        assert_eq!(tr.phi(), 0.0);
        assert_eq!(tr.l(), 0.0);
        assert_eq!(tr.w_max(), None);
    }

    #[test]
    fn inject_depart_roundtrip() {
        let mut tr = PotentialTracker::default();
        let a = pkt(4.0);
        let b = pkt(100.0);
        tr.on_inject(0, PacketId(0), &a);
        tr.on_inject(0, PacketId(1), &b);
        assert_eq!(tr.packets(), 2);
        assert_eq!(tr.w_max(), Some(100.0));
        let expect_h = 1.0 / 4.0f64.ln() + 1.0 / 100.0f64.ln();
        assert!((tr.h() - expect_h).abs() < 1e-12);
        let expect_c = 0.25 + 0.01;
        assert!((tr.contention() - expect_c).abs() < 1e-12);
        tr.on_depart(1, PacketId(1), &b);
        assert_eq!(tr.w_max(), Some(4.0));
        tr.on_depart(1, PacketId(0), &a);
        assert_eq!(tr.phi(), 0.0);
        assert!(tr.h().abs() < 1e-12);
        assert!(tr.contention().abs() < 1e-12);
    }

    #[test]
    fn observe_moves_window_in_multiset() {
        let mut tr = PotentialTracker::default();
        let before = pkt(50.0);
        let mut after = before;
        after.observe(&Observation {
            slot: 0,
            feedback: Feedback::Noisy,
            sent: false,
            succeeded: false,
        });
        tr.on_inject(0, PacketId(0), &before);
        tr.on_observe(1, PacketId(0), &before, &after);
        assert_eq!(tr.w_max(), Some(after.window()));
        assert!((tr.contention() - 1.0 / after.window()).abs() < 1e-12);
    }

    #[test]
    fn duplicate_windows_counted() {
        let mut tr = PotentialTracker::default();
        let a = pkt(8.0);
        tr.on_inject(0, PacketId(0), &a);
        tr.on_inject(0, PacketId(1), &a);
        tr.on_depart(1, PacketId(0), &a);
        // The second copy keeps w_max alive.
        assert_eq!(tr.w_max(), Some(8.0));
    }

    #[test]
    fn phi_weights_apply() {
        let mut tr = PotentialTracker::new(Alphas::new(4.0, 2.0, 1.0), RegimeThresholds::default());
        let a = pkt(10.0);
        tr.on_inject(0, PacketId(0), &a);
        let expect = 4.0 + 2.0 / 10.0f64.ln() + 10.0 / 10.0f64.ln().powi(2);
        assert!((tr.phi() - expect).abs() < 1e-12, "phi {}", tr.phi());
    }

    #[test]
    fn regime_classification_and_occupancy() {
        let th = RegimeThresholds::default();
        assert_eq!(th.classify(0.0), Regime::Low);
        assert_eq!(th.classify(0.25), Regime::Good);
        assert_eq!(th.classify(2.0), Regime::Good);
        assert_eq!(th.classify(2.1), Regime::High);

        let mut tr = PotentialTracker::default();
        // No packets: contention 0 → low regime.
        tr.on_gap(0, 10, 0);
        // 12 packets at w=4: contention 3 → high regime.
        for i in 0..12 {
            tr.on_inject(10, PacketId(i), &pkt(4.0));
        }
        tr.on_slot(10, &SlotOutcome::Empty);
        let occ = tr.occupancy();
        assert_eq!(occ.low, 10);
        assert_eq!(occ.high, 1);
        assert_eq!(occ.total(), 11);
    }

    #[test]
    fn sampling_records_phi() {
        let mut tr = PotentialTracker::default().with_sampling(2);
        tr.on_inject(0, PacketId(0), &pkt(4.0));
        for t in 0..6 {
            tr.on_slot(t, &SlotOutcome::Empty);
        }
        assert_eq!(tr.samples().len(), 3);
        assert!(tr.samples().iter().all(|&(_, phi)| phi > 0.0));
    }

    #[test]
    #[should_panic(expected = "a1 > a2 > a3 > 0")]
    fn alphas_must_decrease() {
        Alphas::new(1.0, 2.0, 3.0);
    }
}
