//! Window-size update rules (paper Figure 1).
//!
//! The single state variable of `LOW-SENSING BACKOFF` is the window `w`.
//! Hearing **noise** multiplies it by `1 + 1/(c·ln w)` (back-off); hearing
//! **silence** divides by the same factor, floored at `w_min` (back-on).
//! The gentleness of the factor — vanishing as `w` grows — is what lets the
//! analysis charge each step against the `H(t)` potential term
//! (Lemma 5.9: each listen moves `1/ln w` by `Θ(1/(c·ln³ w))`).
//!
//! These free functions are the *analytic reference form* of the rules
//! (libm `ln`, plain divide), used by the potential/theory layers and
//! tests. The protocol hot path does not call them per observation: it
//! steps the precomputed [`ladder`](crate::ladder), whose rungs are built
//! from the same update factors via the hot-path arithmetic
//! (`fast_ln` + reciprocal multiply — see `ladder::derive`).

use crate::params::Params;

/// The multiplicative update factor `1 + 1/(c·ln w)`.
///
/// # Panics
///
/// Debug-asserts `w ≥ 2` (guaranteed by [`Params`] validation upstream).
#[inline]
pub fn update_factor(c: f64, w: f64) -> f64 {
    debug_assert!(w >= 2.0, "window {w} below analytic minimum 2");
    update_factor_ln(c, w.ln())
}

/// [`update_factor`] with the caller supplying `ln w`.
///
/// The hot per-observation path in [`LowSensing`](crate::LowSensing) caches
/// the logarithm of the current window; this variant reuses it, with
/// arithmetic bit-identical to [`update_factor`].
#[inline]
pub fn update_factor_ln(c: f64, ln_w: f64) -> f64 {
    1.0 + 1.0 / (c * ln_w)
}

/// One back-off step: `w ← w · (1 + 1/(c·ln w))`.
#[inline]
pub fn back_off(params: &Params, w: f64) -> f64 {
    w * update_factor(params.c(), w)
}

/// [`back_off`] with the caller supplying `ln w` (see
/// [`update_factor_ln`]).
#[inline]
pub fn back_off_ln(params: &Params, w: f64, ln_w: f64) -> f64 {
    w * update_factor_ln(params.c(), ln_w)
}

/// One back-on step: `w ← max(w / (1 + 1/(c·ln w)), w_min)`.
#[inline]
pub fn back_on(params: &Params, w: f64) -> f64 {
    (w / update_factor(params.c(), w)).max(params.w_min())
}

/// [`back_on`] with the caller supplying `ln w` (see [`update_factor_ln`]).
#[inline]
pub fn back_on_ln(params: &Params, w: f64, ln_w: f64) -> f64 {
    (w / update_factor_ln(params.c(), ln_w)).max(params.w_min())
}

/// Number of back-off steps needed to grow `from` to at least `to`
/// (useful for sanity checks against the `Θ(c·ln w)` doubling count used in
/// the paper's energy argument, Theorem 5.25).
pub fn steps_to_grow(params: &Params, from: f64, to: f64) -> u64 {
    let mut w = from;
    let mut steps = 0;
    while w < to {
        w = back_off(params, w);
        steps += 1;
        assert!(steps < 1_000_000_000, "unreachable growth target");
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default()
    }

    #[test]
    fn back_off_grows_strictly() {
        let params = p();
        let mut w = params.w_min();
        for _ in 0..100 {
            let next = back_off(&params, w);
            assert!(next > w);
            w = next;
        }
    }

    #[test]
    fn back_on_shrinks_but_clamps() {
        let params = p();
        let w = back_on(&params, 100.0);
        assert!(w < 100.0);
        // At the floor, back-on stays put.
        assert_eq!(back_on(&params, params.w_min()), params.w_min());
    }

    #[test]
    fn back_on_inverts_back_off_approximately() {
        let params = p();
        // back_on(back_off(w)) ≈ w: the two factors differ only because the
        // window moved, an O(1/(c·ln w)) relative effect that shrinks as w
        // grows. This inexactness is exactly what the quantized ladder
        // (crate::ladder) snaps away — there, the round trip is an identity
        // by construction.
        for (w, tol) in [(100.0, 0.05), (1e4, 0.01), (1e8, 0.001)] {
            let round = back_on(&params, back_off(&params, w));
            assert!((round - w).abs() / w < tol, "w={w} round-trips to {round}");
        }
    }

    #[test]
    fn ladder_rungs_track_the_reference_rules() {
        // The ladder is built with the hot-path arithmetic (`fast_ln`,
        // reciprocal multiplies); these free functions are the analytic
        // reference (libm `ln`, divides). Consecutive rungs must agree with
        // a reference back_off step to ~1 ulp of the factor — the two
        // formulations describe the same update rule.
        let params = p();
        let ladder = crate::ladder::shared(params, params.w_min());
        for pair in ladder.rows().windows(2) {
            let reference = back_off(&params, pair[0].w);
            let rel = ((pair[1].w - reference) / reference).abs();
            assert!(rel < 1e-12, "rung {} vs reference {reference}", pair[1].w);
        }
    }

    #[test]
    fn factor_decreases_with_window() {
        let params = p();
        let f1 = update_factor(params.c(), 10.0);
        let f2 = update_factor(params.c(), 1e6);
        assert!(f1 > f2);
        assert!(f2 > 1.0);
    }

    #[test]
    fn doubling_takes_theta_c_ln_w_steps() {
        // Paper (proof of Thm 5.25): Θ(ln w) back-offs double the window.
        let params = Params::new(1.0, 4.0).unwrap();
        for w in [16.0, 256.0, 65536.0] {
            let steps = steps_to_grow(&params, w, 2.0 * w) as f64;
            let predicted = params.c() * w.ln() / std::f64::consts::LN_2;
            let ratio = steps / predicted;
            // Within a factor ~2 of c·ln(w)/ln 2 (the factor shrinks as the
            // window grows across the doubling).
            assert!(
                (0.5..=2.5).contains(&ratio),
                "w={w}: steps {steps}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn updates_preserve_floor_invariant() {
        let params = p();
        let mut w = params.w_min();
        // Mixed random-ish walk never violates w ≥ w_min.
        for i in 0..10_000 {
            w = if i % 3 == 0 {
                back_off(&params, w)
            } else {
                back_on(&params, w)
            };
            assert!(w >= params.w_min());
            assert!(w.is_finite());
        }
    }
}
