//! # lowsense — `LOW-SENSING BACKOFF`
//!
//! Reference implementation of the contention-resolution algorithm from
//! *"Fully Energy-Efficient Randomized Backoff: Slow Feedback Loops Yield
//! Fast Contention Resolution"* (Bender, Fineman, Gilbert, Kuszmaul, Young —
//! PODC 2024, arXiv:2302.07751), together with the analysis machinery the
//! paper builds: the potential function `Φ(t)`, contention regimes, and the
//! interval schedule of Theorem 5.18.
//!
//! The algorithm achieves, with high probability, **Θ(1) throughput** and
//! **polylog(N+J) channel accesses per packet** (sends *and* listens — "fully
//! energy-efficient") under adaptive adversarial arrivals and jamming, in the
//! plain ternary-feedback model with no control messages.
//!
//! ## Quick start
//!
//! ```
//! use lowsense::{LowSensing, Params};
//! use lowsense_sim::prelude::*;
//!
//! // 1000 packets arrive at once; LOW-SENSING BACKOFF drains them in O(N)
//! // slots with only polylog channel accesses per packet.
//! let result = run_sparse(
//!     &SimConfig::new(42),
//!     Batch::new(1000),
//!     NoJam,
//!     |_rng| LowSensing::new(Params::default()),
//!     &mut NoHooks,
//! );
//! assert!(result.drained());
//! assert!(result.totals.throughput() > 0.05);
//! // Energy stays polylogarithmic: ln⁴(1000) ≈ 2300 ≫ the observed max,
//! // while an every-slot listener would pay ≈ 10⁴ accesses here.
//! let max_accesses = result.access_counts().into_iter().max().unwrap();
//! assert!(max_accesses < 2300);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`params`] | validated algorithm constants `c`, `w_min` |
//! | [`window`] | the multiplicative back-off/back-on rules |
//! | [`ladder`] | the quantized reachable-window table the hot path steps |
//! | [`protocol`] | [`LowSensing`]: the Figure 1 state machine |
//! | [`potential`] | `Φ(t)`, contention, regimes (§4.1–4.2) |
//! | [`intervals`] | Theorem 5.18 interval drift recorder |
//! | [`theory`] | closed-form bounds for paper-vs-measured checks |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod intervals;
pub mod ladder;
pub mod params;
pub mod potential;
pub mod protocol;
pub mod theory;
pub mod window;

pub use intervals::{IntervalRecord, IntervalRecorder};
pub use ladder::{Ladder, LadderRow};
pub use params::{ParamError, Params};
pub use potential::{Alphas, PotentialTracker, Regime, RegimeOccupancy, RegimeThresholds};
pub use protocol::LowSensing;

/// Packet factory running `LOW-SENSING BACKOFF` with default parameters —
/// the canonical protocol argument for the engines and the scenario layer.
///
/// ```
/// use lowsense_sim::prelude::*;
///
/// let r = scenarios::batch_drain(32).run_sparse(lowsense::lsb());
/// assert!(r.drained());
/// ```
pub fn lsb() -> impl FnMut(&mut lowsense_sim::rng::SimRng) -> LowSensing + Clone {
    |_| LowSensing::new(Params::default())
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use lowsense_sim::prelude::*;

    #[test]
    fn batch_drains_with_constant_throughput() {
        let r = run_sparse(
            &SimConfig::new(1),
            Batch::new(2000),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        );
        assert!(r.drained());
        let tp = r.totals.throughput();
        assert!(tp > 0.08, "throughput {tp}");
    }

    #[test]
    fn dense_and_sparse_agree_statistically() {
        // Same workload, both engines; mean active-slot counts within 25%
        // across seeds (different random executions of the same process).
        let n = 200;
        let mean = |results: Vec<u64>| results.iter().sum::<u64>() as f64 / results.len() as f64;
        let dense: Vec<u64> = (0..8)
            .map(|s| {
                run_dense(
                    &SimConfig::new(s),
                    Batch::new(n),
                    NoJam,
                    |_| LowSensing::new(Params::default()),
                    &mut NoHooks,
                )
                .totals
                .active_slots
            })
            .collect();
        let sparse: Vec<u64> = (100..108)
            .map(|s| {
                run_sparse(
                    &SimConfig::new(s),
                    Batch::new(n),
                    NoJam,
                    |_| LowSensing::new(Params::default()),
                    &mut NoHooks,
                )
                .totals
                .active_slots
            })
            .collect();
        let (md, ms) = (mean(dense), mean(sparse));
        assert!(
            (md - ms).abs() / md < 0.25,
            "dense mean {md}, sparse mean {ms}"
        );
    }

    #[test]
    fn survives_heavy_random_jamming() {
        // ρ stays below 1/2: at ρ ≥ 1/2 sustained indefinitely, the lone
        // last packet's window walk loses its downward drift and the run
        // may never drain (consistent with the paper — the unbounded J_t
        // keeps implicit throughput Ω(1), but drain is not guaranteed).
        let r = run_sparse(
            &SimConfig::new(2),
            Batch::new(500),
            RandomJam::new(0.4),
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        );
        assert!(r.drained());
        // With the jam credit, throughput is still constant.
        assert!(r.totals.throughput() > 0.2, "{}", r.totals.throughput());
    }

    #[test]
    fn potential_is_zero_after_drain() {
        let mut tracker = PotentialTracker::default();
        let r = run_sparse(
            &SimConfig::new(3),
            Batch::new(300),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut tracker,
        );
        assert!(r.drained());
        assert_eq!(tracker.packets(), 0);
        assert!(tracker.phi().abs() < 1e-9);
        assert!(tracker.contention().abs() < 1e-9);
    }

    #[test]
    fn energy_is_small_for_large_batches() {
        let r = run_sparse(
            &SimConfig::new(4),
            Batch::new(10_000),
            NoJam,
            |_| LowSensing::new(Params::default()),
            &mut NoHooks,
        );
        assert!(r.drained());
        let counts = r.access_counts();
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        // Theorem 5.25 shape: accesses are polylog(N) — hundreds at N = 10⁴
        // (ln⁴(10⁴) ≈ 7200), versus ~10⁵ for an every-slot listener.
        assert!(mean < theory::energy_bound_finite(10_000, 0), "mean {mean}");
        assert!(
            max < theory::energy_bound_finite(10_000, 0) * 3.0,
            "max {max}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lowsense_sim::feedback::{Feedback, Observation};
    use lowsense_sim::protocol::Protocol;
    use proptest::prelude::*;

    fn obs(feedback: Feedback) -> Observation {
        Observation {
            slot: 0,
            feedback,
            sent: false,
            succeeded: false,
        }
    }

    proptest! {
        /// The window floor invariant holds under any feedback sequence.
        #[test]
        fn window_respects_floor(seq in proptest::collection::vec(0u8..3, 0..500)) {
            let params = Params::default();
            let mut p = LowSensing::new(params);
            for s in seq {
                let fb = match s {
                    0 => Feedback::Empty,
                    1 => Feedback::Success,
                    _ => Feedback::Noisy,
                };
                p.observe(&obs(fb));
                prop_assert!(p.window() >= params.w_min());
                prop_assert!(p.window().is_finite());
                // Cached probabilities stay in [0,1] and consistent.
                let send = p.send_probability();
                prop_assert!((0.0..=1.0).contains(&send));
                prop_assert!((send - 1.0 / p.window()).abs() < 1e-9);
            }
        }

        /// Back-off grows, back-on shrinks (down to the floor clamp).
        #[test]
        fn backoff_monotone(w in 4.0f64..1e9) {
            let params = Params::default();
            let up = window::back_off(&params, w);
            let down = window::back_on(&params, w);
            prop_assert!(up > w);
            prop_assert!(down <= w);
            prop_assert!(down >= params.w_min());
        }

        /// Valid parameter space: construction succeeds iff constraints hold.
        #[test]
        fn params_validation_is_total(c in 0.01f64..10.0, w in 2.0f64..1e6) {
            match Params::new(c, w) {
                Ok(p) => {
                    prop_assert!(c * w.ln().powi(3) >= 1.0);
                    prop_assert!(p.listen_probability(w) <= 1.0);
                    prop_assert!(p.send_probability_given_listen(w) <= 1.0);
                }
                Err(ParamError::SendProbabilityOverflow) => {
                    prop_assert!(c * w.ln().powi(3) < 1.0);
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
