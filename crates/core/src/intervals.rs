//! Interval-level potential drift measurement (Theorem 5.18, §4.3).
//!
//! The analysis divides the execution into intervals of length
//! `τ = (1/c_int)·max(w_max/ln²(w_max), √N)`, evaluated at the interval's
//! start, and proves that `Φ` drops by `Ω(τ) − O(A + J)` over each interval
//! w.h.p. (`A` arrivals, `J` jams inside the interval). The
//! [`IntervalRecorder`] reproduces exactly this bookkeeping on a live run so
//! experiment F2 can test the theorem's shape empirically.
//!
//! Bookkeeping conventions (all immaterial at measurement precision):
//! `Φ` is sampled at the *start* of a slot (engines report a slot before
//! applying its observations), so an interval's recorded drift misses the
//! final slot's update — an `O(1/τ)` relative effect; the drain of the
//! system is folded into the last record exactly. `Φ(start)` is read after
//! the injections of the starting slot; jam counts inside skipped gaps are
//! attributed to the interval open when the gap is accounted.

use lowsense_sim::feedback::SlotOutcome;
use lowsense_sim::hooks::Hooks;
use lowsense_sim::packet::PacketId;
use lowsense_sim::time::Slot;

use crate::potential::PotentialTracker;
use crate::protocol::LowSensing;

/// One completed analysis interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalRecord {
    /// Slot at which the interval opened.
    pub start_slot: Slot,
    /// Scheduled length `τ`.
    pub tau: u64,
    /// Realized length (may be shorter if the system drained).
    pub len: u64,
    /// `Φ` at the start.
    pub phi_start: f64,
    /// `Φ` at the end.
    pub phi_end: f64,
    /// Packet arrivals during the interval (`A`).
    pub arrivals: u64,
    /// Jammed slots during the interval (`J`).
    pub jams: u64,
    /// Whether the interval ended early because the system drained.
    pub drained: bool,
}

impl IntervalRecord {
    /// The drift `Φ(end) − Φ(start)`.
    pub fn delta_phi(&self) -> f64 {
        self.phi_end - self.phi_start
    }

    /// Drift normalized by realized length — Theorem 5.18 predicts this is
    /// `≤ −Ω(1) + O((A+J)/τ)` with high probability.
    pub fn drift_per_slot(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.delta_phi() / self.len as f64
        }
    }
}

struct OpenInterval {
    start_slot: Slot,
    tau: u64,
    elapsed: u64,
    phi_start: f64,
    arrivals: u64,
    jams: u64,
}

/// Hooks adapter that maintains a [`PotentialTracker`] and slices the run
/// into Theorem 5.18 intervals.
///
/// # Examples
///
/// ```
/// use lowsense::{IntervalRecorder, LowSensing, Params};
/// use lowsense_sim::prelude::*;
///
/// let mut rec = IntervalRecorder::new(1.0);
/// let _ = run_sparse(
///     &SimConfig::new(5),
///     Batch::new(500),
///     NoJam,
///     |_rng| LowSensing::new(Params::default()),
///     &mut rec,
/// );
/// let records = rec.records();
/// assert!(!records.is_empty());
/// // Across a drained batch run the potential falls overall.
/// let total: f64 = records.iter().map(|r| r.delta_phi()).sum();
/// assert!(total < 0.0);
/// ```
pub struct IntervalRecorder {
    tracker: PotentialTracker,
    c_int: f64,
    current: Option<OpenInterval>,
    records: Vec<IntervalRecord>,
}

impl IntervalRecorder {
    /// Creates a recorder with interval constant `c_int` (paper: `c_int`;
    /// `τ = max(L, √N)/c_int`).
    ///
    /// # Panics
    ///
    /// Panics unless `c_int > 0`.
    pub fn new(c_int: f64) -> Self {
        assert!(c_int > 0.0, "c_int must be positive");
        IntervalRecorder {
            tracker: PotentialTracker::default(),
            c_int,
            current: None,
            records: Vec::new(),
        }
    }

    /// Completed intervals.
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// The underlying potential tracker.
    pub fn tracker(&self) -> &PotentialTracker {
        &self.tracker
    }

    fn tau(&self) -> u64 {
        let l = self.tracker.l();
        let n = self.tracker.packets() as f64;
        let tau = l.max(n.sqrt()) / self.c_int;
        (tau.ceil() as u64).max(1)
    }

    fn open(&mut self, t: Slot) {
        debug_assert!(self.current.is_none());
        self.current = Some(OpenInterval {
            start_slot: t,
            tau: self.tau(),
            elapsed: 0,
            phi_start: self.tracker.phi(),
            arrivals: 0,
            jams: 0,
        });
    }

    /// Opens an interval at `start` if none is open and packets are active.
    ///
    /// Intervals open lazily at the first *accounted slot* rather than at
    /// injection time, so `τ` is computed from the full start-of-interval
    /// state (e.g. an entire batch, not its first packet).
    fn ensure_open(&mut self, start: Slot) {
        if self.current.is_none() && self.tracker.packets() > 0 {
            self.open(start);
        }
    }

    fn close(&mut self, drained: bool) {
        let iv = self.current.take().expect("closing without open interval");
        self.records.push(IntervalRecord {
            start_slot: iv.start_slot,
            tau: iv.tau,
            len: iv.elapsed,
            phi_start: iv.phi_start,
            phi_end: self.tracker.phi(),
            arrivals: iv.arrivals,
            jams: iv.jams,
            drained,
        });
    }

    /// Advances `slots` slots, the last of which is `now`, closing and
    /// reopening intervals at their scheduled boundaries.
    fn advance(&mut self, mut slots: u64, now: Slot) {
        while slots > 0 {
            if self.current.is_none() {
                if self.tracker.packets() == 0 {
                    return;
                }
                self.open(now + 1 - slots);
            }
            let iv = self.current.as_mut().expect("interval just ensured");
            let room = iv.tau - iv.elapsed;
            let step = slots.min(room);
            iv.elapsed += step;
            slots -= step;
            if iv.elapsed == iv.tau {
                self.close(false);
            }
        }
    }
}

impl Hooks<LowSensing> for IntervalRecorder {
    fn on_inject(&mut self, t: Slot, id: PacketId, state: &LowSensing) {
        self.tracker.on_inject(t, id, state);
        // Arrivals before the interval opens (i.e. in the interval's very
        // first slot) contribute to τ's N, not to the interval's A.
        if let Some(iv) = &mut self.current {
            iv.arrivals += 1;
        }
    }

    fn on_depart(&mut self, t: Slot, id: PacketId, state: &LowSensing) {
        self.tracker.on_depart(t, id, state);
        if self.tracker.packets() == 0 {
            if self.current.is_some() {
                self.close(true);
            } else if let Some(last) = self.records.last_mut() {
                // The interval closed at this very slot's scheduled
                // boundary, before the slot's departures were applied:
                // fold the drain into it so Φ(end) = 0 exactly.
                last.phi_end = self.tracker.phi();
                last.drained = true;
            }
        }
    }

    fn on_observe(&mut self, t: Slot, id: PacketId, before: &LowSensing, after: &LowSensing) {
        self.tracker.on_observe(t, id, before, after);
    }

    fn on_slot(&mut self, t: Slot, outcome: &SlotOutcome) {
        self.tracker.on_slot(t, outcome);
        self.ensure_open(t);
        if let SlotOutcome::Jammed { .. } = outcome {
            if let Some(iv) = &mut self.current {
                iv.jams += 1;
            }
        }
        self.advance(1, t);
    }

    fn on_gap(&mut self, from: Slot, to: Slot, jammed: u64) {
        self.tracker.on_gap(from, to, jammed);
        self.ensure_open(from);
        if let Some(iv) = &mut self.current {
            iv.jams += jammed;
        }
        self.advance(to - from, to - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn pkt() -> LowSensing {
        LowSensing::new(Params::default())
    }

    #[test]
    fn interval_opens_on_first_arrival_and_closes_on_drain() {
        let mut rec = IntervalRecorder::new(1.0);
        rec.on_inject(5, PacketId(0), &pkt());
        rec.on_slot(5, &SlotOutcome::Empty);
        rec.on_depart(6, PacketId(0), &pkt());
        assert_eq!(rec.records().len(), 1);
        let r = rec.records()[0];
        assert_eq!(r.start_slot, 5);
        assert!(r.drained);
        assert_eq!(r.phi_end, 0.0);
        assert!(r.phi_start > 0.0);
    }

    #[test]
    fn interval_closes_at_tau_and_reopens() {
        let mut rec = IntervalRecorder::new(1.0);
        // 9 packets → τ = ceil(max(L, 3)) with L = 4/ln²4 ≈ 2.08 → τ = 3.
        for i in 0..9 {
            rec.on_inject(0, PacketId(i), &pkt());
        }
        for t in 0..7 {
            rec.on_slot(t, &SlotOutcome::Empty);
        }
        // τ = 3: closed intervals at slots 0-2 and 3-5; third one open.
        assert_eq!(rec.records().len(), 2);
        assert!(rec.records().iter().all(|r| r.tau == 3 && r.len == 3));
        assert!(!rec.records()[0].drained);
    }

    #[test]
    fn gap_advances_across_boundaries() {
        let mut rec = IntervalRecorder::new(1.0);
        for i in 0..100 {
            rec.on_inject(0, PacketId(i), &pkt());
        }
        // τ = 10 (√100); a 35-slot gap closes three intervals.
        rec.on_gap(0, 35, 7);
        assert_eq!(rec.records().len(), 3);
        assert_eq!(rec.records()[0].jams, 7, "gap jams go to the open interval");
        assert_eq!(rec.records()[1].jams, 0);
    }

    #[test]
    fn arrivals_counted_inside_interval() {
        let mut rec = IntervalRecorder::new(1.0);
        for i in 0..4 {
            rec.on_inject(0, PacketId(i), &pkt());
        }
        rec.on_slot(0, &SlotOutcome::Empty);
        rec.on_inject(1, PacketId(4), &pkt());
        rec.on_slot(1, &SlotOutcome::Empty);
        // First interval: τ = max(2.08, 2) → 3 slots; the slot-1 arrival
        // lands inside it.
        rec.on_slot(2, &SlotOutcome::Empty);
        assert_eq!(rec.records().len(), 1);
        assert_eq!(rec.records()[0].arrivals, 1);
    }

    #[test]
    fn drift_helpers() {
        let r = IntervalRecord {
            start_slot: 0,
            tau: 10,
            len: 10,
            phi_start: 50.0,
            phi_end: 42.0,
            arrivals: 0,
            jams: 0,
            drained: false,
        };
        assert!((r.delta_phi() + 8.0).abs() < 1e-12);
        assert!((r.drift_per_slot() + 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "c_int must be positive")]
    fn c_int_validated() {
        IntervalRecorder::new(0.0);
    }
}
