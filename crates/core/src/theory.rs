//! Closed-form bounds from the paper, as comparable quantities.
//!
//! The theorems are asymptotic; experiments compare *shapes* against these
//! functions (ratios should stay bounded across geometric sweeps, not match
//! absolute constants).

/// `ln^k(x + e)` — the polylog building block, shifted so it is ≥ 1 for all
/// `x ≥ 0`.
pub fn polylog(x: f64, k: i32) -> f64 {
    (x + std::f64::consts::E).ln().powi(k)
}

/// Theorem 5.25: per-packet channel accesses against an adaptive (non-
/// reactive) adversary are `O(ln⁴(N + J))`.
pub fn energy_bound_finite(n: u64, j: u64) -> f64 {
    polylog((n + j) as f64, 4)
}

/// Theorem 5.26 (worst case): against a reactive adversary a packet accesses
/// the channel `O((J+1)·ln³(N+J) + ln⁴(N+J))` times.
pub fn energy_bound_reactive(n: u64, j: u64) -> f64 {
    let x = (n + j) as f64;
    (j + 1) as f64 * polylog(x, 3) + polylog(x, 4)
}

/// Theorem 5.26 (average): mean accesses per packet are
/// `O((J/N + 1)·ln⁴(N+J))`.
pub fn energy_bound_reactive_avg(n: u64, j: u64) -> f64 {
    let x = (n + j) as f64;
    (j as f64 / n.max(1) as f64 + 1.0) * polylog(x, 4)
}

/// Theorem 5.18's interval length:
/// `τ = (1/c_int)·max(w_max/ln²(w_max), √N)`.
pub fn interval_length(w_max: f64, n: u64, c_int: f64) -> f64 {
    let l = if w_max > 1.0 {
        w_max / w_max.ln().powi(2)
    } else {
        0.0
    };
    l.max((n as f64).sqrt()) / c_int
}

/// Lemma 5.1 lower bound: `p_succ ≥ C·e^{−2C}` for unjammed slots with all
/// windows ≥ 2.
pub fn success_probability_lower(c: f64) -> f64 {
    c * (-2.0 * c).exp()
}

/// Lemma 5.1 upper bound: `p_succ ≤ 2C·e^{−C}`.
pub fn success_probability_upper(c: f64) -> f64 {
    2.0 * c * (-c).exp()
}

/// Lemma 5.2: `e^{−2C} ≤ p_empty ≤ e^{−C}`.
pub fn empty_probability_bounds(c: f64) -> (f64, f64) {
    ((-2.0 * c).exp(), (-c).exp())
}

/// Lemma 5.3 lower bound: `p_noisy ≥ 1 − 2C·e^{−C} − e^{−C}`.
pub fn noisy_probability_lower(c: f64) -> f64 {
    (1.0 - 2.0 * c * (-c).exp() - (-c).exp()).max(0.0)
}

/// The classic `O(1/ln N)` throughput ceiling of binary exponential backoff
/// on batch inputs (\[23\], quoted in §1) — the baseline curve T2 compares
/// against.
pub fn beb_throughput_envelope(n: u64) -> f64 {
    1.0 / polylog(n as f64, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polylog_monotone_and_positive() {
        assert!(polylog(0.0, 4) >= 1.0);
        assert!(polylog(100.0, 4) > polylog(10.0, 4));
        assert!(polylog(1e9, 2) > 0.0);
    }

    #[test]
    fn energy_bounds_grow_slowly() {
        let small = energy_bound_finite(1_000, 0);
        let big = energy_bound_finite(1_000_000, 0);
        // ln⁴ grows ≈ (ln(1e6)/ln(1e3))⁴ = 16× here, far below the 1000×
        // input growth.
        assert!(big / small < 20.0);
        assert!(big > small);
    }

    #[test]
    fn reactive_bound_dominates_adaptive() {
        for (n, j) in [(100u64, 0u64), (1000, 50), (10_000, 10_000)] {
            assert!(energy_bound_reactive(n, j) >= energy_bound_finite(n, j));
        }
    }

    #[test]
    fn reactive_avg_scales_with_jam_ratio() {
        let base = energy_bound_reactive_avg(1000, 0);
        let jammed = energy_bound_reactive_avg(1000, 5000);
        assert!(jammed > 5.0 * base);
    }

    #[test]
    fn interval_length_switches_regimes() {
        // Few packets, huge window: L dominates.
        let l_dominated = interval_length(1e6, 4, 1.0);
        assert!(l_dominated > 5000.0);
        // Many packets, small window: √N dominates.
        let n_dominated = interval_length(8.0, 10_000, 1.0);
        assert!((n_dominated - 100.0).abs() < 1e-9);
        // c_int scales inversely.
        assert!((interval_length(8.0, 10_000, 2.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn slot_probability_bounds_are_consistent() {
        for c in [0.01, 0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!(success_probability_lower(c) <= success_probability_upper(c));
            let (lo, hi) = empty_probability_bounds(c);
            assert!(lo <= hi);
            // The three outcome classes cannot overfill the unit interval:
            // lower bounds sum to ≤ 1.
            let sum = success_probability_lower(c) + lo + noisy_probability_lower(c);
            assert!(sum <= 1.0 + 1e-12, "c={c}: {sum}");
        }
    }

    #[test]
    fn success_probability_peaks_near_c_equals_one() {
        // Both envelope curves peak at C = O(1): maximum of C·e^{-2C} is at
        // C = 0.5, of 2C·e^{-C} at C = 1.
        let peak_lo = success_probability_lower(0.5);
        assert!(peak_lo > success_probability_lower(0.1));
        assert!(peak_lo > success_probability_lower(2.0));
        let peak_hi = success_probability_upper(1.0);
        assert!(peak_hi > success_probability_upper(0.2));
        assert!(peak_hi > success_probability_upper(4.0));
    }

    #[test]
    fn beb_envelope_decays() {
        assert!(beb_throughput_envelope(10) > beb_throughput_envelope(10_000));
        assert!(beb_throughput_envelope(1 << 20) > 0.0);
    }
}
