//! The campaign layer's core guarantee: the result — down to the artifact
//! bytes — is a pure function of the spec, independent of shard count.
//! `run_serial` is the plain-loop oracle, mirroring the sparse engine's
//! sparse-vs-reference pattern.

use std::collections::HashSet;

use lowsense_campaign::{CampaignSpec, ScenarioPoint};
use lowsense_sim::dist::geometric;
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::scenarios;
use proptest::prelude::*;

/// A stateful test protocol (backs off on noise) so runs actually depend
/// on their seeds and feedback paths.
#[derive(Clone)]
struct Backoff {
    p: f64,
}

impl Protocol for Backoff {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if rng.bernoulli(self.p) {
            Intent::Send
        } else {
            Intent::Sleep
        }
    }
    fn observe(&mut self, obs: &Observation) {
        match obs.feedback {
            Feedback::Noisy => self.p = (self.p * 0.5).max(1e-4),
            Feedback::Empty => self.p = (self.p * 2.0).min(0.5),
            Feedback::Success => {}
        }
    }
    fn send_probability(&self) -> f64 {
        self.p
    }
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        Some(geometric(rng, self.p))
    }
}

impl SparseProtocol for Backoff {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }
}

fn demo_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::new("determinism-demo")
        .seed(seed)
        .replicates(3)
        .scenario(ScenarioPoint::new(scenarios::batch_drain(24).boxed()).knob("n", 24.0))
        .scenario(
            ScenarioPoint::new(scenarios::random_jam_batch(24, 0.2).boxed())
                .knob("n", 24.0)
                .knob("rho", 0.2),
        )
        .scenario(scenarios::poisson_stream(0.05, 24).boxed())
        .protocol("fast", |sc, _| sc.run_sparse(|_| Backoff { p: 0.2 }))
        .protocol("slow", |sc, _| sc.run_sparse(|_| Backoff { p: 0.05 }))
        .metric("last_slot", |r| r.totals.last_slot as f64)
}

#[test]
fn sharded_equals_serial_for_any_shard_count() {
    let spec = demo_spec(42);
    let oracle = spec.run_serial();
    let json = oracle.to_json();
    for shards in [1, 2, 8] {
        let sharded = spec.run_sharded(shards);
        assert_eq!(sharded, oracle, "result drifted at {shards} shards");
        assert_eq!(
            sharded.to_json(),
            json,
            "artifact bytes drifted at {shards} shards"
        );
    }
}

#[test]
fn campaign_seed_changes_every_run() {
    let a = demo_spec(1).run_serial();
    let b = demo_spec(2).run_serial();
    assert_ne!(a.to_json(), b.to_json(), "seed must matter");
    // Same seed replays byte-identically.
    assert_eq!(demo_spec(1).run_serial().to_json(), a.to_json());
}

#[test]
fn reports_carry_grid_metadata() {
    let r = demo_spec(7).run_sharded(2);
    assert_eq!(r.cells.len(), 6);
    assert_eq!(r.scenarios.len(), 3);
    assert_eq!(r.protocols, vec!["fast".to_string(), "slow".to_string()]);
    let jammed_fast = r.cell(1, 0);
    assert_eq!(jammed_fast.cell_index, 2);
    assert_eq!(jammed_fast.knobs["rho"], 0.2);
    assert_eq!(jammed_fast.stats.runs, 3);
    assert!(jammed_fast.stats.jammed_active > 0, "jammer jams");
    let m = jammed_fast
        .stats
        .metric("last_slot")
        .expect("custom metric");
    assert_eq!(m.count(), 3);
    // The artifact renders and parses as non-empty text.
    assert!(r.render().contains("fast"));
    assert!(r.to_json().contains("\"schema\": \"lowsense-campaign/2\""));
    // No explicit model axis: the implicit column reports each scenario's
    // intrinsic channel, and the axis array stays empty.
    assert!(r.models.is_empty());
    assert_eq!(jammed_fast.model, "ternary");
}

#[test]
fn model_axis_crosses_every_cell_and_stays_shard_invariant() {
    use lowsense_sim::feedback::ChannelModel;
    let spec = demo_spec(11).models([
        ChannelModel::Ternary,
        ChannelModel::NoCollisionDetection,
        ChannelModel::CostlyCollisions { alpha: 0.5 },
    ]);
    assert_eq!(spec.cell_count(), 18);
    let oracle = spec.run_serial();
    assert_eq!(oracle.cells.len(), 18);
    assert_eq!(oracle.models.len(), 3);
    for shards in [1, 4] {
        assert_eq!(spec.run_sharded(shards), oracle, "{shards} shards");
    }
    // Model innermost: the (scenario 1, protocol 0) block holds the three
    // models at consecutive indices, labelled by the axis.
    let base = oracle.cell_model(1, 0, 0);
    assert_eq!(base.cell_index, 6);
    assert_eq!(base.model, "ternary");
    assert_eq!(oracle.cell_model(1, 0, 1).model, "no-cd");
    assert_eq!(oracle.cell_model(1, 0, 2).model, "costly(alpha=0.5)");
    let json = oracle.to_json();
    assert!(json.contains("\"models\": [\"ternary\", \"no-cd\", \"costly(alpha=0.5)\"]"));
    // Model cells are separate grid cells with their own derived seeds —
    // never silently aliased onto one another.
    assert_ne!(
        oracle.cell_model(1, 0, 0).stats,
        oracle.cell_model(1, 0, 1).stats,
        "model cells must be distinct runs"
    );
    // And the costly channel visibly dilates the clock on a jammed batch
    // (collisions are certain there), which neither other model does.
    assert!(
        oracle.cell_model(1, 0, 2).stats.overhead_slots > 0,
        "costly collisions must accumulate overhead"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cell-seed derivation is collision-free across a sampled grid (and
    /// across neighbouring campaign seeds, which share no runs).
    #[test]
    fn cell_seeds_are_collision_free_on_sampled_grids(
        campaign_seed in 0u64..1_000_000,
        cells in 1u64..96,
        replicates in 1u64..24,
    ) {
        let mut seen = HashSet::new();
        for cell in 0..cells {
            for rep in 0..replicates {
                let s = lowsense_campaign::seed::cell_seed(campaign_seed, cell, rep);
                prop_assert!(
                    seen.insert(s),
                    "collision at campaign {campaign_seed}, cell {cell}, replicate {rep}"
                );
            }
        }
        // A neighbouring campaign's grid stays disjoint too.
        for cell in 0..cells {
            for rep in 0..replicates {
                let s = lowsense_campaign::seed::cell_seed(campaign_seed + 1, cell, rep);
                prop_assert!(seen.insert(s), "cross-campaign collision");
            }
        }
    }
}
