//! The work-stealing shard pool — the workspace's one parallel executor.
//!
//! [`shard_map`] maps a function over a vector of independent jobs on a
//! pool of scoped threads ([`std::thread::scope`]), preserving input
//! order. Idle shards steal the next unclaimed job through a shared atomic
//! cursor, so the *assignment* of jobs to threads is nondeterministic —
//! which is exactly why everything built on top (the campaign executors,
//! `lowsense-experiments`' `parallel_map`) must derive a job's behaviour
//! from its index alone, never from which shard ran it.
//!
//! # Panic containment
//!
//! A panicking job does not poison the batch: every job runs under
//! [`std::panic::catch_unwind`], the remaining jobs still execute, and the
//! pool then re-raises the panic of the **lowest-indexed** failing job with
//! its original payload. Callers observe the same panic they would have
//! seen running the jobs serially — deterministically, regardless of shard
//! count or scheduling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default shard count: one per available core.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Maps `f` over `items` on [`default_shards`] threads, preserving order.
pub fn shard_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    shard_map_with(default_shards(), items, f)
}

/// Maps `f` over `items` on exactly `shards` worker threads (clamped to
/// `1..=items.len()`), preserving input order in the output.
///
/// Jobs are claimed dynamically: each worker repeatedly takes the next
/// unprocessed index, so stragglers never serialize the batch. With
/// `shards == 1` (or a single item) the map runs inline on the caller's
/// thread — the serial reference behaviour.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed panicking job, after all
/// other jobs have completed (see the [module docs](self)).
pub fn shard_map_with<I, T, F>(shards: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, n);
    if shards == 1 {
        // Inline serial path: panics propagate from the panicking job
        // directly, which matches the pool's lowest-index-first contract
        // (later jobs simply never run — they cannot have been observed).
        return items.into_iter().map(f).collect();
    }

    // Jobs are moved out of their slots exactly once, keyed by the atomic
    // cursor; the per-slot mutex is uncontended by construction.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    type JobResult<T> = (usize, Result<T, Box<dyn std::any::Any + Send>>);

    let gathered: Vec<JobResult<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<JobResult<T>> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("job slot lock")
                            .take()
                            .expect("job claimed exactly once");
                        // AssertUnwindSafe: the panic is re-raised to the
                        // caller below, so no half-updated state is ever
                        // observed across the boundary.
                        local.push((i, catch_unwind(AssertUnwindSafe(|| f(item)))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker itself never panics"))
            .collect()
    });

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    for (i, r) in gathered {
        match r {
            Ok(v) => out[i] = Some(v),
            Err(payload) => {
                if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_panic = Some((i, payload));
                }
            }
        }
    }
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = shard_map_with(4, (0..1000u64).collect(), |x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u64> = shard_map_with(8, Vec::new(), |x: u64| x);
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_items_than_shards() {
        let out = shard_map_with(64, vec![1u64, 2, 3], |x| x + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn zero_shards_clamps_to_serial() {
        let out = shard_map_with(0, vec![5u64, 6], |x| x);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn result_is_shard_count_invariant() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        for shards in [1, 2, 3, 8, 32] {
            let out = shard_map_with(shards, items.clone(), |x| x.wrapping_mul(0x9E37));
            assert_eq!(out, expect, "shards={shards}");
        }
    }

    #[test]
    fn panic_carries_original_payload_and_lowest_index() {
        for shards in [2, 8] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                shard_map_with(shards, (0..100u64).collect(), |x| {
                    if x == 13 || x == 77 {
                        panic!("job {x} failed");
                    }
                    x
                })
            }))
            .expect_err("must propagate the job panic");
            let msg = err
                .downcast_ref::<String>()
                .expect("panic payload is the original format string");
            assert_eq!(msg, "job 13 failed", "lowest-indexed panic wins");
        }
    }

    #[test]
    fn other_jobs_complete_despite_a_panic() {
        use std::sync::atomic::AtomicU64;
        let done = AtomicU64::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            shard_map_with(4, (0..50u64).collect(), |x| {
                if x == 0 {
                    panic!("first job dies");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert_eq!(done.load(Ordering::Relaxed), 49, "survivors all ran");
    }
}
