//! Machine-readable campaign artifacts (`CAMPAIGN_<name>.json`) and the
//! human-readable table.
//!
//! The JSON is schema-versioned (`lowsense-campaign/2` — `/2` added the
//! top-level `models` axis and the per-cell `model` key) like
//! `BENCH_engine.json`, and is emitted by a deterministic hand-rolled
//! writer: keys in fixed order, floats via Rust's shortest-roundtrip
//! `Display` — so the artifact bytes are a pure function of the
//! [`CampaignResult`], which in turn is a pure function of the spec
//! (including across shard counts; the CI canary diffs 1-shard vs 4-shard
//! bytes). Deliberately **absent** from the artifact: shard count, timing,
//! host — anything that would vary across equivalent executions.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use lowsense_stats::Welford;

use crate::exec::{CampaignResult, CellReport};

/// Schema tag of the JSON artifact.
pub const SCHEMA: &str = "lowsense-campaign/2";

/// Escapes a string for a JSON literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float deterministically (shortest roundtrip); non-finite
/// values (which no accumulator should produce) become `null`.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// `{"n": …, "mean": …, "sd": …, "se": …, "min": …, "max": …}` of a
/// Welford accumulator (degenerate zeros when empty).
fn welford_json(w: &Welford) -> String {
    let s = w.summary();
    format!(
        "{{ \"n\": {}, \"mean\": {}, \"sd\": {}, \"se\": {}, \"min\": {}, \"max\": {} }}",
        s.n,
        num(s.mean),
        num(s.sd),
        num(s.se),
        num(s.min),
        num(s.max)
    )
}

fn cell_json(cell: &CellReport, out: &mut String) {
    let s = &cell.stats;
    let _ = write!(
        out,
        "    {{\n      \"cell_index\": {}, \"scenario\": \"{}\", \"protocol\": \"{}\", \
         \"model\": \"{}\",\n",
        cell.cell_index,
        esc(&cell.scenario),
        esc(&cell.protocol),
        esc(&cell.model)
    );
    let knobs: Vec<String> = cell
        .knobs
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", esc(k), num(*v)))
        .collect();
    let _ = writeln!(out, "      \"knobs\": {{ {} }},", knobs.join(", "));
    let _ = writeln!(
        out,
        "      \"runs\": {}, \"totals\": {{ \"arrivals\": {}, \"successes\": {}, \
         \"active_slots\": {}, \"jammed_active\": {}, \"sends\": {}, \"listens\": {}, \
         \"overhead_slots\": {}, \"max_backlog\": {} }},",
        s.runs,
        s.arrivals,
        s.successes,
        s.active_slots,
        s.jammed_active,
        s.sends,
        s.listens,
        s.overhead_slots,
        s.max_backlog
    );
    let _ = writeln!(
        out,
        "      \"throughput\": {},",
        welford_json(&s.throughput)
    );
    let acc = s.accesses.summary();
    let _ = writeln!(
        out,
        "      \"accesses\": {{ \"n\": {}, \"mean\": {}, \"sd\": {}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {} }},",
        acc.n,
        num(acc.mean),
        num(acc.sd),
        num(acc.min),
        num(acc.max),
        num(s.access_sketch.quantile(0.5)),
        num(s.access_sketch.quantile(0.9)),
        num(s.access_sketch.quantile(0.99))
    );
    // Nonzero histogram rows as [lower_edge, count] pairs (the upper edge
    // is the next row's lower edge; the tail bucket's is open).
    let rows: Vec<String> = s
        .access_hist
        .buckets()
        .filter(|(_, _, c)| *c > 0)
        .map(|(lo, _, c)| format!("[{}, {}]", num(lo), c))
        .collect();
    let _ = writeln!(out, "      \"access_hist\": [{}],", rows.join(", "));
    let metrics: Vec<String> = s
        .metrics
        .iter()
        .map(|(name, w)| format!("\"{}\": {}", esc(name), welford_json(w)))
        .collect();
    let _ = write!(
        out,
        "      \"metrics\": {{ {} }}\n    }}",
        metrics.join(", ")
    );
}

impl CampaignResult {
    /// Renders the schema-versioned JSON artifact (see the
    /// [module docs](self) for the determinism contract).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", esc(&self.name));
        let _ = writeln!(
            out,
            "  \"campaign_seed\": {}, \"replicates\": {},",
            self.seed, self.replicates
        );
        let axis = |labels: &[String]| -> String {
            labels
                .iter()
                .map(|l| format!("\"{}\"", esc(l)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "  \"scenarios\": [{}],", axis(&self.scenarios));
        let _ = writeln!(out, "  \"protocols\": [{}],", axis(&self.protocols));
        let _ = writeln!(out, "  \"models\": [{}],", axis(&self.models));
        let _ = writeln!(out, "  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            cell_json(cell, &mut out);
            let _ = writeln!(out, "{}", if i + 1 == self.cells.len() { "" } else { "," });
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`to_json`](CampaignResult::to_json) to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Renders an aligned human-readable table: one row per cell with the
    /// headline statistics.
    pub fn render(&self) -> String {
        // The model column only appears when the campaign had a model
        // axis, so plain sweeps render exactly as before.
        let with_models = !self.models.is_empty();
        let mut header = vec!["scenario".to_string(), "protocol".to_string()];
        if with_models {
            header.push("model".to_string());
        }
        header.extend(
            [
                "runs", "thr.mean", "thr.se", "acc.mean", "acc.p50", "acc.p99", "acc.max",
            ]
            .map(String::from),
        );
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let s = &cell.stats;
            let thr = s.throughput.summary();
            let acc = s.accesses.summary();
            let mut row = vec![cell.scenario.clone(), cell.protocol.clone()];
            if with_models {
                row.push(cell.model.clone());
            }
            row.extend([
                s.runs.to_string(),
                format!("{:.3}", thr.mean),
                format!("{:.3}", thr.se),
                format!("{:.1}", acc.mean),
                format!("{:.0}", s.access_sketch.quantile(0.5)),
                format!("{:.0}", s.access_sketch.quantile(0.99)),
                format!("{:.0}", acc.max),
            ]);
            rows.push(row);
        }
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== campaign {} — seed {}, {} replicates/cell ==",
            self.name, self.seed, self.replicates
        );
        let _ = writeln!(out, "{}", fmt_row(&header));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn num_formats_deterministically() {
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
