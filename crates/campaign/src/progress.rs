//! Live campaign progress: a bounded channel from the shard workers to a
//! reporter thread.
//!
//! # Determinism argument
//!
//! Progress reporting must never be able to change a campaign's artifact,
//! so the worker side is write-only and content-free: after a unit's
//! [`CellStats`](crate::cell::CellStats) is already final, the wrapped
//! job sends one `UnitDone` — the unit *index* plus its wall time —
//! down a bounded [`sync_channel`] and moves on. No statistic crosses the
//! channel, no worker reads anything back, and the fold path is the same
//! `shard_map_with` + left-to-right replicate merge as
//! [`run_sharded`](crate::spec::CampaignSpec::run_sharded). The reporter
//! thread owns all presentation state (completion counts, the Welford of
//! unit wall times behind the ETA, the JSONL writer), and since events
//! arrive in nondeterministic shard order it assigns its own monotone
//! `seq` — consumers sort or group by the index fields, never by arrival.
//! Wall-time fields are real measurements and therefore nondeterministic;
//! they exist only in the progress stream, which is why the artifact
//! bytes stay identical with the reporter on or off (pinned by the CI
//! canary).

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;
use std::time::Instant;

use lowsense_obs::{Registry, Telemetry};
use lowsense_stats::Welford;

use crate::artifact::esc;

/// Schema tag stamped on the progress JSONL header record.
pub const PROGRESS_SCHEMA: &str = "lowsense-campaign-progress/1";

/// Capacity of the worker → reporter channel. Far larger than any
/// realistic in-flight burst; if the reporter ever falls this far behind,
/// workers block briefly rather than ballooning memory.
const CHANNEL_BOUND: usize = 4096;

/// Where progress should go.
#[derive(Debug, Clone, Default)]
pub struct ProgressConfig {
    /// Render a live one-line progress display on stderr.
    pub stderr: bool,
    /// Append machine-readable progress records to this JSONL file.
    pub jsonl: Option<PathBuf>,
}

impl ProgressConfig {
    /// No reporting: execution is exactly
    /// [`run_sharded`](crate::spec::CampaignSpec::run_sharded).
    pub fn disabled() -> Self {
        ProgressConfig::default()
    }

    /// Whether any sink is configured.
    pub fn enabled(&self) -> bool {
        self.stderr || self.jsonl.is_some()
    }
}

/// One completed `(cell, replicate)` unit, worker → reporter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UnitDone {
    /// Unit index (`cell * replicates + replicate`).
    pub unit: usize,
    /// Wall time the unit took on its shard, in seconds.
    pub wall_secs: f64,
}

/// Static campaign facts the reporter needs for rendering.
#[derive(Debug, Clone)]
pub(crate) struct ProgressMeta {
    pub campaign: String,
    pub cells: usize,
    pub replicates: usize,
    pub shards: usize,
}

impl ProgressMeta {
    fn units(&self) -> usize {
        self.cells * self.replicates
    }
}

/// The reporter half: a spawned thread draining [`UnitDone`] events.
///
/// Dropping every [`SyncSender`] clone ends the stream; [`Reporter::finish`]
/// then joins the thread and returns the telemetry registry it filled.
pub(crate) struct Reporter {
    tx: SyncSender<UnitDone>,
    handle: thread::JoinHandle<Registry>,
}

impl Reporter {
    /// Spawns the reporter. Opens the JSONL sink eagerly so configuration
    /// errors surface before any work runs.
    pub fn spawn(meta: ProgressMeta, cfg: &ProgressConfig) -> io::Result<Reporter> {
        let out = match &cfg.jsonl {
            Some(path) => Some(BufWriter::new(File::create(path)?)),
            None => None,
        };
        let stderr = cfg.stderr;
        let (tx, rx) = sync_channel(CHANNEL_BOUND);
        let handle = thread::Builder::new()
            .name("campaign-progress".into())
            .spawn(move || report(rx, meta, out, stderr))
            .expect("spawn progress reporter");
        Ok(Reporter { tx, handle })
    }

    /// A sender for worker threads (cheap to clone, `Sync` to share).
    pub fn sender(&self) -> SyncSender<UnitDone> {
        self.tx.clone()
    }

    /// Drops the reporter's own sender and joins the thread. Call after
    /// every worker-side sender is gone.
    pub fn finish(self) -> Registry {
        drop(self.tx);
        self.handle.join().expect("progress reporter panicked")
    }
}

/// The reporter loop: drains events until every sender hangs up.
fn report(
    rx: Receiver<UnitDone>,
    meta: ProgressMeta,
    mut out: Option<BufWriter<File>>,
    stderr: bool,
) -> Registry {
    let start = Instant::now();
    let units_total = meta.units();
    let mut seq: u64 = 0;
    let mut units_done: usize = 0;
    let mut cells_done: usize = 0;
    let mut remaining: Vec<usize> = vec![meta.replicates; meta.cells];
    let mut wall = Welford::new();

    if let Some(w) = out.as_mut() {
        let _ = writeln!(
            w,
            "{{\"schema\":\"{PROGRESS_SCHEMA}\",\"campaign\":\"{}\",\"cells\":{},\
             \"replicates\":{},\"units\":{},\"shards\":{}}}",
            esc(&meta.campaign),
            meta.cells,
            meta.replicates,
            units_total,
            meta.shards,
        );
    }

    while let Ok(ev) = rx.recv() {
        seq += 1;
        units_done += 1;
        wall.push(ev.wall_secs);
        let cell = ev.unit / meta.replicates;
        let replicate = ev.unit % meta.replicates;
        let cell_finished = {
            remaining[cell] -= 1;
            remaining[cell] == 0
        };
        if cell_finished {
            cells_done += 1;
        }
        if let Some(w) = out.as_mut() {
            let _ = writeln!(
                w,
                "{{\"t\":\"unit\",\"seq\":{seq},\"unit\":{},\"cell\":{cell},\
                 \"replicate\":{replicate},\"wall_ms\":{:.3}}}",
                ev.unit,
                ev.wall_secs * 1e3,
            );
            if cell_finished {
                let _ = writeln!(
                    w,
                    "{{\"t\":\"cell\",\"seq\":{seq},\"cell\":{cell},\
                     \"done\":{cells_done},\"total\":{}}}",
                    meta.cells,
                );
            }
        }
        if stderr {
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            let cells_per_sec = cells_done as f64 / elapsed;
            // ETA: mean unit wall time spread over the shard pool. The
            // pool runs ~shards units concurrently, so remaining wall
            // clock ≈ remaining units · mean / shards.
            let eta = (units_total - units_done) as f64 * wall.mean() / meta.shards.max(1) as f64;
            eprint!(
                "\r{}: cells {}/{} · units {}/{} · {:.2} cells/s · ETA {:.1}s   ",
                meta.campaign, cells_done, meta.cells, units_done, units_total, cells_per_sec, eta,
            );
        }
    }

    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let cells_per_sec = cells_done as f64 / elapsed;
    if let Some(w) = out.as_mut() {
        let _ = writeln!(
            w,
            "{{\"t\":\"done\",\"done\":{cells_done},\"total\":{},\"units\":{units_done},\
             \"elapsed_ms\":{:.3},\"wall_mean_ms\":{:.3},\"cells_per_sec\":{:.3}}}",
            meta.cells,
            elapsed * 1e3,
            wall.mean() * 1e3,
            cells_per_sec,
        );
        let _ = w.flush();
    }
    if stderr {
        eprintln!(
            "\r{}: {} cells in {:.1}s ({:.2} cells/s)                    ",
            meta.campaign, cells_done, elapsed, cells_per_sec
        );
    }

    let mut reg = Registry::new();
    reg.add("progress.units", units_done as u64);
    reg.add("progress.cells", cells_done as u64);
    reg.set("progress.elapsed_secs", elapsed);
    reg.set("progress.unit_wall_mean_secs", wall.mean());
    reg.set("progress.cells_per_sec", cells_per_sec);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(cells: usize, replicates: usize) -> ProgressMeta {
        ProgressMeta {
            campaign: "t".into(),
            cells,
            replicates,
            shards: 2,
        }
    }

    #[test]
    fn disabled_config_reports_nothing_enabled() {
        assert!(!ProgressConfig::disabled().enabled());
        assert!(ProgressConfig {
            stderr: true,
            jsonl: None
        }
        .enabled());
    }

    #[test]
    fn reporter_counts_units_and_cells() {
        let rep = Reporter::spawn(meta(2, 2), &ProgressConfig::disabled()).unwrap();
        let tx = rep.sender();
        // Arbitrary arrival order — indices, not order, drive the counts.
        for unit in [3usize, 0, 2, 1] {
            tx.send(UnitDone {
                unit,
                wall_secs: 0.001,
            })
            .unwrap();
        }
        drop(tx);
        let reg = rep.finish();
        assert_eq!(reg.counter("progress.units"), 4);
        assert_eq!(reg.counter("progress.cells"), 2);
        assert!(reg.gauge("progress.cells_per_sec").unwrap() > 0.0);
    }

    #[test]
    fn jsonl_stream_has_header_units_cells_footer() {
        let dir = std::env::temp_dir().join("lowsense_progress_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("progress_{}.jsonl", std::process::id()));
        let cfg = ProgressConfig {
            stderr: false,
            jsonl: Some(path.clone()),
        };
        let rep = Reporter::spawn(meta(2, 1), &cfg).unwrap();
        let tx = rep.sender();
        for unit in [1usize, 0] {
            tx.send(UnitDone {
                unit,
                wall_secs: 0.5,
            })
            .unwrap();
        }
        drop(tx);
        let _ = rep.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"schema\":\"lowsense-campaign-progress/1\""));
        assert!(lines[0].contains("\"units\":2"));
        // 2 unit records, each completing its 1-replicate cell => 2 cell
        // records, then the footer.
        assert_eq!(lines.len(), 1 + 2 + 2 + 1);
        assert!(lines[1].contains("\"t\":\"unit\"") && lines[1].contains("\"seq\":1"));
        assert!(lines[2].contains("\"t\":\"cell\"") && lines[2].contains("\"done\":1"));
        let footer = lines.last().unwrap();
        assert!(footer.contains("\"t\":\"done\""));
        assert!(footer.contains("\"done\":2,\"total\":2"));
    }

    #[test]
    fn jsonl_open_failure_surfaces_before_any_work() {
        let cfg = ProgressConfig {
            stderr: false,
            jsonl: Some(PathBuf::from("/nonexistent-dir/progress.jsonl")),
        };
        assert!(Reporter::spawn(meta(1, 1), &cfg).is_err());
    }
}
