//! The declarative sweep description: scenarios × protocols × replicates.
//!
//! A [`CampaignSpec`] is the full-factorial grid of a **scenario axis**
//! (type-erased [`DynScenario`]s, optionally annotated with numeric knobs
//! like `n` or the jam budget) and a **protocol axis** (named closures
//! that run a seeded scenario on some engine), replicated `replicates`
//! times with seeds derived per `(cell, replicate)` by
//! [`crate::seed::cell_seed`]. Cells are indexed scenario-major:
//! `cell = scenario_idx · protocols + protocol_idx`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::DynScenario;

/// One point on the scenario axis: a reusable run description plus the
/// numeric knobs it was built from (so protocol runners and reports can
/// read e.g. the batch size back without parsing the label).
#[derive(Clone)]
pub struct ScenarioPoint {
    label: String,
    scenario: DynScenario,
    knobs: BTreeMap<String, f64>,
}

impl ScenarioPoint {
    /// Wraps a scenario, labelling the point with the scenario's name.
    pub fn new(scenario: DynScenario) -> Self {
        ScenarioPoint {
            label: scenario.name().to_string(),
            scenario,
            knobs: BTreeMap::new(),
        }
    }

    /// Overrides the point's label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Annotates the point with a named numeric knob (builder-style).
    pub fn knob(mut self, name: impl Into<String>, value: f64) -> Self {
        self.knobs.insert(name.into(), value);
        self
    }

    /// The point's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped scenario.
    pub fn scenario(&self) -> &DynScenario {
        &self.scenario
    }

    /// The point's knob annotations.
    pub fn knobs(&self) -> &BTreeMap<String, f64> {
        &self.knobs
    }
}

impl fmt::Debug for ScenarioPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioPoint")
            .field("label", &self.label)
            .field("knobs", &self.knobs)
            .finish()
    }
}

impl From<DynScenario> for ScenarioPoint {
    fn from(scenario: DynScenario) -> Self {
        ScenarioPoint::new(scenario)
    }
}

/// One point on the protocol axis: a label plus the closure that runs a
/// **seeded** scenario (the executor seeds it first) on whichever engine
/// fits the protocol. The closure must be a pure function of the scenario
/// and knobs — any hidden state would break run determinism.
#[derive(Clone)]
pub struct ProtocolSpec {
    label: String,
    #[allow(clippy::type_complexity)]
    run: Arc<dyn Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync>,
}

impl ProtocolSpec {
    /// Creates a protocol axis entry.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        ProtocolSpec {
            label: label.into(),
            run: Arc::new(run),
        }
    }

    /// The entry's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the (already seeded) scenario.
    pub fn run(&self, scenario: &DynScenario, knobs: &BTreeMap<String, f64>) -> RunResult {
        (self.run)(scenario, knobs)
    }
}

impl fmt::Debug for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolSpec")
            .field("label", &self.label)
            .finish()
    }
}

/// A named scalar extracted from every run and folded into a per-cell
/// `Welford` accumulator (e.g. "the target packet's access count").
#[derive(Clone)]
pub struct MetricSpec {
    name: String,
    extract: Arc<dyn Fn(&RunResult) -> f64 + Send + Sync>,
}

impl MetricSpec {
    /// Creates a custom metric.
    pub fn new(
        name: impl Into<String>,
        extract: impl Fn(&RunResult) -> f64 + Send + Sync + 'static,
    ) -> Self {
        MetricSpec {
            name: name.into(),
            extract: Arc::new(extract),
        }
    }

    /// The metric's name (its key in [`crate::CellStats::metrics`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extracts the scalar from one run.
    pub fn extract(&self, result: &RunResult) -> f64 {
        (self.extract)(result)
    }
}

impl fmt::Debug for MetricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricSpec")
            .field("name", &self.name)
            .finish()
    }
}

/// A declarative sweep: the grid, the seeds, and the metrics to keep.
///
/// Build one with the fluent methods, then execute it with
/// [`run`](CampaignSpec::run) (sharded, all cores),
/// [`run_sharded`](CampaignSpec::run_sharded) (explicit shard count), or
/// [`run_serial`](CampaignSpec::run_serial) (the single-threaded reference
/// executor) — all three produce **identical** results by construction.
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) replicates: u32,
    pub(crate) scenarios: Vec<ScenarioPoint>,
    pub(crate) protocols: Vec<ProtocolSpec>,
    pub(crate) metrics: Vec<MetricSpec>,
}

impl CampaignSpec {
    /// Starts a campaign description: seed 0, one replicate, empty axes.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            seed: 0,
            replicates: 1,
            scenarios: Vec::new(),
            protocols: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// The campaign's name (used in the artifact and its file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the campaign seed every run seed derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of replicate runs per cell (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `replicates` is 0.
    pub fn replicates(mut self, replicates: u32) -> Self {
        assert!(replicates >= 1, "a cell needs at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Appends one scenario axis point.
    pub fn scenario(mut self, point: impl Into<ScenarioPoint>) -> Self {
        self.scenarios.push(point.into());
        self
    }

    /// Appends many scenario axis points.
    pub fn scenarios<P: Into<ScenarioPoint>>(
        mut self,
        points: impl IntoIterator<Item = P>,
    ) -> Self {
        self.scenarios.extend(points.into_iter().map(Into::into));
        self
    }

    /// Appends one protocol axis entry (label + runner closure).
    pub fn protocol(
        self,
        label: impl Into<String>,
        run: impl Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        self.protocol_spec(ProtocolSpec::new(label, run))
    }

    /// Appends a prebuilt protocol axis entry.
    pub fn protocol_spec(mut self, spec: ProtocolSpec) -> Self {
        self.protocols.push(spec);
        self
    }

    /// Declares a custom per-run scalar metric.
    pub fn metric(
        mut self,
        name: impl Into<String>,
        extract: impl Fn(&RunResult) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.metrics.push(MetricSpec::new(name, extract));
        self
    }

    /// Number of grid cells (scenario axis × protocol axis).
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.protocols.len()
    }

    /// Number of simulation runs the campaign will execute.
    pub fn unit_count(&self) -> usize {
        self.cell_count() * self.replicates as usize
    }

    /// The scenario-major cell index of `(scenario_idx, protocol_idx)`.
    pub fn cell_index(&self, scenario_idx: usize, protocol_idx: usize) -> usize {
        debug_assert!(scenario_idx < self.scenarios.len());
        debug_assert!(protocol_idx < self.protocols.len());
        scenario_idx * self.protocols.len() + protocol_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::scenario::scenarios;

    #[test]
    fn builder_accumulates_axes() {
        let spec = CampaignSpec::new("demo")
            .seed(7)
            .replicates(3)
            .scenario(scenarios::batch_drain(8).boxed())
            .scenario(ScenarioPoint::new(scenarios::batch_drain(16).boxed()).knob("n", 16.0))
            .protocol("noop", |sc, _| sc.run_sparse(|_| TestProto))
            .protocol("noop2", |sc, _| sc.run_sparse(|_| TestProto));
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.unit_count(), 12);
        assert_eq!(spec.cell_index(1, 1), 3);
        assert_eq!(spec.scenarios[1].knobs()["n"], 16.0);
        assert_eq!(spec.scenarios[0].label(), "batch-drain(n=8)");
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = CampaignSpec::new("bad").replicates(0);
    }

    #[derive(Clone)]
    struct TestProto;
    use lowsense_sim::dist::geometric;
    use lowsense_sim::feedback::{Intent, Observation};
    use lowsense_sim::protocol::{Protocol, SparseProtocol};
    use lowsense_sim::rng::SimRng;

    impl Protocol for TestProto {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(0.5) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            0.5
        }
        fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
            Some(geometric(rng, 0.5))
        }
    }
    impl SparseProtocol for TestProto {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            true
        }
    }
}
