//! The declarative sweep description: scenarios × protocols × replicates.
//!
//! A [`CampaignSpec`] is the full-factorial grid of a **scenario axis**
//! (type-erased [`DynScenario`]s, optionally annotated with numeric knobs
//! like `n` or the jam budget), a **protocol axis** (named closures
//! that run a seeded scenario on some engine), and an optional **channel
//! model axis** ([`ChannelModel`]s applied to the seeded scenario before
//! the protocol runs it), replicated `replicates` times with seeds derived
//! per `(cell, replicate)` by [`crate::seed::cell_seed`]. Cells are
//! indexed scenario-major with the model axis innermost:
//! `cell = (scenario_idx · protocols + protocol_idx) · models + model_idx`
//! — so a spec without an explicit model axis (`models` empty, every
//! scenario keeping its intrinsic channel) has exactly the pre-axis cell
//! indices and therefore the pre-axis run seeds.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lowsense_sim::feedback::ChannelModel;
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::DynScenario;

/// One point on the scenario axis: a reusable run description plus the
/// numeric knobs it was built from (so protocol runners and reports can
/// read e.g. the batch size back without parsing the label).
#[derive(Clone)]
pub struct ScenarioPoint {
    label: String,
    scenario: DynScenario,
    knobs: BTreeMap<String, f64>,
}

impl ScenarioPoint {
    /// Wraps a scenario, labelling the point with the scenario's name.
    pub fn new(scenario: DynScenario) -> Self {
        ScenarioPoint {
            label: scenario.name().to_string(),
            scenario,
            knobs: BTreeMap::new(),
        }
    }

    /// Overrides the point's label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Annotates the point with a named numeric knob (builder-style).
    pub fn knob(mut self, name: impl Into<String>, value: f64) -> Self {
        self.knobs.insert(name.into(), value);
        self
    }

    /// The point's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped scenario.
    pub fn scenario(&self) -> &DynScenario {
        &self.scenario
    }

    /// The point's knob annotations.
    pub fn knobs(&self) -> &BTreeMap<String, f64> {
        &self.knobs
    }
}

impl fmt::Debug for ScenarioPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioPoint")
            .field("label", &self.label)
            .field("knobs", &self.knobs)
            .finish()
    }
}

impl From<DynScenario> for ScenarioPoint {
    fn from(scenario: DynScenario) -> Self {
        ScenarioPoint::new(scenario)
    }
}

/// One point on the protocol axis: a label plus the closure that runs a
/// **seeded** scenario (the executor seeds it first) on whichever engine
/// fits the protocol. The closure must be a pure function of the scenario
/// and knobs — any hidden state would break run determinism.
#[derive(Clone)]
pub struct ProtocolSpec {
    label: String,
    #[allow(clippy::type_complexity)]
    run: Arc<dyn Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync>,
}

impl ProtocolSpec {
    /// Creates a protocol axis entry.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        ProtocolSpec {
            label: label.into(),
            run: Arc::new(run),
        }
    }

    /// The entry's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the (already seeded) scenario.
    pub fn run(&self, scenario: &DynScenario, knobs: &BTreeMap<String, f64>) -> RunResult {
        (self.run)(scenario, knobs)
    }
}

impl fmt::Debug for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolSpec")
            .field("label", &self.label)
            .finish()
    }
}

/// A named scalar extracted from every run and folded into a per-cell
/// `Welford` accumulator (e.g. "the target packet's access count").
#[derive(Clone)]
pub struct MetricSpec {
    name: String,
    extract: Arc<dyn Fn(&RunResult) -> f64 + Send + Sync>,
}

impl MetricSpec {
    /// Creates a custom metric.
    pub fn new(
        name: impl Into<String>,
        extract: impl Fn(&RunResult) -> f64 + Send + Sync + 'static,
    ) -> Self {
        MetricSpec {
            name: name.into(),
            extract: Arc::new(extract),
        }
    }

    /// The metric's name (its key in [`crate::CellStats::metrics`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extracts the scalar from one run.
    pub fn extract(&self, result: &RunResult) -> f64 {
        (self.extract)(result)
    }
}

impl fmt::Debug for MetricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricSpec")
            .field("name", &self.name)
            .finish()
    }
}

/// A declarative sweep: the grid, the seeds, and the metrics to keep.
///
/// Build one with the fluent methods, then execute it with
/// [`run`](CampaignSpec::run) (sharded, all cores),
/// [`run_sharded`](CampaignSpec::run_sharded) (explicit shard count), or
/// [`run_serial`](CampaignSpec::run_serial) (the single-threaded reference
/// executor) — all three produce **identical** results by construction.
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) replicates: u32,
    pub(crate) scenarios: Vec<ScenarioPoint>,
    pub(crate) protocols: Vec<ProtocolSpec>,
    /// Explicit channel-model axis; empty means "no axis" — every
    /// scenario runs under its own intrinsic [`ChannelModel`].
    pub(crate) models: Vec<ChannelModel>,
    pub(crate) metrics: Vec<MetricSpec>,
}

impl CampaignSpec {
    /// Starts a campaign description: seed 0, one replicate, empty axes.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            seed: 0,
            replicates: 1,
            scenarios: Vec::new(),
            protocols: Vec::new(),
            models: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// The campaign's name (used in the artifact and its file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the campaign seed every run seed derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of replicate runs per cell (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `replicates` is 0.
    pub fn replicates(mut self, replicates: u32) -> Self {
        assert!(replicates >= 1, "a cell needs at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Appends one scenario axis point.
    pub fn scenario(mut self, point: impl Into<ScenarioPoint>) -> Self {
        self.scenarios.push(point.into());
        self
    }

    /// Appends many scenario axis points.
    pub fn scenarios<P: Into<ScenarioPoint>>(
        mut self,
        points: impl IntoIterator<Item = P>,
    ) -> Self {
        self.scenarios.extend(points.into_iter().map(Into::into));
        self
    }

    /// Appends one protocol axis entry (label + runner closure).
    pub fn protocol(
        self,
        label: impl Into<String>,
        run: impl Fn(&DynScenario, &BTreeMap<String, f64>) -> RunResult + Send + Sync + 'static,
    ) -> Self {
        self.protocol_spec(ProtocolSpec::new(label, run))
    }

    /// Appends a prebuilt protocol axis entry.
    pub fn protocol_spec(mut self, spec: ProtocolSpec) -> Self {
        self.protocols.push(spec);
        self
    }

    /// Declares an explicit channel-model axis: every grid cell is crossed
    /// with each listed [`ChannelModel`], which **overrides** the
    /// scenario's intrinsic channel for that cell. Replaces any previously
    /// set axis. Without this call, scenarios keep their own channel and
    /// the grid has no model dimension.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty — pass nothing at all for "no axis".
    pub fn models(mut self, models: impl IntoIterator<Item = ChannelModel>) -> Self {
        self.models = models.into_iter().collect();
        assert!(
            !self.models.is_empty(),
            "an explicit model axis needs at least one model"
        );
        self
    }

    /// Declares a custom per-run scalar metric.
    pub fn metric(
        mut self,
        name: impl Into<String>,
        extract: impl Fn(&RunResult) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.metrics.push(MetricSpec::new(name, extract));
        self
    }

    /// Width of the model dimension: the explicit axis length, or 1 when
    /// no axis was declared (the implicit intrinsic-channel "column").
    pub fn model_count(&self) -> usize {
        self.models.len().max(1)
    }

    /// Number of grid cells (scenario axis × protocol axis × model axis).
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.protocols.len() * self.model_count()
    }

    /// Number of simulation runs the campaign will execute.
    pub fn unit_count(&self) -> usize {
        self.cell_count() * self.replicates as usize
    }

    /// The cell index of `(scenario_idx, protocol_idx)` under the first
    /// model column — without an explicit model axis, *the* cell index.
    pub fn cell_index(&self, scenario_idx: usize, protocol_idx: usize) -> usize {
        self.cell_index_model(scenario_idx, protocol_idx, 0)
    }

    /// The scenario-major, model-innermost cell index of
    /// `(scenario_idx, protocol_idx, model_idx)`.
    pub fn cell_index_model(
        &self,
        scenario_idx: usize,
        protocol_idx: usize,
        model_idx: usize,
    ) -> usize {
        debug_assert!(scenario_idx < self.scenarios.len());
        debug_assert!(protocol_idx < self.protocols.len());
        debug_assert!(model_idx < self.model_count());
        (scenario_idx * self.protocols.len() + protocol_idx) * self.model_count() + model_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::scenario::scenarios;

    #[test]
    fn builder_accumulates_axes() {
        let spec = CampaignSpec::new("demo")
            .seed(7)
            .replicates(3)
            .scenario(scenarios::batch_drain(8).boxed())
            .scenario(ScenarioPoint::new(scenarios::batch_drain(16).boxed()).knob("n", 16.0))
            .protocol("noop", |sc, _| sc.run_sparse(|_| TestProto))
            .protocol("noop2", |sc, _| sc.run_sparse(|_| TestProto));
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.unit_count(), 12);
        assert_eq!(spec.cell_index(1, 1), 3);
        assert_eq!(spec.scenarios[1].knobs()["n"], 16.0);
        assert_eq!(spec.scenarios[0].label(), "batch-drain(n=8)");
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = CampaignSpec::new("bad").replicates(0);
    }

    #[test]
    fn model_axis_multiplies_cells_and_stays_innermost() {
        let spec = CampaignSpec::new("grid")
            .scenario(scenarios::batch_drain(8).boxed())
            .scenario(scenarios::batch_drain(16).boxed())
            .protocol("noop", |sc, _| sc.run_sparse(|_| TestProto))
            .models([ChannelModel::Ternary, ChannelModel::NoCollisionDetection]);
        assert_eq!(spec.model_count(), 2);
        assert_eq!(spec.cell_count(), 4);
        // Model innermost: (s=1, p=0) spans cells 2..4.
        assert_eq!(spec.cell_index(1, 0), 2);
        assert_eq!(spec.cell_index_model(1, 0, 1), 3);
    }

    #[test]
    fn no_axis_means_one_implicit_model_column() {
        let spec = CampaignSpec::new("plain")
            .scenario(scenarios::batch_drain(8).boxed())
            .protocol("noop", |sc, _| sc.run_sparse(|_| TestProto));
        assert_eq!(spec.model_count(), 1);
        assert_eq!(spec.cell_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_explicit_model_axis_rejected() {
        let _ = CampaignSpec::new("bad").models([]);
    }

    #[derive(Clone)]
    struct TestProto;
    use lowsense_sim::dist::geometric;
    use lowsense_sim::feedback::{Intent, Observation};
    use lowsense_sim::protocol::{Protocol, SparseProtocol};
    use lowsense_sim::rng::SimRng;

    impl Protocol for TestProto {
        fn intent(&mut self, rng: &mut SimRng) -> Intent {
            if rng.bernoulli(0.5) {
                Intent::Send
            } else {
                Intent::Sleep
            }
        }
        fn observe(&mut self, _obs: &Observation) {}
        fn send_probability(&self) -> f64 {
            0.5
        }
        fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
            Some(geometric(rng, 0.5))
        }
    }
    impl SparseProtocol for TestProto {
        fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
            true
        }
    }
}
