//! Deterministic per-run seed derivation.
//!
//! Every run of a campaign is identified by `(cell_index, replicate)`; its
//! simulator seed is a pure function of that identity plus the campaign
//! seed, so a run's trajectory never depends on **which shard executes it,
//! in what order, or how many shards exist** — the foundation of the
//! any-thread-count determinism argument (`docs/ARCHITECTURE.md`).
//!
//! # The scheme
//!
//! Three chained applications of the SplitMix64 finalizer (the same mixer
//! [`lowsense_sim::rng::SimRng`] expands its seed with), feeding each
//! coordinate through an odd-multiplier bijection before xoring it in:
//!
//! ```text
//! s0 = mix(campaign_seed)
//! s1 = mix(s0 ^ (cell_index  + 1) · 0x9E3779B97F4A7C15)
//! s  = mix(s1 ^ (replicate   + 1) · 0xD1B54A32D192ED03)
//! ```
//!
//! For a fixed campaign seed and cell, the map is a bijection in the
//! replicate (and vice versa), so collisions inside one axis are
//! impossible; across the full `(cell, replicate)` grid the outputs are
//! spread by two independent 64-bit mixes, so grid collisions are
//! birthday-bounded (`≈ g²/2⁶⁵` for a grid of `g` runs — negligible for
//! any feasible campaign). A sampled-grid property test pins this.

/// The SplitMix64 finalizer: a bijective 64-bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the simulator seed for one run of a campaign (see the
/// [module docs](self) for the scheme and its collision argument).
#[inline]
pub fn cell_seed(campaign_seed: u64, cell_index: u64, replicate: u64) -> u64 {
    let s0 = mix(campaign_seed);
    let s1 = mix(s0
        ^ cell_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix(s1
        ^ replicate
            .wrapping_add(1)
            .wrapping_mul(0xD1B5_4A32_D192_ED03))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn depends_on_every_coordinate() {
        let base = cell_seed(7, 3, 2);
        assert_ne!(base, cell_seed(8, 3, 2));
        assert_ne!(base, cell_seed(7, 4, 2));
        assert_ne!(base, cell_seed(7, 3, 3));
    }

    #[test]
    fn is_a_pure_function() {
        assert_eq!(cell_seed(1, 2, 3), cell_seed(1, 2, 3));
    }

    #[test]
    fn axis_slices_are_collision_free() {
        // Along one axis the map is bijective; check a long slice each way.
        let mut seen = HashSet::new();
        for rep in 0..10_000u64 {
            assert!(seen.insert(cell_seed(42, 17, rep)), "replicate collision");
        }
        seen.clear();
        for cell in 0..10_000u64 {
            assert!(seen.insert(cell_seed(42, cell, 5)), "cell collision");
        }
    }
}
