//! Per-cell streaming statistics: fold runs locally, merge once.
//!
//! A [`CellStats`] is the mergeable aggregate of any number of simulation
//! runs of one campaign cell. Each shard folds the raw [`RunResult`] of a
//! run into a compact accumulator ([`CellStats::of_run`], one pass, no raw
//! per-packet data crosses threads); the driver then [`CellStats::merge`]s
//! the per-replicate accumulators **in canonical replicate order**, so the
//! final aggregate is bit-identical for any shard count (the integer
//! fields merge exactly; the `Welford` moments merge in a fixed order —
//! see `docs/ARCHITECTURE.md`, "Campaign layer").

use std::collections::BTreeMap;

use lowsense_sim::metrics::RunResult;
use lowsense_stats::{LogHistogram, QuantileSketch, Welford};

use crate::spec::MetricSpec;

/// Base of the per-packet access histogram buckets.
const HIST_BASE: f64 = 2.0;
/// Geometric levels: covers access counts up to 2⁴⁰ before the open tail.
const HIST_LEVELS: usize = 40;

/// Mergeable aggregate of one campaign cell's runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Runs folded in.
    pub runs: u64,
    /// Exact sums of the run totals (packets injected / delivered, slot
    /// classes, channel accesses).
    pub arrivals: u64,
    /// Packets delivered.
    pub successes: u64,
    /// Active slots.
    pub active_slots: u64,
    /// Jammed active slots.
    pub jammed_active: u64,
    /// Transmissions.
    pub sends: u64,
    /// Pure listens.
    pub listens: u64,
    /// Overhead slots charged by the channel model (zero except under
    /// costly-collision channels).
    pub overhead_slots: u64,
    /// Largest backlog observed in any run.
    pub max_backlog: u64,
    /// Per-run throughput `(T+J)/S` distribution across replicates.
    pub throughput: Welford,
    /// Per-delivered-packet channel accesses, pooled over all replicates
    /// (empty when the scenario records totals only).
    pub accesses: Welford,
    /// Quantile sketch of the same per-packet access counts.
    pub access_sketch: QuantileSketch,
    /// Log-spaced histogram of the same per-packet access counts.
    pub access_hist: LogHistogram,
    /// Custom per-run scalar metrics declared on the spec, by name.
    pub metrics: BTreeMap<String, Welford>,
}

impl CellStats {
    /// Folds one run into a fresh accumulator (single pass over the
    /// result; `extractors` supply the campaign's custom scalar metrics).
    pub fn of_run(result: &RunResult, extractors: &[MetricSpec]) -> Self {
        let t = &result.totals;
        let mut throughput = Welford::new();
        throughput.push(t.throughput());
        let mut accesses = Welford::new();
        let mut access_sketch = QuantileSketch::new();
        let mut access_hist = LogHistogram::new(HIST_BASE, HIST_LEVELS);
        for count in result.access_counts() {
            let x = count as f64;
            accesses.push(x);
            access_sketch.push(x);
            access_hist.push(x);
        }
        let mut metrics = BTreeMap::new();
        for spec in extractors {
            let mut w = Welford::new();
            w.push(spec.extract(result));
            metrics.insert(spec.name().to_string(), w);
        }
        CellStats {
            runs: 1,
            arrivals: t.arrivals,
            successes: t.successes,
            active_slots: t.active_slots,
            jammed_active: t.jammed_active,
            sends: t.sends,
            listens: t.listens,
            overhead_slots: t.overhead_slots,
            max_backlog: t.max_backlog,
            throughput,
            accesses,
            access_sketch,
            access_hist,
            metrics,
        }
    }

    /// Folds another accumulator into this one, as if its runs had been
    /// folded here. Integer fields combine exactly; the `Welford` moments
    /// combine in call order (hence the executors' canonical merge order).
    pub fn merge(&mut self, other: &CellStats) {
        self.runs += other.runs;
        self.arrivals += other.arrivals;
        self.successes += other.successes;
        self.active_slots += other.active_slots;
        self.jammed_active += other.jammed_active;
        self.sends += other.sends;
        self.listens += other.listens;
        self.overhead_slots += other.overhead_slots;
        self.max_backlog = self.max_backlog.max(other.max_backlog);
        self.throughput.merge(&other.throughput);
        self.accesses.merge(&other.accesses);
        self.access_sketch.merge(&other.access_sketch);
        self.access_hist.merge(&other.access_hist);
        for (name, w) in &other.metrics {
            self.metrics.entry(name.clone()).or_default().merge(w);
        }
    }

    /// Mean jammed active slots per run.
    pub fn jammed_mean(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.jammed_active as f64 / self.runs as f64
        }
    }

    /// Custom metric accumulator by name, if declared on the spec.
    pub fn metric(&self, name: &str) -> Option<&Welford> {
        self.metrics.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::feedback::SlotOutcome;
    use lowsense_sim::metrics::{Metrics, MetricsConfig, RunResult};

    fn tiny_run(seed: u64, n: u64) -> RunResult {
        // Hand-built result: n packets each delivered after `i + 1` sends.
        let mut m = Metrics::new(MetricsConfig::default());
        for i in 0..n {
            let id = m.note_inject(0);
            for _ in 0..=i {
                m.note_send(id);
            }
            m.note_slot(i, &SlotOutcome::Success { id });
            m.note_depart(id, i);
        }
        m.finish(seed)
    }

    #[test]
    fn of_run_pools_access_counts() {
        let s = CellStats::of_run(&tiny_run(1, 4), &[]);
        assert_eq!(s.runs, 1);
        assert_eq!(s.successes, 4);
        assert_eq!(s.accesses.count(), 4);
        assert!((s.accesses.mean() - 2.5).abs() < 1e-12, "1+2+3+4 / 4");
        assert_eq!(s.accesses.max(), 4.0);
        assert_eq!(s.access_sketch.count(), 4);
        assert_eq!(s.access_hist.total(), 4);
    }

    #[test]
    fn merge_equals_refolding() {
        let a = CellStats::of_run(&tiny_run(1, 3), &[]);
        let b = CellStats::of_run(&tiny_run(2, 5), &[]);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.successes, 8);
        assert_eq!(ab.accesses.count(), 8);
        assert_eq!(ab.throughput.count(), 2);
        // Integer fields are symmetric.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.successes, ba.successes);
        assert_eq!(ab.access_sketch, ba.access_sketch);
        assert_eq!(ab.access_hist, ba.access_hist);
    }

    #[test]
    fn custom_metrics_fold_by_name() {
        let spec = vec![MetricSpec::new("double_arrivals", |r: &RunResult| {
            2.0 * r.totals.arrivals as f64
        })];
        let mut s = CellStats::of_run(&tiny_run(1, 3), &spec);
        s.merge(&CellStats::of_run(&tiny_run(2, 5), &spec));
        let m = s.metric("double_arrivals").expect("declared metric");
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 8.0).abs() < 1e-12, "(6 + 10) / 2");
        assert!(s.metric("missing").is_none());
    }
}
