//! # lowsense-campaign — deterministic sharded parameter sweeps
//!
//! The paper's claims are statements about *distributions* over runs, so
//! reproducing them means sweeping grids — scenario knobs × protocols ×
//! seeds — at whatever scale the hardware allows. This crate is the
//! first-class sweep engine: a declarative [`CampaignSpec`] expands to
//! grid cells, every `(cell, replicate)` run gets a seed derived by the
//! documented SplitMix64 scheme ([`seed::cell_seed`]), cells execute on a
//! work-stealing shard pool ([`pool`]), and results fold through the
//! mergeable accumulators of `lowsense-stats` into a [`CampaignResult`]
//! whose JSON artifact is **byte-identical for any shard count**.
//!
//! ```
//! use lowsense_campaign::CampaignSpec;
//! use lowsense_sim::prelude::*;
//!
//! #[derive(Clone)]
//! struct Aloha(f64);
//! impl Protocol for Aloha {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(lowsense_sim::dist::geometric(rng, self.0))
//!     }
//! }
//! impl SparseProtocol for Aloha {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! // The three-line sweep: axes × replicates, then run.
//! let result = CampaignSpec::new("aloha-batch").seed(7).replicates(3)
//!     .scenarios((4..=6).map(|k| scenarios::batch_drain(1 << k).boxed()))
//!     .protocol("aloha", |sc, _| sc.run_sparse(|_| Aloha(0.05)))
//!     .run();
//!
//! assert_eq!(result.cells.len(), 3);
//! assert_eq!(result.cell(0, 0).stats.runs, 3);
//! // Sharding never changes the outcome — not even by a bit.
//! assert_eq!(result.to_json(), result.to_json());
//! assert_eq!(result, result.clone());
//! let serial = CampaignSpec::new("aloha-batch").seed(7).replicates(3)
//!     .scenarios((4..=6).map(|k| scenarios::batch_drain(1 << k).boxed()))
//!     .protocol("aloha", |sc, _| sc.run_sparse(|_| Aloha(0.05)))
//!     .run_serial();
//! assert_eq!(serial.to_json(), result.to_json());
//! ```
//!
//! ## Module map
//!
//! * [`spec`] — the builder: scenario axis, protocol axis, knobs, custom
//!   metrics, replicates, campaign seed.
//! * [`seed`] — the `(campaign_seed, cell_index, replicate)` → run-seed
//!   derivation and its collision argument.
//! * [`pool`] — the work-stealing shard pool (also the executor behind
//!   `lowsense-experiments`' `parallel_map`).
//! * [`cell`] — mergeable per-cell statistics (exact integer sums +
//!   `Welford`/sketch/histogram accumulators).
//! * [`exec`] — serial reference and sharded executors, plus the
//!   determinism argument tying them together.
//! * [`progress`] — live progress reporting (stderr line + JSONL event
//!   stream) over a bounded worker → reporter channel, guaranteed unable
//!   to perturb results.
//! * [`artifact`] — `CAMPAIGN_<name>.json` (schema `lowsense-campaign/2`)
//!   and the human table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cell;
pub mod exec;
pub mod pool;
pub mod progress;
pub mod seed;
pub mod spec;

pub use cell::CellStats;
pub use exec::{CampaignResult, CellReport};
pub use pool::{shard_map, shard_map_with};
pub use progress::{ProgressConfig, PROGRESS_SCHEMA};
pub use spec::{CampaignSpec, MetricSpec, ProtocolSpec, ScenarioPoint};
