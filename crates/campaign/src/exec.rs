//! Campaign execution: the serial reference executor and the sharded pool
//! executor, guaranteed to produce identical results.
//!
//! # The any-shard-count determinism argument
//!
//! 1. Every run's seed is a pure function of `(campaign_seed, cell_index,
//!    replicate)` ([`crate::seed::cell_seed`]) — never of the executing
//!    thread or claim order.
//! 2. A run folds into a [`CellStats`] on the shard that executed it
//!    ([`CellStats::of_run`]); only that compact, order-tagged accumulator
//!    crosses threads.
//! 3. The driver scatters the per-run accumulators back into unit order
//!    (the pool preserves input order) and merges each cell's replicates
//!    **left to right in replicate order** — the same merge tree the
//!    serial executor builds.
//!
//! Steps 1–3 make the result — and hence the JSON artifact bytes — a pure
//! function of the spec, for *any* shard count. `run_serial` exists as the
//! plain-loop oracle this equivalence is tested against (the same pattern
//! as the sparse engine's `run_sparse_reference`).

use crate::cell::CellStats;
use crate::pool;
use crate::progress::{ProgressConfig, ProgressMeta, Reporter, UnitDone};
use crate::seed::cell_seed;
use crate::spec::CampaignSpec;

use std::collections::BTreeMap;
use std::time::Instant;

/// One cell of a finished campaign: grid coordinates plus the merged
/// statistics of its replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario-major, model-innermost cell index.
    pub cell_index: usize,
    /// Scenario axis label.
    pub scenario: String,
    /// Protocol axis label.
    pub protocol: String,
    /// Channel-model label of the cell: the explicit axis entry, or the
    /// scenario's intrinsic channel when no axis was declared.
    pub model: String,
    /// Knob annotations of the scenario point.
    pub knobs: BTreeMap<String, f64>,
    /// Merged replicate statistics.
    pub stats: CellStats,
}

/// A finished campaign: every cell's merged statistics, in cell order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign name.
    pub name: String,
    /// Campaign seed all run seeds derived from.
    pub seed: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// Protocol axis labels (cells are scenario-major over these).
    pub protocols: Vec<String>,
    /// Scenario axis labels.
    pub scenarios: Vec<String>,
    /// Explicit channel-model axis labels; empty when the campaign had no
    /// model dimension (scenarios kept their intrinsic channels).
    pub models: Vec<String>,
    /// Cell reports, indexed scenario-major with the model axis innermost:
    /// `(scenario_idx · protocols + protocol_idx) · models + model_idx`.
    pub cells: Vec<CellReport>,
}

impl CampaignResult {
    /// Width of the model dimension (1 when no explicit axis).
    fn model_count(&self) -> usize {
        self.models.len().max(1)
    }

    /// The cell at `(scenario_idx, protocol_idx)` in the first model
    /// column — without an explicit model axis, *the* cell there.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, scenario_idx: usize, protocol_idx: usize) -> &CellReport {
        self.cell_model(scenario_idx, protocol_idx, 0)
    }

    /// The cell at `(scenario_idx, protocol_idx, model_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn cell_model(
        &self,
        scenario_idx: usize,
        protocol_idx: usize,
        model_idx: usize,
    ) -> &CellReport {
        assert!(protocol_idx < self.protocols.len(), "protocol index");
        assert!(model_idx < self.model_count(), "model index");
        let cell =
            (scenario_idx * self.protocols.len() + protocol_idx) * self.model_count() + model_idx;
        &self.cells[cell]
    }
}

/// Executes one `(cell, replicate)` unit: derive the seed, run, fold.
fn run_unit(spec: &CampaignSpec, unit: usize) -> CellStats {
    let replicates = spec.replicates as usize;
    let cell = unit / replicates;
    let replicate = unit % replicates;
    // Model axis innermost, then protocols, then scenarios — the same
    // decomposition `CampaignSpec::cell_index_model` composes.
    let model_idx = cell % spec.model_count();
    let rest = cell / spec.model_count();
    let protocol_idx = rest % spec.protocols.len();
    let scenario_idx = rest / spec.protocols.len();
    let seed = cell_seed(spec.seed, cell as u64, replicate as u64);
    let point = &spec.scenarios[scenario_idx];
    let mut seeded = point.scenario().seeded(seed);
    if let Some(model) = spec.models.get(model_idx) {
        seeded = seeded.model(*model);
    }
    let result = spec.protocols[protocol_idx].run(&seeded, point.knobs());
    CellStats::of_run(&result, &spec.metrics)
}

/// Merges per-unit accumulators into cell reports, always left to right in
/// replicate order — the canonical merge tree both executors share.
fn fold(spec: &CampaignSpec, unit_stats: Vec<CellStats>) -> CampaignResult {
    let replicates = spec.replicates as usize;
    debug_assert_eq!(unit_stats.len(), spec.unit_count());
    let mut units = unit_stats.into_iter();
    let mut cells = Vec::with_capacity(spec.cell_count());
    for (scenario_idx, point) in spec.scenarios.iter().enumerate() {
        for (protocol_idx, proto) in spec.protocols.iter().enumerate() {
            for model_idx in 0..spec.model_count() {
                let mut acc = units.next().expect("first replicate");
                for _ in 1..replicates {
                    acc.merge(&units.next().expect("replicate"));
                }
                let model = match spec.models.get(model_idx) {
                    Some(m) => m.label(),
                    None => point.scenario().channel_model().label(),
                };
                cells.push(CellReport {
                    cell_index: spec.cell_index_model(scenario_idx, protocol_idx, model_idx),
                    scenario: point.label().to_string(),
                    protocol: proto.label().to_string(),
                    model,
                    knobs: point.knobs().clone(),
                    stats: acc,
                });
            }
        }
    }
    CampaignResult {
        name: spec.name.clone(),
        seed: spec.seed,
        replicates: spec.replicates,
        protocols: spec
            .protocols
            .iter()
            .map(|p| p.label().to_string())
            .collect(),
        scenarios: spec
            .scenarios
            .iter()
            .map(|s| s.label().to_string())
            .collect(),
        models: spec.models.iter().map(|m| m.label()).collect(),
        cells,
    }
}

impl CampaignSpec {
    /// Runs the campaign on all available cores.
    pub fn run(&self) -> CampaignResult {
        self.run_sharded(pool::default_shards())
    }

    /// Runs the campaign on exactly `shards` worker threads. The result is
    /// identical for every `shards` value (see the [module docs](self)).
    pub fn run_sharded(&self, shards: usize) -> CampaignResult {
        let units: Vec<usize> = (0..self.unit_count()).collect();
        let stats = pool::shard_map_with(shards, units, |u| run_unit(self, u));
        fold(self, stats)
    }

    /// [`run_sharded`](CampaignSpec::run_sharded) with live progress
    /// reporting (see [`crate::progress`]).
    ///
    /// Each worker job is wrapped to send one content-free completion
    /// event (unit index + wall time) to a reporter thread after the
    /// unit's statistics are already final; the execution, fold, and
    /// artifact paths are otherwise *identical* to `run_sharded`, so the
    /// result — and its JSON bytes — are the same with reporting on or
    /// off. With a disabled config this *is* `run_sharded`.
    ///
    /// # Errors
    ///
    /// Fails only on opening the configured JSONL sink, before any
    /// simulation work starts.
    pub fn run_sharded_progress(
        &self,
        shards: usize,
        progress: &ProgressConfig,
    ) -> std::io::Result<CampaignResult> {
        if !progress.enabled() {
            return Ok(self.run_sharded(shards));
        }
        let unit_count = self.unit_count();
        let reporter = Reporter::spawn(
            ProgressMeta {
                campaign: self.name.clone(),
                cells: self.cell_count(),
                replicates: self.replicates as usize,
                shards: shards.clamp(1, unit_count.max(1)),
            },
            progress,
        )?;
        let tx = reporter.sender();
        let units: Vec<usize> = (0..unit_count).collect();
        let stats = pool::shard_map_with(shards, units, |u| {
            let t0 = Instant::now();
            let s = run_unit(self, u);
            // Send after the stats are final; a full channel only briefly
            // blocks this worker, and a hung-up reporter is ignored.
            let _ = tx.send(UnitDone {
                unit: u,
                wall_secs: t0.elapsed().as_secs_f64(),
            });
            s
        });
        drop(tx);
        let _registry = reporter.finish();
        Ok(fold(self, stats))
    }

    /// The single-threaded reference executor: a plain loop over units in
    /// order, folding as it goes — the oracle [`run_sharded`] is pinned
    /// against.
    ///
    /// [`run_sharded`]: CampaignSpec::run_sharded
    pub fn run_serial(&self) -> CampaignResult {
        let stats: Vec<CellStats> = (0..self.unit_count()).map(|u| run_unit(self, u)).collect();
        fold(self, stats)
    }
}
