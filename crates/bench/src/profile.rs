//! Phase-by-phase cycle profile of the sparse engine's hot loop.
//!
//! [`run_profiled`] is an **instrumented replica** of `run_sparse`'s loop
//! (same statements, same order, with a TSC read between phases), and
//! [`profile_sparse_smoke`] runs it over the standard smoke workload while
//! validating every rep against the real engine — the replica's `RunResult`
//! totals must equal `run_sparse`'s on the same scenario, so the numbers
//! cannot silently describe a stale copy of the loop.
//!
//! Phase timestamps cost ~8 cycles each (`rdtsc`) and are placed per slot
//! and per pass — the listener work is three whole-cohort passes (observe,
//! wake draws, schedule), so a dense slot pays three reads for all its
//! listeners, not three per 4-listener quad. Treat the shares as accurate
//! to a point or two.
//!
//! The replica is also where the capacity tier's memory budget is measured:
//! a [`CapacityProbe`] passed to [`run_profiled`] samples the wake wheel's
//! footprint, the packet table's bookkeeping lanes, and the staged
//! gather/scatter buffers (address plan + state scratch) every 1024 event
//! slots, yielding the peak engine-overhead bytes per live station that the
//! million-station tier budgets (protocol state is reported separately —
//! its size belongs to the protocol, not the engine).

use lowsense::{LowSensing, Params};
use lowsense_sim::arrivals::{ArrivalProcess, Batch};
use lowsense_sim::config::{Limits, SimConfig};
use lowsense_sim::engine::{staging_applies, Dense, EngineCore, PacketTable, StagePlan, WakeQueue};
use lowsense_sim::feedback::{Observation, SlotOutcome};
use lowsense_sim::hooks::{Hooks, NoHooks};
use lowsense_sim::jamming::{Jammer, NoJam};
use lowsense_sim::metrics::{MetricsConfig, RunResult};
use lowsense_sim::packet::PacketId;
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::scenarios;
use lowsense_sim::time::{offset, wake_slot, Slot};

/// Cycle (or nanosecond, off x86) timestamp for phase accounting.
#[inline(always)]
pub fn tsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` has no preconditions; it only reads the counter.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// One instrumented phase of the loop: a stable machine-readable slug (the
/// JSON key in `BENCH_engine.json`) and the human description.
pub struct Phase {
    /// Stable key used in JSON output and CI canaries.
    pub slug: &'static str,
    /// What the phase covers, for the human-readable table.
    pub label: &'static str,
}

/// The thirteen phases of the sparse hot loop, in loop order.
///
/// The `permute`, `gather`, and `scatter` phases cover the staged
/// gather/scatter path and accumulate zero cycles on slots below the
/// staging gate (small tiers run the direct path, where `split` reads the
/// state lane in insertion order). On staged slots, `split` covers only
/// the `send_on_access` draws against the contiguous scratch — the
/// address-sorted state-lane traffic it used to pay is what `permute` +
/// `gather` + `scatter` now account for explicitly.
pub const PHASES: [Phase; 13] = [
    Phase {
        slug: "control",
        label: "control (next event, gaps, advance)",
    },
    Phase {
        slug: "inject",
        label: "inject (arrivals, factory, first wake)",
    },
    Phase {
        slug: "take",
        label: "take (bucket drain)",
    },
    Phase {
        slug: "permute",
        label: "permute (radix id→address sort, staged slots)",
    },
    Phase {
        slug: "gather",
        label: "gather (resolve + state copy-in sweeps, staged slots)",
    },
    Phase {
        slug: "split",
        label: "split (send_on_access draws)",
    },
    Phase {
        slug: "resolve",
        label: "resolve (jam decision, slot outcome)",
    },
    Phase {
        slug: "observe",
        label: "observe (listener cohorts, contention)",
    },
    Phase {
        slug: "wake",
        label: "wake (listener delay draws)",
    },
    Phase {
        slug: "sched",
        label: "sched (calendar pushes)",
    },
    Phase {
        slug: "senders",
        label: "senders (observe, reschedule)",
    },
    Phase {
        slug: "scatter",
        label: "scatter (address-ordered state copy-back, staged slots)",
    },
    Phase {
        slug: "depart",
        label: "depart (retire, compaction, checkpoint)",
    },
];

/// Accumulated cycles per phase across every profiled rep.
#[derive(Default)]
pub struct Profile {
    /// Cycle totals, indexed like [`PHASES`].
    pub cycles: [u64; PHASES.len()],
}

impl Profile {
    #[inline(always)]
    fn add(&mut self, phase: usize, from: u64, to: u64) {
        self.cycles[phase] += to.wrapping_sub(from);
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of total cycles spent in phase `i`.
    pub fn share(&self, i: usize) -> f64 {
        self.cycles[i] as f64 / self.total().max(1) as f64
    }
}

/// A profiled run of the standard smoke workload: the per-phase cycle
/// totals plus the access count they amortize over.
pub struct SmokeProfile {
    /// Accumulated per-phase cycles over all reps.
    pub profile: Profile,
    /// Channel accesses (sends + listens) across all reps — the engines'
    /// unit of work, and the denominator of [`SmokeProfile::cyc_per_access`].
    pub accesses: u64,
    /// Number of measured reps.
    pub reps: u64,
}

impl SmokeProfile {
    /// Instrumented-loop cycles per channel access, all phases summed.
    pub fn cyc_per_access(&self) -> f64 {
        self.profile.total() as f64 / self.accesses.max(1) as f64
    }
}

/// Publishes a smoke profile into a telemetry sink under the same stable
/// names the rest of the workspace observes through: one
/// `bench.phase.<slug>.cycles` counter and `.share` gauge per [`PHASES`]
/// entry, plus the headline `bench.cyc_per_access`. With the
/// [`NoTelemetry`](lowsense_obs::NoTelemetry) default this compiles to
/// nothing — the same off-path contract as the engine hooks.
pub fn publish_phases<T: lowsense_obs::Telemetry>(smoke: &SmokeProfile, out: &mut T) {
    if !out.enabled() {
        return;
    }
    out.add("bench.reps", smoke.reps);
    out.add("bench.accesses", smoke.accesses);
    out.set("bench.cyc_per_access", smoke.cyc_per_access());
    for (i, phase) in PHASES.iter().enumerate() {
        out.add(
            &format!("bench.phase.{}.cycles", phase.slug),
            smoke.profile.cycles[i],
        );
        out.set(
            &format!("bench.phase.{}.share", phase.slug),
            smoke.profile.share(i),
        );
    }
}

/// Peak memory observed by [`run_profiled`]'s periodic sampling.
///
/// "Engine overhead" is the wake wheel's resident footprint plus the packet
/// table's bookkeeping lanes (ids + remap) — everything the engine spends
/// *per station* beyond the protocol state itself. The protocol-state lane
/// is tracked separately: its size is the protocol's contract
/// (`LowSensing` alone is 64 B), not the engine's.
#[derive(Default)]
pub struct CapacityProbe {
    /// Peak bytes across the wake wheel, the table's id/remap lanes, and
    /// the staging buffers (plan + state scratch).
    pub peak_engine_bytes: usize,
    /// Peak bytes in the protocol-state lane.
    pub peak_state_bytes: usize,
    /// Peak bytes in the staged gather/scatter machinery alone (the stage
    /// plan's permutation buffers plus the per-slot state scratch) — a
    /// sub-slice of [`peak_engine_bytes`](Self::peak_engine_bytes), broken
    /// out so the staging cost stays visible in `BENCH_engine.json`.
    pub peak_stage_bytes: usize,
    /// Largest live-station count seen at any sample point.
    pub peak_live: u64,
    /// Number of samples taken (one per 1024 event slots).
    pub samples: u64,
}

impl CapacityProbe {
    fn sample<P>(
        &mut self,
        queue: &WakeQueue,
        packets: &PacketTable<P>,
        stage: &StagePlan,
        scratch_bytes: usize,
        live: u64,
    ) {
        let staging = stage.footprint_bytes() + scratch_bytes;
        let engine = queue.footprint_bytes() + packets.lane_bytes() + staging;
        self.peak_engine_bytes = self.peak_engine_bytes.max(engine);
        self.peak_state_bytes = self.peak_state_bytes.max(packets.state_bytes());
        self.peak_stage_bytes = self.peak_stage_bytes.max(staging);
        self.peak_live = self.peak_live.max(live);
        self.samples += 1;
    }

    /// Peak engine-overhead bytes per peak live station — the figure the
    /// million-station tier's ≤ 64 B/station budget is checked against.
    pub fn bytes_per_station(&self) -> f64 {
        self.peak_engine_bytes as f64 / self.peak_live.max(1) as f64
    }
}

/// `run_sparse` for `LowSensing`/`NoJam`/`NoHooks` (the smoke workload),
/// statement-for-statement, with phase timestamps. Inert hooks only: the
/// clone-elision branch is the one the benchmark exercises.
///
/// When `probe` is given, engine memory is sampled once per 1024 event
/// slots (a cold path on 0.1% of slots; the phase shares are unaffected).
/// Local mirror of the engine's per-slot scratch hysteresis (the sim-crate
/// originals are crate-private): shrink back to `cap` only once capacity
/// exceeds twice `cap`, so steady-state slots never reallocate but a
/// pathological burst's allocation is released instead of being carried —
/// and counted by the capacity probe — for the rest of the run.
const SCRATCH_CAP: usize = 4096;

#[inline]
fn cap_scratch<T>(v: &mut Vec<T>, cap: usize) {
    if v.capacity() > 2 * cap {
        v.shrink_to(cap);
    }
}

pub fn run_profiled<A: ArrivalProcess, J: Jammer>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    profile: &mut Profile,
    mut probe: Option<&mut CapacityProbe>,
) -> RunResult {
    type P = LowSensing;
    let factory = |_: &mut SimRng| LowSensing::new(Params::default());
    let hooks = &mut NoHooks;

    let mut core = EngineCore::new(cfg, arrivals, jammer);
    let mut packets: PacketTable<P> = PacketTable::new();
    let mut queue = WakeQueue::new();
    let mut active_count: u64 = 0;
    let mut contention = 0.0f64;
    let mut participants: Vec<u32> = Vec::new();
    let mut senders: Vec<PacketId> = Vec::new();
    let mut listeners: Vec<PacketId> = Vec::new();
    let mut senders_at: Vec<Dense> = Vec::new();
    let mut listeners_at: Vec<Dense> = Vec::new();
    // Staged-path mirrors of the `_at` vectors: scratch positions instead
    // of dense handles, plus the address plan and the state scratch.
    let mut senders_pos: Vec<u32> = Vec::new();
    let mut listeners_pos: Vec<u32> = Vec::new();
    let mut wakes: Vec<Option<Slot>> = Vec::new();
    let mut stage = StagePlan::new();
    let mut scratch: Vec<P> = Vec::new();
    let mut event_slots: u64 = 0;
    let mut now: Slot = 0;

    let mut t0 = tsc();
    loop {
        if core.steps_exhausted() {
            break;
        }
        let next_access: Option<Slot> = queue.next_slot();
        let next_arrival: Option<Slot> = core
            .peek_arrival(now, active_count, contention)
            .map(|(s, _)| s);
        let te = match (next_access, next_arrival) {
            (None, None) => {
                if active_count > 0 {
                    let end = offset(core.limits().max_slot, 1);
                    if end > now {
                        core.account_gap(now, end, active_count, contention);
                    }
                }
                break;
            }
            (a, b) => a.unwrap_or(Slot::MAX).min(b.unwrap_or(Slot::MAX)),
        };
        if te > core.limits().max_slot {
            let end = offset(core.limits().max_slot, 1);
            if end > now {
                core.account_gap(now, end, active_count, contention);
            }
            break;
        }
        if te > now {
            core.account_gap(now, te, active_count, contention);
            core.checkpoint(te - 1, active_count, contention);
        }
        queue.advance_to(te);
        let t1 = tsc();
        profile.add(0, t0, t1);

        while let Some((ta, count)) = core.peek_arrival(te, active_count, contention) {
            if ta != te {
                break;
            }
            core.consume_arrival();
            for _ in 0..count {
                let id = core.note_inject(te);
                let mut p = factory(&mut core.rng);
                contention += p.send_probability();
                <NoHooks as Hooks<P>>::on_inject(hooks, te, id, &p);
                active_count += 1;
                let delay = p.next_wake(&mut core.rng);
                packets.insert(id, p);
                if let Some(slot) = wake_slot(te, delay) {
                    queue.schedule(slot, id.0);
                }
            }
        }
        let t2 = tsc();
        profile.add(1, t1, t2);

        // Capacity sampling sits right after injection — the instant the
        // queue and table are fullest on a batch workload.
        event_slots += 1;
        if event_slots % 1024 == 1 {
            if let Some(p) = probe.as_deref_mut() {
                p.sample(
                    &queue,
                    &packets,
                    &stage,
                    scratch.capacity() * std::mem::size_of::<P>(),
                    active_count,
                );
            }
        }

        participants.clear();
        queue.take(te, &mut participants);
        let t3 = tsc();
        profile.add(2, t2, t3);

        if participants.is_empty() {
            if active_count > 0 {
                let jam = core.adaptive_jam(te, active_count, contention);
                let outcome = core.resolve(te, jam, &[]);
                <NoHooks as Hooks<P>>::on_slot(hooks, te, &outcome);
                core.checkpoint(te, active_count, contention);
            }
            now = te + 1;
            core.step_done();
            t0 = tsc();
            profile.add(6, t3, t0);
            continue;
        }

        // Split, with the same staging gate as the engine: direct slots
        // resolve handles in insertion order; staged slots first build the
        // address plan (permute), stream the states into the scratch
        // (gather), and split against the scratch through the inverse
        // permutation.
        let staged = staging_applies(
            participants.len(),
            packets.dense_len() * std::mem::size_of::<P>(),
        );
        senders.clear();
        listeners.clear();
        senders_at.clear();
        listeners_at.clear();
        senders_pos.clear();
        listeners_pos.clear();
        let t4;
        if staged {
            stage.build_order(&participants);
            let tperm = tsc();
            profile.add(3, t3, tperm);
            stage.gather(&packets, &mut scratch);
            let tgath = tsc();
            profile.add(4, tperm, tgath);
            let pos_of = stage.pos_of();
            for (k, &id) in participants.iter().enumerate() {
                let pos = pos_of[k];
                if scratch[pos as usize].send_on_access(&mut core.rng) {
                    senders.push(PacketId(id));
                    senders_pos.push(pos);
                } else {
                    listeners.push(PacketId(id));
                    listeners_pos.push(pos);
                }
            }
            t4 = tsc();
            profile.add(5, tgath, t4);
        } else {
            for &id in &participants {
                let d = packets.resolve(PacketId(id));
                let p = packets.state_at_mut(d);
                if p.send_on_access(&mut core.rng) {
                    senders.push(PacketId(id));
                    senders_at.push(d);
                } else {
                    listeners.push(PacketId(id));
                    listeners_at.push(d);
                }
            }
            t4 = tsc();
            profile.add(5, t3, t4);
        }

        let jam = core.jam_decision(te, active_count, contention, &senders);
        let outcome = core.resolve(te, jam, &senders);
        <NoHooks as Hooks<P>>::on_slot(hooks, te, &outcome);
        let fb = outcome.feedback();
        let obs = Observation {
            slot: te,
            feedback: fb,
            sent: false,
            succeeded: false,
        };
        let tp = tsc();
        profile.add(6, t4, tp);

        let winner = match outcome {
            SlotOutcome::Success { id } => Some(id),
            _ => None,
        };
        // The listener and sender passes, per path. The staged arm indexes
        // the scratch by position; the direct arm is the pre-staging loop
        // verbatim. Phase indices are shared (observe 7, wake 8, sched 9,
        // senders 10); only the staged arm accrues scatter (11). The
        // listener work is three whole-cohort passes mirroring
        // `slot_passes` — one timestamp per pass, not per quad.
        let t6 = if staged {
            let mut quads = listeners.chunks_exact(4);
            let mut quads_pos = listeners_pos.chunks_exact(4);
            for (quad, quad_pos) in quads.by_ref().zip(quads_pos.by_ref()) {
                let mut lanes = scratch
                    .get_disjoint_mut([
                        quad_pos[0] as usize,
                        quad_pos[1] as usize,
                        quad_pos[2] as usize,
                        quad_pos[3] as usize,
                    ])
                    .expect("scratch positions are distinct");
                let before_sp = [
                    lanes[0].send_probability(),
                    lanes[1].send_probability(),
                    lanes[2].send_probability(),
                    lanes[3].send_probability(),
                ];
                P::observe4(&mut lanes, &obs);
                for (k, &id) in quad.iter().enumerate() {
                    core.metrics.note_listen(id);
                    contention += lanes[k].send_probability() - before_sp[k];
                }
            }
            for (&id, &pos) in quads.remainder().iter().zip(quads_pos.remainder()) {
                core.metrics.note_listen(id);
                let p = &mut scratch[pos as usize];
                let before_sp = p.send_probability();
                p.observe(&obs);
                contention += p.send_probability() - before_sp;
            }
            let tq = tsc();
            profile.add(7, tp, tq);

            wakes.clear();
            let mut quads_pos = listeners_pos.chunks_exact(4);
            for quad_pos in quads_pos.by_ref() {
                let mut lanes = scratch
                    .get_disjoint_mut([
                        quad_pos[0] as usize,
                        quad_pos[1] as usize,
                        quad_pos[2] as usize,
                        quad_pos[3] as usize,
                    ])
                    .expect("scratch positions are distinct");
                let delays = P::next_wake4(&mut lanes, &mut core.rng);
                wakes.extend(delays.iter().map(|&d| wake_slot(te + 1, d)));
            }
            for &pos in quads_pos.remainder() {
                let delay = scratch[pos as usize].next_wake(&mut core.rng);
                wakes.push(wake_slot(te + 1, delay));
            }
            let tr = tsc();
            profile.add(8, tq, tr);

            for (i, (&id, &wake)) in listeners.iter().zip(wakes.iter()).enumerate() {
                if let Some(&Some(ahead)) = wakes.get(i + 16) {
                    queue.prefetch_schedule(ahead);
                }
                if let Some(slot) = wake {
                    queue.schedule(slot, id.0);
                }
            }
            let t5 = tsc();
            profile.add(9, tr, t5);

            for (&id, &pos) in senders.iter().zip(&senders_pos) {
                core.metrics.note_send(id);
                let succeeded = winner == Some(id);
                let obs = Observation {
                    slot: te,
                    feedback: fb,
                    sent: true,
                    succeeded,
                };
                let p = &mut scratch[pos as usize];
                let before_sp = p.send_probability();
                p.observe(&obs);
                contention += p.send_probability() - before_sp;
                if !succeeded {
                    let delay = p.next_wake(&mut core.rng);
                    if let Some(slot) = wake_slot(te + 1, delay) {
                        queue.schedule(slot, id.0);
                    }
                }
            }
            let t6s = tsc();
            profile.add(10, t5, t6s);

            packets.scatter_from(stage.handles(), &scratch);
            let t6 = tsc();
            profile.add(11, t6s, t6);
            t6
        } else {
            let mut quads = listeners.chunks_exact(4);
            let mut quads_at = listeners_at.chunks_exact(4);
            for (quad, quad_at) in quads.by_ref().zip(quads_at.by_ref()) {
                let mut lanes = packets.lanes4_at([quad_at[0], quad_at[1], quad_at[2], quad_at[3]]);
                let before_sp = [
                    lanes[0].send_probability(),
                    lanes[1].send_probability(),
                    lanes[2].send_probability(),
                    lanes[3].send_probability(),
                ];
                P::observe4(&mut lanes, &obs);
                for (k, &id) in quad.iter().enumerate() {
                    core.metrics.note_listen(id);
                    contention += lanes[k].send_probability() - before_sp[k];
                }
            }
            for (&id, &d) in quads.remainder().iter().zip(quads_at.remainder()) {
                core.metrics.note_listen(id);
                let p = packets.state_at_mut(d);
                let before_sp = p.send_probability();
                p.observe(&obs);
                contention += p.send_probability() - before_sp;
            }
            let tq = tsc();
            profile.add(7, tp, tq);

            wakes.clear();
            let mut quads_at = listeners_at.chunks_exact(4);
            for quad_at in quads_at.by_ref() {
                let mut lanes = packets.lanes4_at([quad_at[0], quad_at[1], quad_at[2], quad_at[3]]);
                let delays = P::next_wake4(&mut lanes, &mut core.rng);
                wakes.extend(delays.iter().map(|&d| wake_slot(te + 1, d)));
            }
            for &d in quads_at.remainder() {
                let delay = packets.state_at_mut(d).next_wake(&mut core.rng);
                wakes.push(wake_slot(te + 1, delay));
            }
            let tr = tsc();
            profile.add(8, tq, tr);

            for (i, (&id, &wake)) in listeners.iter().zip(wakes.iter()).enumerate() {
                if let Some(&Some(ahead)) = wakes.get(i + 16) {
                    queue.prefetch_schedule(ahead);
                }
                if let Some(slot) = wake {
                    queue.schedule(slot, id.0);
                }
            }
            let t5 = tsc();
            profile.add(9, tr, t5);

            for (&id, &d) in senders.iter().zip(&senders_at) {
                core.metrics.note_send(id);
                let succeeded = winner == Some(id);
                let obs = Observation {
                    slot: te,
                    feedback: fb,
                    sent: true,
                    succeeded,
                };
                let p = packets.state_at_mut(d);
                let before_sp = p.send_probability();
                p.observe(&obs);
                contention += p.send_probability() - before_sp;
                if !succeeded {
                    let delay = p.next_wake(&mut core.rng);
                    if let Some(slot) = wake_slot(te + 1, delay) {
                        queue.schedule(slot, id.0);
                    }
                }
            }
            let t6 = tsc();
            profile.add(10, t5, t6);
            t6
        };

        if let Some(id) = winner {
            let p = packets.state(id);
            contention -= p.send_probability();
            <NoHooks as Hooks<P>>::on_depart(hooks, te, id, p);
            packets.retire(id);
            core.metrics.note_depart(id, te);
            active_count -= 1;
            packets.maybe_compact();
        }
        // Mirror of the engine's end-of-slot scratch hysteresis, so the
        // capacity probe sees the same steady-state allocations the real
        // loop carries (a burst's staging buffers are released, not held
        // at their high-water mark for the rest of the run).
        cap_scratch(&mut participants, SCRATCH_CAP);
        cap_scratch(&mut senders, SCRATCH_CAP);
        cap_scratch(&mut listeners, SCRATCH_CAP);
        cap_scratch(&mut senders_at, SCRATCH_CAP);
        cap_scratch(&mut listeners_at, SCRATCH_CAP);
        cap_scratch(&mut senders_pos, SCRATCH_CAP);
        cap_scratch(&mut listeners_pos, SCRATCH_CAP);
        cap_scratch(&mut wakes, SCRATCH_CAP);
        cap_scratch(&mut scratch, SCRATCH_CAP);
        stage.cap();
        core.checkpoint(te, active_count, contention);
        now = te + 1;
        core.step_done();
        t0 = tsc();
        profile.add(12, t6, t0);
    }

    core.finish()
}

/// Profiles the standard smoke workload (`sparse_lsb_16384` shape with
/// `packets` packets): one discarded warm-up, then `reps` measured seeds,
/// each validated against the real `run_sparse` totals.
///
/// # Panics
///
/// Panics if the instrumented replica's totals ever diverge from the real
/// engine's — the guarantee that the profile describes the current loop.
pub fn profile_sparse_smoke(packets: u64, reps: u64) -> SmokeProfile {
    let mut profile = Profile::default();
    let mut accesses = 0u64;
    // Warm-up, discarded.
    let _ = run_profiled(
        &SimConfig::new(0).metrics(MetricsConfig::totals_only()),
        Batch::new(packets),
        NoJam,
        &mut Profile::default(),
        None,
    );
    for seed in 1..=reps {
        let cfg = SimConfig::new(seed).metrics(MetricsConfig::totals_only());
        let r = run_profiled(&cfg, Batch::new(packets), NoJam, &mut profile, None);
        accesses += r.totals.accesses();

        // Keep the replica honest: it must reproduce the real engine.
        let real = scenarios::batch_drain(packets)
            .totals_only()
            .seeded(seed)
            .run_sparse(|_| LowSensing::new(Params::default()));
        assert_eq!(
            r.totals, real.totals,
            "instrumented replica diverged from run_sparse (seed {seed})"
        );
    }
    SmokeProfile {
        profile,
        accesses,
        reps,
    }
}

/// Profiles the million-station capacity workload: `stations` stations
/// batch-injected at slot 0, horizon capped at `until_slot`, `reps`
/// measured seeds (no warm-up — at this scale one rep amortizes its own
/// cache warming). Returns the phase profile plus the [`CapacityProbe`]
/// peaks sampled across all reps.
///
/// # Panics
///
/// Panics if the instrumented replica's totals ever diverge from the real
/// `run_sparse` on the same capped scenario.
pub fn profile_sparse_capacity(
    stations: u64,
    until_slot: Slot,
    reps: u64,
) -> (SmokeProfile, CapacityProbe) {
    let mut profile = Profile::default();
    let mut probe = CapacityProbe::default();
    let mut accesses = 0u64;
    for seed in 1..=reps {
        let cfg = SimConfig::new(seed)
            .metrics(MetricsConfig::totals_only())
            .limits(Limits::until_slot(until_slot));
        let r = run_profiled(
            &cfg,
            Batch::new(stations),
            NoJam,
            &mut profile,
            Some(&mut probe),
        );
        accesses += r.totals.accesses();

        // Keep the replica honest at capacity scale too.
        let real = scenarios::batch_drain(stations)
            .totals_only()
            .until_slot(until_slot)
            .seeded(seed)
            .run_sparse(|_| LowSensing::new(Params::default()));
        assert_eq!(
            r.totals, real.totals,
            "instrumented replica diverged from run_sparse (capacity seed {seed})"
        );
    }
    (
        SmokeProfile {
            profile,
            accesses,
            reps,
        },
        probe,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_obs::{NoTelemetry, Registry};

    #[test]
    fn publish_phases_uses_stable_slug_names() {
        let mut profile = Profile::default();
        profile.cycles[0] = 75; // control
        profile.cycles[6] = 25; // resolve
        let smoke = SmokeProfile {
            profile,
            accesses: 10,
            reps: 1,
        };
        let mut reg = Registry::new();
        publish_phases(&smoke, &mut reg);
        assert_eq!(reg.counter("bench.phase.control.cycles"), 75);
        assert_eq!(reg.counter("bench.phase.resolve.cycles"), 25);
        assert_eq!(reg.counter("bench.phase.gather.cycles"), 0);
        assert_eq!(reg.gauge("bench.cyc_per_access"), Some(10.0));
        let share = reg.gauge("bench.phase.control.share").unwrap();
        assert!((share - 0.75).abs() < 1e-12);
        // Every slug appears exactly once among the counters.
        let phase_counters = reg
            .counters()
            .filter(|(k, _)| k.starts_with("bench.phase."))
            .count();
        assert_eq!(phase_counters, PHASES.len());
        // The disabled sink takes the zero-cost early return.
        publish_phases(&smoke, &mut NoTelemetry);
    }
}
