//! Phase-by-phase cycle profile of the sparse engine's hot loop.
//!
//! [`run_profiled`] is an **instrumented replica** of `run_sparse`'s loop
//! (same statements, same order, with a TSC read between phases), and
//! [`profile_sparse_smoke`] runs it over the standard smoke workload while
//! validating every rep against the real engine — the replica's `RunResult`
//! totals must equal `run_sparse`'s on the same scenario, so the numbers
//! cannot silently describe a stale copy of the loop.
//!
//! Phase timestamps cost ~8 cycles each (`rdtsc`) and are placed per slot
//! or per 4-listener cohort, a few percent of the loop; treat the shares as
//! accurate to a point or two.

use lowsense::{LowSensing, Params};
use lowsense_sim::arrivals::{ArrivalProcess, Batch};
use lowsense_sim::config::SimConfig;
use lowsense_sim::engine::{EngineCore, PacketTable, WakeQueue};
use lowsense_sim::feedback::{Observation, SlotOutcome};
use lowsense_sim::hooks::{Hooks, NoHooks};
use lowsense_sim::jamming::{Jammer, NoJam};
use lowsense_sim::metrics::{MetricsConfig, RunResult};
use lowsense_sim::packet::PacketId;
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::scenarios;
use lowsense_sim::time::{offset, wake_slot, Slot};

/// Cycle (or nanosecond, off x86) timestamp for phase accounting.
#[inline(always)]
pub fn tsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` has no preconditions; it only reads the counter.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// One instrumented phase of the loop: a stable machine-readable slug (the
/// JSON key in `BENCH_engine.json`) and the human description.
pub struct Phase {
    /// Stable key used in JSON output and CI canaries.
    pub slug: &'static str,
    /// What the phase covers, for the human-readable table.
    pub label: &'static str,
}

/// The ten phases of the sparse hot loop, in loop order.
pub const PHASES: [Phase; 10] = [
    Phase {
        slug: "control",
        label: "control (next event, gaps, advance)",
    },
    Phase {
        slug: "inject",
        label: "inject (arrivals, factory, first wake)",
    },
    Phase {
        slug: "take",
        label: "take (bucket drain)",
    },
    Phase {
        slug: "split",
        label: "split (send_on_access draws)",
    },
    Phase {
        slug: "resolve",
        label: "resolve (jam decision, slot outcome)",
    },
    Phase {
        slug: "observe",
        label: "observe (listener cohorts, contention)",
    },
    Phase {
        slug: "wake",
        label: "wake (listener delay draws)",
    },
    Phase {
        slug: "sched",
        label: "sched (calendar pushes)",
    },
    Phase {
        slug: "senders",
        label: "senders (observe, reschedule)",
    },
    Phase {
        slug: "depart",
        label: "depart (retire, compaction, checkpoint)",
    },
];

/// Accumulated cycles per phase across every profiled rep.
#[derive(Default)]
pub struct Profile {
    /// Cycle totals, indexed like [`PHASES`].
    pub cycles: [u64; PHASES.len()],
}

impl Profile {
    #[inline(always)]
    fn add(&mut self, phase: usize, from: u64, to: u64) {
        self.cycles[phase] += to.wrapping_sub(from);
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of total cycles spent in phase `i`.
    pub fn share(&self, i: usize) -> f64 {
        self.cycles[i] as f64 / self.total().max(1) as f64
    }
}

/// A profiled run of the standard smoke workload: the per-phase cycle
/// totals plus the access count they amortize over.
pub struct SmokeProfile {
    /// Accumulated per-phase cycles over all reps.
    pub profile: Profile,
    /// Channel accesses (sends + listens) across all reps — the engines'
    /// unit of work, and the denominator of [`SmokeProfile::cyc_per_access`].
    pub accesses: u64,
    /// Number of measured reps.
    pub reps: u64,
}

impl SmokeProfile {
    /// Instrumented-loop cycles per channel access, all phases summed.
    pub fn cyc_per_access(&self) -> f64 {
        self.profile.total() as f64 / self.accesses.max(1) as f64
    }
}

/// `run_sparse` for `LowSensing`/`NoJam`/`NoHooks` (the smoke workload),
/// statement-for-statement, with phase timestamps. Inert hooks only: the
/// clone-elision branch is the one the benchmark exercises.
pub fn run_profiled<A: ArrivalProcess, J: Jammer>(
    cfg: &SimConfig,
    arrivals: A,
    jammer: J,
    profile: &mut Profile,
) -> RunResult {
    type P = LowSensing;
    let factory = |_: &mut SimRng| LowSensing::new(Params::default());
    let hooks = &mut NoHooks;

    let mut core = EngineCore::new(cfg, arrivals, jammer);
    let mut packets: PacketTable<P> = PacketTable::new();
    let mut queue = WakeQueue::new();
    let mut active_count: u64 = 0;
    let mut contention = 0.0f64;
    let mut participants: Vec<u32> = Vec::new();
    let mut senders: Vec<PacketId> = Vec::new();
    let mut listeners: Vec<PacketId> = Vec::new();
    let mut now: Slot = 0;

    let mut t0 = tsc();
    loop {
        if core.steps_exhausted() {
            break;
        }
        let next_access: Option<Slot> = queue.next_slot();
        let next_arrival: Option<Slot> = core
            .peek_arrival(now, active_count, contention)
            .map(|(s, _)| s);
        let te = match (next_access, next_arrival) {
            (None, None) => {
                if active_count > 0 {
                    let end = offset(core.limits().max_slot, 1);
                    if end > now {
                        core.account_gap(now, end, active_count, contention);
                    }
                }
                break;
            }
            (a, b) => a.unwrap_or(Slot::MAX).min(b.unwrap_or(Slot::MAX)),
        };
        if te > core.limits().max_slot {
            let end = offset(core.limits().max_slot, 1);
            if end > now {
                core.account_gap(now, end, active_count, contention);
            }
            break;
        }
        if te > now {
            core.account_gap(now, te, active_count, contention);
            core.checkpoint(te - 1, active_count, contention);
        }
        queue.advance_to(te);
        let t1 = tsc();
        profile.add(0, t0, t1);

        while let Some((ta, count)) = core.peek_arrival(te, active_count, contention) {
            if ta != te {
                break;
            }
            core.consume_arrival();
            for _ in 0..count {
                let id = core.note_inject(te);
                let mut p = factory(&mut core.rng);
                contention += p.send_probability();
                <NoHooks as Hooks<P>>::on_inject(hooks, te, id, &p);
                active_count += 1;
                let delay = p.next_wake(&mut core.rng);
                packets.insert(id, p);
                if let Some(slot) = wake_slot(te, delay) {
                    queue.schedule(slot, id.0);
                }
            }
        }
        let t2 = tsc();
        profile.add(1, t1, t2);

        participants.clear();
        queue.take(te, &mut participants);
        let t3 = tsc();
        profile.add(2, t2, t3);

        if participants.is_empty() {
            if active_count > 0 {
                let jam = core.adaptive_jam(te, active_count, contention);
                let outcome = core.resolve(te, jam, &[]);
                <NoHooks as Hooks<P>>::on_slot(hooks, te, &outcome);
                core.checkpoint(te, active_count, contention);
            }
            now = te + 1;
            core.step_done();
            t0 = tsc();
            profile.add(4, t3, t0);
            continue;
        }

        senders.clear();
        listeners.clear();
        for &id in &participants {
            let p = packets.state_mut(PacketId(id));
            if p.send_on_access(&mut core.rng) {
                senders.push(PacketId(id));
            } else {
                listeners.push(PacketId(id));
            }
        }
        let t4 = tsc();
        profile.add(3, t3, t4);

        let jam = core.jam_decision(te, active_count, contention, &senders);
        let outcome = core.resolve(te, jam, &senders);
        <NoHooks as Hooks<P>>::on_slot(hooks, te, &outcome);
        let fb = outcome.feedback();
        let obs = Observation {
            slot: te,
            feedback: fb,
            sent: false,
            succeeded: false,
        };
        let mut tp = tsc();
        profile.add(4, t4, tp);

        let mut quads = listeners.chunks_exact(4);
        for quad in quads.by_ref() {
            let mut lanes = packets.lanes4([quad[0], quad[1], quad[2], quad[3]]);
            let before_sp = [
                lanes[0].send_probability(),
                lanes[1].send_probability(),
                lanes[2].send_probability(),
                lanes[3].send_probability(),
            ];
            P::observe4(&mut lanes, &obs);
            for (k, &id) in quad.iter().enumerate() {
                core.metrics.note_listen(id);
                contention += lanes[k].send_probability() - before_sp[k];
            }
            let tq = tsc();
            profile.add(5, tp, tq);
            let delays = P::next_wake4(&mut lanes, &mut core.rng);
            let tr = tsc();
            profile.add(6, tq, tr);
            for (k, &id) in quad.iter().enumerate() {
                if let Some(slot) = wake_slot(te + 1, delays[k]) {
                    queue.schedule(slot, id.0);
                }
            }
            tp = tsc();
            profile.add(7, tr, tp);
        }
        for &id in quads.remainder() {
            core.metrics.note_listen(id);
            let p = packets.state_mut(id);
            let before_sp = p.send_probability();
            p.observe(&obs);
            contention += p.send_probability() - before_sp;
            let tq = tsc();
            profile.add(5, tp, tq);
            let delay = p.next_wake(&mut core.rng);
            let tr = tsc();
            profile.add(6, tq, tr);
            if let Some(slot) = wake_slot(te + 1, delay) {
                queue.schedule(slot, id.0);
            }
            tp = tsc();
            profile.add(7, tr, tp);
        }
        let t5 = tp;

        let winner = match outcome {
            SlotOutcome::Success { id } => Some(id),
            _ => None,
        };
        for &id in &senders {
            core.metrics.note_send(id);
            let succeeded = winner == Some(id);
            let obs = Observation {
                slot: te,
                feedback: fb,
                sent: true,
                succeeded,
            };
            let p = packets.state_mut(id);
            let before_sp = p.send_probability();
            p.observe(&obs);
            contention += p.send_probability() - before_sp;
            if !succeeded {
                let delay = p.next_wake(&mut core.rng);
                if let Some(slot) = wake_slot(te + 1, delay) {
                    queue.schedule(slot, id.0);
                }
            }
        }
        let t6 = tsc();
        profile.add(8, t5, t6);

        if let Some(id) = winner {
            let p = packets.state(id);
            contention -= p.send_probability();
            <NoHooks as Hooks<P>>::on_depart(hooks, te, id, p);
            packets.retire(id);
            core.metrics.note_depart(id, te);
            active_count -= 1;
            packets.maybe_compact();
        }
        core.checkpoint(te, active_count, contention);
        now = te + 1;
        core.step_done();
        t0 = tsc();
        profile.add(9, t6, t0);
    }

    core.finish()
}

/// Profiles the standard smoke workload (`sparse_lsb_16384` shape with
/// `packets` packets): one discarded warm-up, then `reps` measured seeds,
/// each validated against the real `run_sparse` totals.
///
/// # Panics
///
/// Panics if the instrumented replica's totals ever diverge from the real
/// engine's — the guarantee that the profile describes the current loop.
pub fn profile_sparse_smoke(packets: u64, reps: u64) -> SmokeProfile {
    let mut profile = Profile::default();
    let mut accesses = 0u64;
    // Warm-up, discarded.
    let _ = run_profiled(
        &SimConfig::new(0).metrics(MetricsConfig::totals_only()),
        Batch::new(packets),
        NoJam,
        &mut Profile::default(),
    );
    for seed in 1..=reps {
        let cfg = SimConfig::new(seed).metrics(MetricsConfig::totals_only());
        let r = run_profiled(&cfg, Batch::new(packets), NoJam, &mut profile);
        accesses += r.totals.accesses();

        // Keep the replica honest: it must reproduce the real engine.
        let real = scenarios::batch_drain(packets)
            .totals_only()
            .seeded(seed)
            .run_sparse(|_| LowSensing::new(Params::default()));
        assert_eq!(
            r.totals, real.totals,
            "instrumented replica diverged from run_sparse (seed {seed})"
        );
    }
    SmokeProfile {
        profile,
        accesses,
        reps,
    }
}
