//! Shared measurement machinery for the bench targets.
//!
//! The phase profiler here is consumed by two benches: `phases` (the
//! human-readable breakdown, with a `--json` mode) and `smoke` (which
//! records `cyc_per_access` and per-phase shares into `BENCH_engine.json`
//! so CI can gate on them). Keeping one copy of the instrumented loop means
//! the two can never disagree about what was measured.

pub mod profile;
