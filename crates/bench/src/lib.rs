//! Bench crate: see benches/.
