//! Benches for ablations A1–A4 and extensions X1–X2: prints each table
//! (quick scale) once, then times the experiment kernel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lowsense_experiments::{registry, Scale};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for e in registry() {
        if !e.id.starts_with('A') && !e.id.starts_with('X') {
            continue;
        }
        for t in (e.run)(Scale::Quick) {
            println!("{}", t.render());
        }
        group.bench_function(e.id, |b| b.iter(|| (e.run)(Scale::Quick)));
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
