//! Phase-by-phase cycle profile of the sparse engine's hot loop.
//!
//! ```text
//! cargo bench -p lowsense-bench --bench phases            # human table
//! cargo bench -p lowsense-bench --bench phases -- --json  # machine readable
//! ```
//!
//! Runs the `sparse_lsb_16384` smoke workload through the instrumented
//! replica in `lowsense_bench::profile` (validated against the real engine
//! every rep) and prints the share of cycles each phase consumes. This is
//! the measurement tool behind the locality work on the sparse engine (see
//! ROADMAP): when a perf target is missed, the recorded breakdown comes
//! from here. The `smoke` bench embeds the same numbers in
//! `BENCH_engine.json`; `--json` prints the breakdown alone, in the same
//! shape as that file's `phases` entry.

use lowsense_bench::profile::{profile_sparse_smoke, PHASES};

const PACKETS: u64 = 16_384;
const REPS: u64 = 5;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = profile_sparse_smoke(PACKETS, REPS);
    let total = smoke.profile.total();

    if json {
        println!("{{");
        println!("  \"schema\": \"lowsense-bench-phases/1\",");
        println!("  \"workload\": \"sparse_lsb_16384\",");
        println!("  \"reps\": {},", smoke.reps);
        println!("  \"accesses\": {},", smoke.accesses);
        println!("  \"total_cycles\": {total},");
        println!("  \"cyc_per_access\": {:.2},", smoke.cyc_per_access());
        println!("  \"shares\": {{");
        for (i, phase) in PHASES.iter().enumerate() {
            let sep = if i + 1 == PHASES.len() { "" } else { "," };
            println!("    \"{}\": {:.4}{sep}", phase.slug, smoke.profile.share(i));
        }
        println!("  }}");
        println!("}}");
        return;
    }

    println!(
        "phases: sparse_lsb_16384, {} reps, {} accesses",
        smoke.reps, smoke.accesses
    );
    println!(
        "phases: {} total cycles, {:.1} per access",
        total,
        smoke.cyc_per_access()
    );
    for (i, phase) in PHASES.iter().enumerate() {
        println!(
            "phases: {:>5.1}%  {:>7.1} cyc/access  {}",
            100.0 * smoke.profile.share(i),
            smoke.profile.cycles[i] as f64 / smoke.accesses.max(1) as f64,
            phase.label,
        );
    }
}
