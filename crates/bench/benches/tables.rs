//! Benches for tables T1–T9: prints each reproduced table (quick scale)
//! once, then times the experiment kernel so regressions in the engines or
//! the algorithm show up as bench deltas.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lowsense_experiments::{registry, Scale};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for e in registry() {
        if !e.id.starts_with('T') {
            continue;
        }
        // Regenerate and print the table once (this is the reproduction
        // artifact; `cargo bench | tee bench_output.txt` captures it).
        for t in (e.run)(Scale::Quick) {
            println!("{}", t.render());
        }
        group.bench_function(e.id, |b| b.iter(|| (e.run)(Scale::Quick)));
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
