//! Engine and sampler micro-benchmarks.
//!
//! The headline: the sparse engine resolves a `LOW-SENSING BACKOFF` batch
//! in time proportional to *channel accesses* (polylog per packet), not
//! slots — which is what makes million-packet Monte Carlo feasible.
//!
//! Workloads come from the scenario registry so benches measure exactly the
//! run descriptions the tests validate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lowsense::PotentialTracker;
use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_sim::dist::{geometric, Binomial};
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::scenarios;

use lowsense::lsb;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("sparse_lsb_batch_4096", |b| {
        let scenario = scenarios::batch_drain(4096).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            scenario.seeded(seed).run_sparse(lsb())
        })
    });

    group.bench_function("sparse_lsb_batch_65536", |b| {
        let scenario = scenarios::batch_drain(65_536).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            scenario.seeded(seed).run_sparse(lsb())
        })
    });

    group.bench_function("sparse_lsb_batch_4096_jammed", |b| {
        let scenario = scenarios::random_jam_batch(4096, 0.2).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            scenario.seeded(seed).run_sparse(lsb())
        })
    });

    group.bench_function("dense_lsb_batch_512", |b| {
        let scenario = scenarios::batch_drain(512).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            scenario.seeded(seed).run_dense(lsb())
        })
    });

    group.bench_function("grouped_cjp_batch_4096", |b| {
        let scenario = scenarios::batch_drain(4096).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            scenario
                .seeded(seed)
                .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        })
    });

    group.bench_function("sparse_lsb_with_potential_tracker_2048", |b| {
        let scenario = scenarios::batch_drain(2048).totals_only();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut tracker = PotentialTracker::default();
            scenario.seeded(seed).run_sparse_hooked(lsb(), &mut tracker)
        })
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("geometric_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(geometric(&mut rng, 0.01));
            }
            acc
        })
    });

    group.bench_function("binomial_binv_10k", |b| {
        let mut rng = SimRng::new(2);
        let d = Binomial::new(100, 0.05); // np = 5 → BINV
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += d.sample(&mut rng);
            }
            acc
        })
    });

    group.bench_function("binomial_btpe_10k", |b| {
        let mut rng = SimRng::new(3);
        let d = Binomial::new(100_000, 0.3); // np = 30k → BTPE
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += d.sample(&mut rng);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_samplers);
criterion_main!(benches);
