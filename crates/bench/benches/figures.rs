//! Benches for figures F2–F6: prints each reproduced figure-table (quick
//! scale) once, then times the experiment kernel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lowsense_experiments::{registry, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for e in registry() {
        if !e.id.starts_with('F') {
            continue;
        }
        for t in (e.run)(Scale::Quick) {
            println!("{}", t.render());
        }
        group.bench_function(e.id, |b| b.iter(|| (e.run)(Scale::Quick)));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
