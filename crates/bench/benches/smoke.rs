//! Perf smoke target: slots/second per engine, machine readable.
//!
//! ```text
//! cargo bench -p lowsense-bench --bench smoke
//! ```
//!
//! Runs one representative scenario per engine and writes
//! `BENCH_engine.json` (at the workspace root) with slots-per-second and
//! accesses-per-second figures, so successive PRs have a perf trajectory
//! to compare against. Schema 3 added a `campaign` section timing the tiny
//! face-off sweep (cells per second on the shard pool); schema 4 added a
//! `phases` section with the instrumented-loop cycle profile (see the
//! `phases` bench — same profiler, embedded here so CI can gate on
//! `cyc_per_access` and the per-phase shares); schema 5 adds the
//! million-station capacity tier `sparse_lsb_1M` (n = 10^6 batch-injected,
//! short horizon) and a `capacity` section with its measured
//! bytes-per-station budget — engine overhead only (wake wheel + table
//! bookkeeping lanes), with protocol state reported separately; schema 6
//! adds the channel-model smoke entry `sparse_lsb_16384_nocd` (the same
//! LSB batch on the no-collision-detection channel, horizon capped because
//! full-sensing LSB livelocks there — the entry times the model dispatch
//! path, not a drain); schema 7 adds the mid-tier `sparse_lsb_100k`
//! (engine + phases entries, tracking the scaling curve between 16384 and
//! 1M), grows the phase shares from 10 to 13 slugs (the staged
//! gather/scatter path's `permute`/`gather`/`scatter`), and breaks the
//! staging buffers out as `stage_bytes` in the capacity section:
//!
//! ```json
//! {
//!   "schema": "lowsense-bench-engine/7",
//!   "engines": { "<name>": { "slots": N, "seconds": S, "slots_per_sec": R,
//!                            "accesses": A, "accesses_per_sec": Q } },
//!   "campaign": { "<name>": { "cells": C, "runs": U, "seconds": S,
//!                             "cells_per_sec": R } },
//!   "phases": { "<name>": { "accesses": A, "cyc_per_access": X,
//!                           "shares": { "<slug>": F, ... } } },
//!   "capacity": { "<name>": { "stations": N, "horizon": H,
//!                             "engine_bytes": B, "state_bytes": SB,
//!                             "stage_bytes": GB,
//!                             "bytes_per_station": X, "samples": K } }
//! }
//! ```
//!
//! `slots` and `slots_per_sec` are kept for trajectory continuity with the
//! schema/1 files of earlier PRs, but **engine comparisons should use
//! `accesses_per_sec`**: the event-driven engines account silent gap slots
//! at `O(1)` per gap, so a workload that backs off further (e.g. the
//! jammed entry) inflates its slot count with nearly-free skipped slots,
//! while a channel access costs the same work in every run. Accesses are
//! the engines' real unit of work (see docs/ARCHITECTURE.md).

use std::io::Write as _;
use std::time::Instant;

use lowsense::{LowSensing, Params};
use lowsense_baselines::{CjpConfig, CjpMwu};
use lowsense_bench::profile::{profile_sparse_capacity, profile_sparse_smoke, PHASES};
use lowsense_experiments::campaigns;
use lowsense_sim::metrics::RunResult;
use lowsense_sim::scenario::scenarios;

const REPS: u64 = 5;
/// The capacity tier: a million stations batch-injected, horizon capped so
/// the smoke target stays a smoke target (the wheel makes the horizon
/// cheap; station count is what this tier stresses).
const CAP_STATIONS: u64 = 1_000_000;
const CAP_HORIZON: u64 = 100_000;
/// The mid tier between the 16384 drain and the 1M capacity tier: first
/// point past the staged gather/scatter gate (6.4 MB state lane), same
/// horizon cap as the 1M tier so cyc/access figures are comparable.
const MID_STATIONS: u64 = 100_000;
/// Fewer reps at capacity scale — one warm-up plus two measured seeds.
const CAP_REPS: u64 = 2;
// Benches run with CWD = the package dir; anchor the report at the
// workspace root so its location does not depend on how cargo was invoked.
const OUT_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

struct Sample {
    name: &'static str,
    slots: u64,
    accesses: u64,
    seconds: f64,
}

impl Sample {
    fn slots_per_sec(&self) -> f64 {
        self.slots as f64 / self.seconds.max(1e-12)
    }

    fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.seconds.max(1e-12)
    }
}

/// Times `reps` runs of `run`, counting simulated (active) slots and
/// channel accesses (sends + listens, the engines' real unit of work).
fn measure_reps(name: &'static str, reps: u64, mut run: impl FnMut(u64) -> RunResult) -> Sample {
    // Warm-up run; result intentionally discarded.
    let _ = run(0);
    let start = Instant::now();
    let mut slots = 0u64;
    let mut accesses = 0u64;
    for seed in 1..=reps {
        let totals = run(seed).totals;
        slots += totals.active_slots;
        accesses += totals.accesses();
    }
    Sample {
        name,
        slots,
        accesses,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// [`measure_reps`] at the standard `REPS`.
fn measure(name: &'static str, run: impl FnMut(u64) -> RunResult) -> Sample {
    measure_reps(name, REPS, run)
}

fn main() {
    let samples = vec![
        measure("dense_lsb_512", |seed| {
            scenarios::batch_drain(512)
                .totals_only()
                .seeded(seed)
                .run_dense(|_| LowSensing::new(Params::default()))
        }),
        measure("sparse_lsb_16384", |seed| {
            scenarios::batch_drain(16_384)
                .totals_only()
                .seeded(seed)
                .run_sparse(|_| LowSensing::new(Params::default()))
        }),
        // The retained heap-based loop on the identical workload, so every
        // BENCH_engine.json records the old-vs-new sparse ratio directly
        // (the two runs are bit-identical, making slots/sec comparable).
        measure("sparse_ref_lsb_16384", |seed| {
            scenarios::batch_drain(16_384)
                .totals_only()
                .seeded(seed)
                .run_sparse_reference(|_| LowSensing::new(Params::default()))
        }),
        measure("sparse_lsb_16384_jammed", |seed| {
            scenarios::random_jam_batch(16_384, 0.2)
                .totals_only()
                .seeded(seed)
                .run_sparse(|_| LowSensing::new(Params::default()))
        }),
        // The reference loop on the jammed workload too, so the CI
        // bit-exactness canary covers a jam-feedback path (back-offs, gap
        // jam counting) and not only the clean drain.
        measure("sparse_ref_lsb_16384_jammed", |seed| {
            scenarios::random_jam_batch(16_384, 0.2)
                .totals_only()
                .seeded(seed)
                .run_sparse_reference(|_| LowSensing::new(Params::default()))
        }),
        // The no-CD channel entry: the same LSB batch with collisions
        // reported as silence. LSB never drains here (it walks the wrong
        // way and livelocks at maximum aggression), so the horizon is hard
        // capped and fewer reps suffice — the entry exists to time the
        // feedback-model dispatch in the slot loop, and to keep a perf
        // trajectory for the non-ternary resolve path.
        measure_reps("sparse_lsb_16384_nocd", 2, |seed| {
            scenarios::nocd_batch(16_384)
                .totals_only()
                .until_slot(10_000)
                .seeded(seed)
                .run_sparse(|_| LowSensing::new(Params::default()))
        }),
        // The mid tier: 10^5 stations, the first smoke point whose state
        // lane overflows the cache and runs the staged gather/scatter
        // path. Tracks the scaling curve between the in-cache 16384 drain
        // and the 1M capacity tier.
        measure_reps("sparse_lsb_100k", CAP_REPS, |seed| {
            scenarios::batch_drain(MID_STATIONS)
                .totals_only()
                .until_slot(CAP_HORIZON)
                .seeded(seed)
                .run_sparse(|_| LowSensing::new(Params::default()))
        }),
        // The capacity tier: 10^6 stations on the hierarchical wheel, horizon
        // capped. Stresses station count (queue fill, table lanes, cascade
        // traffic), not horizon length.
        measure_reps("sparse_lsb_1M", CAP_REPS, |seed| {
            scenarios::batch_drain(CAP_STATIONS)
                .totals_only()
                .until_slot(CAP_HORIZON)
                .seeded(seed)
                .run_sparse(|_| LowSensing::new(Params::default()))
        }),
        measure("grouped_cjp_4096", |seed| {
            scenarios::batch_drain(4096)
                .totals_only()
                .seeded(seed)
                .run_grouped(|_| CjpMwu::new(CjpConfig::default()))
        }),
    ];

    // The campaign smoke entry: the tiny face-off sweep (the same spec the
    // CI determinism canary runs), timed end to end on the shard pool —
    // cells/sec is the sweep layer's unit of work.
    let campaign_spec = campaigns::faceoff_small_spec(42);
    let _warm = campaign_spec.run();
    let campaign_start = Instant::now();
    let campaign_reps = 3u32;
    for _ in 0..campaign_reps {
        let result = campaign_spec.run();
        assert_eq!(result.cells.len(), campaign_spec.cell_count());
    }
    let campaign_seconds = campaign_start.elapsed().as_secs_f64();
    let campaign_cells = campaign_spec.cell_count() as u64 * campaign_reps as u64;
    let campaign_runs = campaign_spec.unit_count() as u64 * campaign_reps as u64;
    let cells_per_sec = campaign_cells as f64 / campaign_seconds.max(1e-12);

    // The cycle profile of the sparse hot loop, via the same instrumented
    // replica the `phases` bench prints (validated against run_sparse on
    // every rep).
    let phase_profile = profile_sparse_smoke(16_384, 5);

    // The mid tier's phase profile: the first point where the staged
    // permute/gather/scatter slugs accrue cycles (one seed, validated
    // against run_sparse like every profiled entry; probe unused here).
    let (mid_profile, _) = profile_sparse_capacity(MID_STATIONS, CAP_HORIZON, 1);

    // The capacity tier's phase profile and memory budget, from the same
    // instrumented replica with the periodic memory probe attached (one
    // seed, validated against run_sparse on the capped scenario).
    let (cap_profile, cap_probe) = profile_sparse_capacity(CAP_STATIONS, CAP_HORIZON, 1);
    assert!(
        cap_probe.peak_live >= CAP_STATIONS / 2,
        "capacity probe sampled only {} live stations",
        cap_probe.peak_live
    );

    let mut json =
        String::from("{\n  \"schema\": \"lowsense-bench-engine/7\",\n  \"engines\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{ \"slots\": {}, \"seconds\": {:.6}, \"slots_per_sec\": {:.1}, \
             \"accesses\": {}, \"accesses_per_sec\": {:.1} }}{sep}\n",
            s.name,
            s.slots,
            s.seconds,
            s.slots_per_sec(),
            s.accesses,
            s.accesses_per_sec()
        ));
    }
    json.push_str("  },\n  \"campaign\": {\n");
    json.push_str(&format!(
        "    \"campaign_faceoff_small\": {{ \"cells\": {}, \"runs\": {}, \"seconds\": {:.6}, \
         \"cells_per_sec\": {:.1} }}\n",
        campaign_cells, campaign_runs, campaign_seconds, cells_per_sec
    ));
    json.push_str("  },\n  \"phases\": {\n");
    let push_phases =
        |json: &mut String, name: &str, p: &lowsense_bench::profile::SmokeProfile, sep: &str| {
            json.push_str(&format!(
                "    \"{name}\": {{ \"accesses\": {}, \"cyc_per_access\": {:.2}, \"shares\": {{ ",
                p.accesses,
                p.cyc_per_access()
            ));
            for (i, phase) in PHASES.iter().enumerate() {
                let sep = if i + 1 == PHASES.len() { "" } else { ", " };
                json.push_str(&format!(
                    "\"{}\": {:.4}{sep}",
                    phase.slug,
                    p.profile.share(i)
                ));
            }
            json.push_str(&format!(" }} }}{sep}\n"));
        };
    push_phases(&mut json, "sparse_lsb_16384", &phase_profile, ",");
    push_phases(&mut json, "sparse_lsb_100k", &mid_profile, ",");
    push_phases(&mut json, "sparse_lsb_1M", &cap_profile, "");
    json.push_str("  },\n  \"capacity\": {\n");
    json.push_str(&format!(
        "    \"sparse_lsb_1M\": {{ \"stations\": {}, \"horizon\": {}, \"engine_bytes\": {}, \
         \"state_bytes\": {}, \"stage_bytes\": {}, \"bytes_per_station\": {:.2}, \"samples\": {} }}\n",
        cap_probe.peak_live,
        CAP_HORIZON,
        cap_probe.peak_engine_bytes,
        cap_probe.peak_state_bytes,
        cap_probe.peak_stage_bytes,
        cap_probe.bytes_per_station(),
        cap_probe.samples
    ));
    json.push_str("  }\n}\n");

    for s in &samples {
        println!(
            "smoke: {:<28} {:>12} slots in {:>8.3}s  ({:>12.0} slots/sec, {:>12.0} accesses/sec)",
            s.name,
            s.slots,
            s.seconds,
            s.slots_per_sec(),
            s.accesses_per_sec()
        );
    }
    println!(
        "smoke: {:<28} {:>12} cells in {:>8.3}s  ({:>12.1} cells/sec, {} runs)",
        "campaign_faceoff_small", campaign_cells, campaign_seconds, cells_per_sec, campaign_runs
    );
    println!(
        "smoke: {:<28} {:>12} accesses  ({:.1} cyc/access; observe {:.1}%, wake {:.1}%)",
        "phases_sparse_lsb_16384",
        phase_profile.accesses,
        phase_profile.cyc_per_access(),
        100.0 * phase_profile.profile.share(7),
        100.0 * phase_profile.profile.share(8),
    );
    println!(
        "smoke: {:<28} {:>12} accesses  ({:.1} cyc/access; permute {:.1}%, gather {:.1}%, scatter {:.1}%)",
        "phases_sparse_lsb_100k",
        mid_profile.accesses,
        mid_profile.cyc_per_access(),
        100.0 * mid_profile.profile.share(3),
        100.0 * mid_profile.profile.share(4),
        100.0 * mid_profile.profile.share(11),
    );
    println!(
        "smoke: {:<28} {:>12} accesses  ({:.1} cyc/access; {:.1} engine B/station, {:.1} state B/station)",
        "capacity_sparse_lsb_1M",
        cap_profile.accesses,
        cap_profile.cyc_per_access(),
        cap_probe.bytes_per_station(),
        cap_probe.peak_state_bytes as f64 / cap_probe.peak_live.max(1) as f64,
    );
    let mut f = std::fs::File::create(OUT_FILE).expect("create BENCH_engine.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_engine.json");
    println!("smoke: wrote BENCH_engine.json");
}
