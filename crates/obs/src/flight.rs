//! The engine flight recorder: a bounded ring of periodic
//! [`EngineSample`]s with JSONL export and inline stall detection.
//!
//! [`FlightRecorder`] implements [`Hooks`] for every protocol type: it
//! leaves all per-event callbacks defaulted (`wants_observe` stays
//! `false`, so the engine's listener-clone elision is preserved) and only
//! requests the periodic out-of-band sample the sparse engine takes after
//! a slot has fully resolved. Attaching one to a run therefore changes
//! nothing about the run — the equivalence suite pins this bitwise.

use std::collections::VecDeque;

use lowsense_sim::hooks::{EngineSample, Hooks};

use crate::registry::Telemetry;
use crate::stall::{StallDetector, StallEvent};
use crate::{esc, num};

/// Schema tag stamped on [`FlightRecorder::to_jsonl`] headers.
pub const FLIGHT_SCHEMA: &str = "lowsense-obs-flight/1";

/// Bounded flight recorder over the sparse engine's sample stream.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    context: String,
    period: u64,
    capacity: usize,
    ring: VecDeque<EngineSample>,
    dropped: u64,
    detector: Option<StallDetector>,
    stalls: Vec<StallEvent>,
}

impl FlightRecorder {
    /// A recorder labelled `context` (scenario/run name in exports),
    /// sampling every `period` event slots and retaining the most recent
    /// `capacity` samples. Stall detection is on by default
    /// ([`StallDetector::default`]); see
    /// [`FlightRecorder::with_detector`] /
    /// [`FlightRecorder::without_detector`].
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `capacity == 0`.
    pub fn new(context: impl Into<String>, period: u64, capacity: usize) -> Self {
        assert!(period > 0, "sample period must be positive");
        assert!(capacity > 0, "capacity must be positive");
        FlightRecorder {
            context: context.into(),
            period,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            detector: Some(StallDetector::default()),
            stalls: Vec::new(),
        }
    }

    /// Replaces the stall detector (e.g. with a tighter window).
    pub fn with_detector(mut self, detector: StallDetector) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Disables stall detection.
    pub fn without_detector(mut self) -> Self {
        self.detector = None;
        self
    }

    /// The context label given at construction.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The sampling period in event slots.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> &VecDeque<EngineSample> {
        &self.ring
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&EngineSample> {
        self.ring.back()
    }

    /// Samples evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stall events detected so far (never evicted; stalls are rare and
    /// each spans a whole detector window).
    pub fn stalls(&self) -> &[StallEvent] {
        &self.stalls
    }

    /// Serializes the recording as JSON Lines: one header record (schema,
    /// context, period, capacity, dropped/retained counts), one record per
    /// retained sample (oldest first), then one record per stall event
    /// with its rendered diagnosis.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"context\":\"{}\",\"period\":{},\
             \"capacity\":{},\"dropped\":{},\"samples\":{},\"stalls\":{}}}",
            esc(&self.context),
            self.period,
            self.capacity,
            self.dropped,
            self.ring.len(),
            self.stalls.len(),
        );
        for s in &self.ring {
            let _ = writeln!(
                out,
                "{{\"t\":\"sample\",\"slot\":{},\"event_slots\":{},\"backlog\":{},\
                 \"arrivals\":{},\"successes\":{},\"active_slots\":{},\
                 \"empty_active\":{},\"collision_slots\":{},\"jammed_active\":{},\
                 \"sends\":{},\"listens\":{},\"overhead_slots\":{},\
                 \"contention\":{},\"implicit_throughput\":{},\
                 \"footprint_bytes\":{},\"state_bytes\":{}}}",
                s.slot,
                s.event_slots,
                s.backlog,
                s.arrivals,
                s.successes,
                s.active_slots,
                s.empty_active,
                s.collision_slots,
                s.jammed_active,
                s.sends,
                s.listens,
                s.overhead_slots,
                num(s.contention),
                num(s.implicit_throughput()),
                s.footprint_bytes,
                s.state_bytes,
            );
        }
        for ev in &self.stalls {
            let _ = writeln!(out, "{}", ev.to_json());
        }
        out
    }

    /// Publishes the recording's final counters and last-sample gauges
    /// into a telemetry sink under the `flight.*` namespace.
    pub fn publish<T: Telemetry>(&self, out: &mut T) {
        if !out.enabled() {
            return;
        }
        out.add("flight.samples", self.ring.len() as u64 + self.dropped);
        out.add("flight.dropped", self.dropped);
        out.add("flight.stalls", self.stalls.len() as u64);
        if let Some(s) = self.last() {
            out.set("flight.last.backlog", s.backlog as f64);
            out.set("flight.last.contention", s.contention);
            out.set("flight.last.implicit_throughput", s.implicit_throughput());
            out.set("flight.last.footprint_bytes", s.footprint_bytes as f64);
            out.set("flight.last.state_bytes", s.state_bytes as f64);
            out.set("flight.last.overhead_slots", s.overhead_slots as f64);
        }
    }
}

impl<P> Hooks<P> for FlightRecorder {
    fn wants_observe(&self) -> bool {
        false
    }

    fn sample_period(&self) -> Option<u64> {
        Some(self.period)
    }

    fn on_sample(&mut self, sample: &EngineSample) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*sample);
        if let Some(d) = self.detector.as_mut() {
            if let Some(ev) = d.feed(sample) {
                self.stalls.push(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::stall::StallConfig;

    fn sample(event_slots: u64) -> EngineSample {
        EngineSample {
            slot: event_slots,
            event_slots,
            backlog: 4,
            arrivals: 4,
            successes: 0,
            active_slots: event_slots,
            empty_active: 0,
            collision_slots: event_slots,
            jammed_active: 0,
            sends: 2 * event_slots,
            listens: 0,
            overhead_slots: 0,
            contention: 2.0,
            footprint_bytes: 1024,
            state_bytes: 512,
        }
    }

    fn feed<P>(rec: &mut FlightRecorder, s: &EngineSample)
    where
        FlightRecorder: Hooks<P>,
    {
        Hooks::<P>::on_sample(rec, s);
    }

    #[test]
    fn ring_bounds_and_drops() {
        let mut rec = FlightRecorder::new("test", 1, 3).without_detector();
        for k in 1..=5 {
            feed::<u8>(&mut rec, &sample(k));
        }
        assert_eq!(rec.samples().len(), 3);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.samples().front().unwrap().event_slots, 3);
        assert_eq!(rec.last().unwrap().event_slots, 5);
    }

    #[test]
    fn hooks_surface_is_sample_only() {
        let rec = FlightRecorder::new("test", 16, 8);
        assert!(!Hooks::<u8>::wants_observe(&rec));
        assert_eq!(Hooks::<u8>::sample_period(&rec), Some(16));
    }

    #[test]
    fn jsonl_has_header_samples_and_stalls() {
        let mut rec = FlightRecorder::new("ctx\"quoted", 1, 64).with_detector(StallDetector::new(
            StallConfig {
                window: 4,
                dominance: 0.9,
            },
        ));
        for k in [1u64, 8] {
            feed::<u8>(&mut rec, &sample(k));
        }
        assert_eq!(rec.stalls().len(), 1, "pure-collision stretch stalls");
        let text = rec.to_jsonl();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schema\":\"lowsense-obs-flight/1\""));
        assert!(header.contains("\"context\":\"ctx\\\"quoted\""));
        assert!(header.contains("\"samples\":2"));
        assert!(header.contains("\"stalls\":1"));
        assert_eq!(
            lines
                .clone()
                .filter(|l| l.contains("\"t\":\"sample\""))
                .count(),
            2
        );
        let stall_line = lines.find(|l| l.contains("\"t\":\"stall\"")).unwrap();
        assert!(stall_line.contains("collision-dominated"));
    }

    #[test]
    fn publish_writes_flight_namespace() {
        let mut rec = FlightRecorder::new("t", 1, 4).without_detector();
        feed::<u8>(&mut rec, &sample(2));
        let mut reg = Registry::new();
        rec.publish(&mut reg);
        assert_eq!(reg.counter("flight.samples"), 1);
        assert_eq!(reg.gauge("flight.last.backlog"), Some(4.0));
        assert_eq!(reg.gauge("flight.last.footprint_bytes"), Some(1024.0));
        // The no-op sink stays a no-op.
        let mut off = crate::NoTelemetry;
        rec.publish(&mut off);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        FlightRecorder::new("t", 0, 1);
    }
}
