//! # lowsense-obs — deterministic observability
//!
//! The observation layer for the lowsense workspace: named telemetry, an
//! engine flight recorder, and stall/livelock detection — all built on one
//! rule that makes them safe to thread through a bit-reproducible
//! simulator:
//!
//! > **Telemetry only ever *reads* state the instrumented code already
//! > maintains, after the instrumented step has fully resolved.** It never
//! > draws randomness, never reorders work, never adds floating-point
//! > operations to accumulation chains. A run with telemetry attached is
//! > bit-identical to the same run without it.
//!
//! Three pieces:
//!
//! * [`Telemetry`] / [`Registry`] — a named counter/gauge/histogram sink.
//!   Instrumented code is generic over `T: Telemetry`; the default
//!   [`NoTelemetry`] implementation monomorphizes every publish call to
//!   nothing, so the off-path costs literally zero instructions.
//! * [`FlightRecorder`] — a [`Hooks`](lowsense_sim::hooks::Hooks)
//!   implementation that asks the sparse engine for a periodic
//!   [`EngineSample`](lowsense_sim::hooks::EngineSample) (backlog, the
//!   active-slot partition, send/listen energy, contention,
//!   `overhead_slots`, wake-structure and state-lane footprints), keeps
//!   the last `capacity` of them in a bounded ring, and exports the lot as
//!   schema-versioned JSONL.
//! * [`StallDetector`] — watches the sample stream for "backlog
//!   non-decreasing while collision-or-silence slots dominate for a whole
//!   window" and renders a diagnosis. This is what turns the
//!   no-collision-detection collapse of full-sensing LOW-SENSING BACKOFF
//!   (Jiang–Zheng, arXiv:2111.06650) from a horizon-capped number into an
//!   explained event, and flags its dual — over-backoff silence — the same
//!   way.
//!
//! ```
//! use lowsense_obs::{FlightRecorder, Registry, Telemetry};
//! use lowsense_sim::prelude::*;
//! use lowsense_sim::scenario::scenarios;
//! use lowsense_sim::dist::geometric;
//!
//! #[derive(Clone)]
//! struct Aloha(f64);
//! impl Protocol for Aloha {
//!     fn intent(&mut self, rng: &mut SimRng) -> Intent {
//!         if rng.bernoulli(self.0) { Intent::Send } else { Intent::Sleep }
//!     }
//!     fn observe(&mut self, _obs: &Observation) {}
//!     fn send_probability(&self) -> f64 { self.0 }
//!     fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
//!         Some(geometric(rng, self.0))
//!     }
//! }
//! impl SparseProtocol for Aloha {
//!     fn send_on_access(&mut self, _rng: &mut SimRng) -> bool { true }
//! }
//!
//! let scenario = scenarios::batch_drain(64);
//! let mut rec = FlightRecorder::new(scenario.name(), 8, 1024);
//! let with = scenario.run_sparse_hooked(|_| Aloha(1.0 / 32.0), &mut rec);
//! let without = scenario.run_sparse(|_| Aloha(1.0 / 32.0));
//! assert_eq!(with.totals, without.totals); // observation is free
//! assert!(rec.samples().len() > 0);
//! let mut reg = Registry::new();
//! rec.publish(&mut reg);
//! assert!(reg.counter("flight.samples") > 0);
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

mod flight;
mod registry;
mod stall;

pub use flight::{FlightRecorder, FLIGHT_SCHEMA};
pub use registry::{NoTelemetry, Registry, Telemetry, REGISTRY_SCHEMA};
pub use stall::{StallConfig, StallDetector, StallEvent, StallKind};

/// Escapes a string for embedding in a JSON string literal, matching the
/// campaign artifact writer's conventions.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number: finite values use Rust's shortest
/// round-trip formatting (deterministic across platforms), non-finite
/// values degrade to `null`.
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a decimal point; keep them
        // recognizably floating so jq-side schema checks see one shape.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::{esc, num};

    #[test]
    fn esc_handles_quotes_and_control() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_is_json_safe() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(2.0), "2.0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
