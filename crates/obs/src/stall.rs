//! Stall/livelock detection over the engine sample stream.
//!
//! A backoff system has two characteristic failure shapes, and both leave
//! the same macroscopic fingerprint — **backlog refuses to drop while the
//! channel burns slots without successes**:
//!
//! * **Collision-dominated**: send probabilities stay too high and every
//!   slot multi-collides. The canonical instance is full-sensing
//!   LOW-SENSING BACKOFF on a no-collision-detection channel: listeners
//!   read collisions as silence, shrink their windows, collide *harder*,
//!   and the loop closes — the Jiang–Zheng livelock (arXiv:2111.06650)
//!   that PR 8 pinned behind a horizon cap.
//! * **Silence-dominated**: windows overshoot and the backlog sits idle,
//!   everyone asleep — over-backoff, the dual failure.
//!
//! [`StallDetector`] watches consecutive [`EngineSample`]s and fires a
//! [`StallEvent`] when, over a configurable window of event slots, the
//! backlog never dropped below its value at the window start *and*
//! non-success slots (collisions + empty) dominate the active slots spent.
//! Detection is a pure function of the sample stream, so it inherits the
//! stream's determinism: same run, same events.

use lowsense_sim::hooks::EngineSample;
use lowsense_sim::time::Slot;

use crate::{esc, num};

/// Tuning knobs for [`StallDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallConfig {
    /// Event slots a no-progress stretch must span before it counts as a
    /// stall.
    pub window: u64,
    /// Fraction of the stretch's active slots that must be non-success
    /// (collision or empty) for the stall to fire.
    pub dominance: f64,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            window: 2048,
            dominance: 0.95,
        }
    }
}

/// Which failure shape dominated a stalled stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Mostly collision slots: windows too small / contention too high.
    CollisionDominated,
    /// Mostly empty active slots: windows too large / over-backoff.
    SilenceDominated,
    /// Neither shape holds ≥ 2/3 of the wasted slots.
    Mixed,
}

impl StallKind {
    /// Stable lowercase tag used in JSONL exports.
    pub fn tag(&self) -> &'static str {
        match self {
            StallKind::CollisionDominated => "collision-dominated",
            StallKind::SilenceDominated => "silence-dominated",
            StallKind::Mixed => "mixed",
        }
    }
}

/// One detected no-progress stretch.
#[derive(Debug, Clone, PartialEq)]
pub struct StallEvent {
    /// Wall-clock slot at which the stall was flagged.
    pub slot: Slot,
    /// Event-slot clock at the flag point.
    pub event_slots: u64,
    /// Event slots the stretch spanned.
    pub span: u64,
    /// Backlog at the flag point (≥ the backlog at the stretch start).
    pub backlog: u64,
    /// Successes delivered during the stretch (0 in a true livelock).
    pub successes: u64,
    /// Fraction of the stretch's active slots that were collisions.
    pub collision_share: f64,
    /// Fraction of the stretch's active slots that were empty.
    pub empty_share: f64,
    /// The dominant failure shape.
    pub kind: StallKind,
}

impl StallEvent {
    /// Renders a one-paragraph human diagnosis of the stretch.
    pub fn diagnosis(&self) -> String {
        let head = format!(
            "stall: backlog {} non-decreasing across {} event slots \
             (successes {}, collisions {:.0}%, empty {:.0}%)",
            self.backlog,
            self.span,
            self.successes,
            self.collision_share * 100.0,
            self.empty_share * 100.0,
        );
        match self.kind {
            StallKind::CollisionDominated => format!(
                "{head} — collision-dominated: send windows are not growing \
                 despite persistent collisions. On a no-collision-detection \
                 channel this is the signature of the Jiang-Zheng livelock \
                 (arXiv:2111.06650): a full-sensing protocol such as \
                 LOW-SENSING BACKOFF reads collisions as silence, shrinks \
                 its window, and collides harder forever."
            ),
            StallKind::SilenceDominated => format!(
                "{head} — silence-dominated: backoff windows have overshot \
                 the backlog and stations sleep through almost every slot \
                 (over-backoff); expect drain time far beyond the \
                 paper's bounds."
            ),
            StallKind::Mixed => format!(
                "{head} — mixed collision/silence waste: contention is \
                 oscillating around the stable point without delivering; \
                 check jamming pressure and feedback-model cost parameters."
            ),
        }
    }

    /// Serializes the event as one JSONL record (used by the flight
    /// recorder's export).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\":\"stall\",\"slot\":{},\"event_slots\":{},\"span\":{},\
             \"backlog\":{},\"successes\":{},\"collision_share\":{},\
             \"empty_share\":{},\"kind\":\"{}\",\"diagnosis\":\"{}\"}}",
            self.slot,
            self.event_slots,
            self.span,
            self.backlog,
            self.successes,
            num(self.collision_share),
            num(self.empty_share),
            self.kind.tag(),
            esc(&self.diagnosis()),
        )
    }
}

/// Incremental detector over a stream of [`EngineSample`]s.
///
/// Feed every sample (in order) to [`StallDetector::feed`]; it returns
/// `Some(StallEvent)` at most once per spanned window. After firing, the
/// stretch re-anchors at the firing sample, so a persistent livelock
/// yields one event per `window` event slots rather than one per sample.
#[derive(Debug, Clone, Default)]
pub struct StallDetector {
    cfg: StallConfig,
    anchor: Option<EngineSample>,
}

impl StallDetector {
    /// A detector with the given configuration.
    pub fn new(cfg: StallConfig) -> Self {
        StallDetector { cfg, anchor: None }
    }

    /// The active configuration.
    pub fn config(&self) -> StallConfig {
        self.cfg
    }

    /// Advances the detector by one sample; returns a stall event if the
    /// window just closed over a no-progress stretch.
    pub fn feed(&mut self, s: &EngineSample) -> Option<StallEvent> {
        let Some(anchor) = self.anchor else {
            self.anchor = Some(*s);
            return None;
        };
        // Progress = the backlog dropped below the stretch start. (Mere
        // successes are not enough: under saturating arrivals, delivering
        // slower than the offered load is still a degradation worth
        // flagging.)
        if s.backlog < anchor.backlog {
            self.anchor = Some(*s);
            return None;
        }
        let span = s.event_slots.saturating_sub(anchor.event_slots);
        if span < self.cfg.window {
            return None;
        }
        let active = s.active_slots.saturating_sub(anchor.active_slots);
        let collisions = s.collision_slots.saturating_sub(anchor.collision_slots);
        let empty = s.empty_active.saturating_sub(anchor.empty_active);
        let successes = s.successes.saturating_sub(anchor.successes);
        // The stretch is re-anchored either way: if it was healthy, the
        // window simply slides; if it fired, the next window accumulates
        // fresh evidence.
        self.anchor = Some(*s);
        if active == 0 {
            return None;
        }
        let wasted = (collisions + empty) as f64 / active as f64;
        if wasted < self.cfg.dominance {
            return None;
        }
        let collision_share = collisions as f64 / active as f64;
        let empty_share = empty as f64 / active as f64;
        let kind = if collision_share >= 2.0 * empty_share {
            StallKind::CollisionDominated
        } else if empty_share >= 2.0 * collision_share {
            StallKind::SilenceDominated
        } else {
            StallKind::Mixed
        };
        Some(StallEvent {
            slot: s.slot,
            event_slots: s.event_slots,
            span,
            backlog: s.backlog,
            successes,
            collision_share,
            empty_share,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(event_slots: u64, backlog: u64) -> EngineSample {
        EngineSample {
            slot: event_slots,
            event_slots,
            backlog,
            arrivals: backlog,
            successes: 0,
            active_slots: event_slots,
            empty_active: 0,
            collision_slots: 0,
            jammed_active: 0,
            sends: 0,
            listens: 0,
            overhead_slots: 0,
            contention: 1.0,
            footprint_bytes: 0,
            state_bytes: 0,
        }
    }

    fn det(window: u64) -> StallDetector {
        StallDetector::new(StallConfig {
            window,
            dominance: 0.9,
        })
    }

    #[test]
    fn fires_on_pure_collision_stretch() {
        let mut d = det(10);
        let mut a = sample(0, 8);
        assert!(d.feed(&a).is_none(), "first sample only anchors");
        a.event_slots = 12;
        a.active_slots = 12;
        a.collision_slots = 12;
        a.slot = 12;
        let ev = d.feed(&a).expect("window spanned with zero progress");
        assert_eq!(ev.kind, StallKind::CollisionDominated);
        assert_eq!(ev.span, 12);
        assert_eq!(ev.successes, 0);
        assert!((ev.collision_share - 1.0).abs() < 1e-12);
        let diag = ev.diagnosis();
        assert!(diag.contains("LOW-SENSING BACKOFF"));
        assert!(diag.contains("2111.06650"), "names the no-CD livelock");
    }

    #[test]
    fn silence_dominated_is_classified() {
        let mut d = det(10);
        d.feed(&sample(0, 8));
        let mut s = sample(20, 8);
        s.active_slots = 20;
        s.empty_active = 19;
        s.successes = 1;
        let ev = d.feed(&s).expect("95% empty > 90% dominance");
        assert_eq!(ev.kind, StallKind::SilenceDominated);
        assert!(ev.diagnosis().contains("over-backoff"));
    }

    #[test]
    fn progress_resets_the_stretch() {
        let mut d = det(10);
        d.feed(&sample(0, 8));
        // Backlog drops: anchor moves, no event even after a long span.
        let mut s = sample(50, 7);
        s.active_slots = 50;
        s.collision_slots = 50;
        assert!(d.feed(&s).is_none(), "progress re-anchors");
        // From the new anchor, a fresh collision stretch fires again.
        let mut s2 = sample(65, 7);
        s2.active_slots = 65;
        s2.collision_slots = 65;
        assert!(d.feed(&s2).is_some());
    }

    #[test]
    fn healthy_mix_slides_without_firing() {
        let mut d = det(10);
        d.feed(&sample(0, 8));
        // Half the stretch succeeds: wasted share 0.5 < 0.9 dominance.
        let mut s = sample(30, 8);
        s.active_slots = 30;
        s.collision_slots = 15;
        s.successes = 15;
        assert!(d.feed(&s).is_none());
    }

    #[test]
    fn stall_json_is_one_flat_record() {
        let mut d = det(4);
        d.feed(&sample(0, 3));
        let mut s = sample(8, 3);
        s.active_slots = 8;
        s.collision_slots = 8;
        let ev = d.feed(&s).unwrap();
        let json = ev.to_json();
        assert!(json.starts_with("{\"t\":\"stall\""));
        assert!(json.contains("\"kind\":\"collision-dominated\""));
        assert!(!json.contains('\n'));
    }
}
