//! The telemetry registry: named counters, gauges, and histograms.
//!
//! Instrumented code publishes through the [`Telemetry`] trait and is
//! generic over the implementation. [`NoTelemetry`] (the default
//! everywhere) has empty method bodies and `enabled() == false`, a
//! constant the compiler monomorphizes into dead-branch removal — the
//! off-path performs no hashing, no map lookups, no allocation, nothing.
//! [`Registry`] is the live implementation: `BTreeMap`-backed storage so
//! every export is deterministically ordered regardless of publish order.

use std::collections::BTreeMap;

use crate::{esc, num};

/// Schema tag stamped on [`Registry::to_json`] output.
pub const REGISTRY_SCHEMA: &str = "lowsense-obs-registry/1";

/// A sink for named metrics.
///
/// All methods default to no-ops so instrumentation points cost nothing
/// unless a live sink is plugged in. `enabled` mirrors the
/// [`Hooks::wants_observe`](lowsense_sim::hooks::Hooks::wants_observe)
/// contract: implementations must return a constant, and instrumented
/// code may consult it once to skip the *construction* of expensive
/// metric inputs (formatting a name, computing a ratio) — never to change
/// what the instrumented algorithm itself does.
pub trait Telemetry {
    /// Whether publishes reach a live sink. Must be constant.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the counter `name` (creating it at 0).
    fn add(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    fn set(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation of `value` into the histogram `name`.
    fn observe(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// The zero-cost default sink: publishes vanish at compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Telemetry for NoTelemetry {}

/// A recorded histogram: moment summary plus power-of-two magnitude
/// buckets (bucket `k` counts values `v` with `2^(k-1) < |v| ≤ 2^k`,
/// bucket 0 counts `|v| ≤ 1`). Log-scale buckets fit the workspace's
/// heavy-tailed quantities (latencies, footprints, cycle counts) without
/// per-histogram configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`None` until the first).
    pub min: Option<f64>,
    /// Largest observation (`None` until the first).
    pub max: Option<f64>,
    /// Sparse magnitude buckets, keyed by bucket index.
    pub buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        let mag = v.abs();
        let bucket = if mag <= 1.0 {
            0
        } else {
            // ceil(log2(mag)), capped to keep the key space tiny.
            (mag.log2().ceil() as i64).clamp(1, 128) as u32
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Mean observation (`None` until the first).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// The live sink: deterministic `BTreeMap` storage for counters, gauges,
/// and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Current value of counter `name` (0 if never published).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any observation reached it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other side's value (it is the later writer), histograms merge
    /// moment-wise and bucket-wise. Supports fan-in from per-shard
    /// registries.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = match (mine.min, h.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            mine.max = match (mine.max, h.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            for (bucket, n) in &h.buckets {
                *mine.buckets.entry(*bucket).or_insert(0) += n;
            }
        }
    }

    /// Serializes the registry as one deterministic JSON object
    /// (name-ordered sections, schema-tagged).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{REGISTRY_SCHEMA}\",\"counters\":{{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\"{}\":{v}", esc(k));
        }
        let _ = write!(out, "}},\"gauges\":{{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\"{}\":{}", esc(k), num(*v));
        }
        let _ = write!(out, "}},\"histograms\":{{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(
                out,
                "{comma}\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
                esc(k),
                h.count,
                num(h.sum),
                h.min.map_or("null".into(), num),
                h.max.map_or("null".into(), num),
            );
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                let comma = if j > 0 { "," } else { "" };
                let _ = write!(out, "{comma}\"{bucket}\":{n}");
            }
            let _ = write!(out, "}}}}");
        }
        let _ = write!(out, "}}}}");
        out
    }
}

impl Telemetry for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn set(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn observe(&mut self, name: &str, value: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_telemetry_is_disabled_and_inert() {
        let mut t = NoTelemetry;
        assert!(!t.enabled());
        t.add("x", 1);
        t.set("y", 2.0);
        t.observe("z", 3.0);
    }

    #[test]
    fn registry_records_and_reads_back() {
        let mut r = Registry::new();
        r.add("runs", 2);
        r.add("runs", 3);
        r.set("ratio", 5.5);
        r.observe("lat", 3.0);
        r.observe("lat", 9.0);
        assert!(r.enabled());
        assert_eq!(r.counter("runs"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("ratio"), Some(5.5));
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), Some(6.0));
        assert_eq!(h.min, Some(3.0));
        assert_eq!(h.max, Some(9.0));
    }

    #[test]
    fn histogram_buckets_are_log2_magnitude() {
        let mut h = Histogram::default();
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 0
        h.record(3.0); // 2 < 3 <= 4 => bucket 2
        h.record(-5.0); // |v|=5, 4 < 5 <= 8 => bucket 3
        assert_eq!(h.buckets.get(&0), Some(&2));
        assert_eq!(h.buckets.get(&2), Some(&1));
        assert_eq!(h.buckets.get(&3), Some(&1));
    }

    #[test]
    fn to_json_is_deterministic_and_name_ordered() {
        let mut a = Registry::new();
        a.add("b.second", 1);
        a.add("a.first", 1);
        a.set("g", 1.0);
        let mut b = Registry::new();
        b.set("g", 1.0);
        b.add("a.first", 1);
        b.add("b.second", 1);
        assert_eq!(a.to_json(), b.to_json(), "publish order must not show");
        let json = a.to_json();
        assert!(json.starts_with("{\"schema\":\"lowsense-obs-registry/1\""));
        assert!(json.find("a.first").unwrap() < json.find("b.second").unwrap());
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        a.add("n", 2);
        a.observe("h", 1.0);
        let mut b = Registry::new();
        b.add("n", 3);
        b.add("only_b", 7);
        b.observe("h", 100.0);
        b.set("g", 4.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.gauge("g"), Some(4.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, Some(1.0));
        assert_eq!(h.max, Some(100.0));
    }
}
