//! Integration test host: sources live in the repository-root tests/ directory.
