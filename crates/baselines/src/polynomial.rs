//! Polynomial backoff: contention window grows as `w₀·(i+1)^k`.
//!
//! A classical alternative to exponential backoff (Hastad–Leighton–Rogoff
//! 1987 showed polynomial backoff is stable in regimes where exponential is
//! not, at the price of latency). Included as a second oblivious baseline
//! for the throughput comparison (T2).

use lowsense_sim::feedback::{Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// Windowed polynomial backoff.
#[derive(Debug, Clone)]
pub struct PolynomialBackoff {
    w0: u64,
    degree: u32,
    attempt: u64,
    countdown: u64,
    rng: SimRng,
}

impl PolynomialBackoff {
    /// Creates a packet whose window after `i` collisions is `w₀·(i+1)^k`
    /// with `k = degree`.
    ///
    /// # Panics
    ///
    /// Panics if `w0 == 0` or `degree == 0`.
    pub fn new(w0: u64, degree: u32, rng: &mut SimRng) -> Self {
        assert!(w0 > 0, "initial window must be positive");
        assert!(degree > 0, "degree must be positive");
        let mut own = rng.fork();
        let countdown = own.range_u64(w0);
        PolynomialBackoff {
            w0,
            degree,
            attempt: 0,
            countdown,
            rng: own,
        }
    }

    /// Current window length `w₀·(i+1)^k`.
    pub fn window(&self) -> u64 {
        let grown = (self.attempt + 1).saturating_pow(self.degree);
        self.w0.saturating_mul(grown)
    }
}

impl Protocol for PolynomialBackoff {
    fn intent(&mut self, _rng: &mut SimRng) -> Intent {
        if self.countdown == 0 {
            Intent::Send
        } else {
            self.countdown -= 1;
            Intent::Sleep
        }
    }

    fn observe(&mut self, obs: &Observation) {
        debug_assert!(obs.sent, "oblivious protocol only observes own sends");
        if obs.succeeded {
            return;
        }
        self.attempt += 1;
        let w = self.window();
        self.countdown = self.rng.range_u64(w);
    }

    fn send_probability(&self) -> f64 {
        1.0 / self.window() as f64
    }

    fn next_wake(&mut self, _rng: &mut SimRng) -> Option<u64> {
        Some(self.countdown)
    }
}

impl SparseProtocol for PolynomialBackoff {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::SimConfig;
    use lowsense_sim::engine::run_sparse;
    use lowsense_sim::feedback::Feedback;
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    fn collision() -> Observation {
        Observation {
            slot: 0,
            feedback: Feedback::Noisy,
            sent: true,
            succeeded: false,
        }
    }

    #[test]
    fn window_grows_polynomially() {
        let mut rng = SimRng::new(1);
        let mut p = PolynomialBackoff::new(4, 2, &mut rng);
        assert_eq!(p.window(), 4);
        p.observe(&collision());
        assert_eq!(p.window(), 16); // 4·2²
        p.observe(&collision());
        assert_eq!(p.window(), 36); // 4·3²
    }

    #[test]
    fn saturating_window_never_overflows() {
        let mut rng = SimRng::new(2);
        let mut p = PolynomialBackoff::new(u64::MAX / 2, 3, &mut rng);
        p.observe(&collision());
        assert_eq!(p.window(), u64::MAX);
    }

    #[test]
    fn drains_batch() {
        let r = run_sparse(
            &SimConfig::new(3),
            Batch::new(64),
            NoJam,
            |rng| PolynomialBackoff::new(2, 2, &mut *rng),
            &mut NoHooks,
        );
        assert!(r.drained());
        assert_eq!(r.totals.listens, 0);
    }
}
