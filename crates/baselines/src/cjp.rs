//! Chang–Jin–Pettie-style multiplicative weight updates (SOSA 2019).
//!
//! The short-feedback-loop antithesis of `LOW-SENSING BACKOFF`: every packet
//! **listens in every slot** and multiplicatively adjusts its transmission
//! probability from the ternary feedback — up on silence, down on noise,
//! unchanged on success. Constant throughput, excellent constants, but the
//! listening cost is `Θ(lifetime)` per packet: this is the baseline that
//! makes "fully energy-efficient" measurable (experiments F6, T4).
//!
//! Because the update depends only on the common feedback, all packets
//! injected in the same slot share state forever, so the protocol also
//! implements [`SymmetricProtocol`] and runs at scale under the grouped
//! engine.

use lowsense_sim::dist::geometric;
use lowsense_sim::engine::SymmetricProtocol;
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// Parameters of the MWU baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CjpConfig {
    /// Multiplicative step `γ > 1`: silence multiplies `p` by `γ`, noise
    /// divides it.
    pub gamma: f64,
    /// Initial transmission probability.
    pub p_init: f64,
    /// Ceiling on the transmission probability.
    pub p_max: f64,
}

impl Default for CjpConfig {
    /// `γ = e^{1/4}`, `p_init = p_max = 1/4` — the shape used in the
    /// paper's discussion of \[36\]; exact constants immaterial for the
    /// baselines' role here.
    fn default() -> Self {
        CjpConfig {
            gamma: (0.25f64).exp(),
            p_init: 0.25,
            p_max: 0.25,
        }
    }
}

impl CjpConfig {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `γ > 1` and `0 < p_init ≤ p_max ≤ 1`.
    pub fn new(gamma: f64, p_init: f64, p_max: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1");
        assert!(
            p_init > 0.0 && p_init <= p_max && p_max <= 1.0,
            "need 0 < p_init <= p_max <= 1"
        );
        CjpConfig {
            gamma,
            p_init,
            p_max,
        }
    }
}

/// Per-packet (equivalently, per-cohort) state of the MWU baseline.
#[derive(Debug, Clone, Copy)]
pub struct CjpMwu {
    cfg: CjpConfig,
    p: f64,
}

impl CjpMwu {
    /// A freshly injected packet.
    pub fn new(cfg: CjpConfig) -> Self {
        CjpMwu { cfg, p: cfg.p_init }
    }

    /// Current transmission probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    fn update(&mut self, fb: Feedback) {
        match fb {
            Feedback::Empty => self.p = (self.p * self.cfg.gamma).min(self.cfg.p_max),
            Feedback::Noisy => self.p /= self.cfg.gamma,
            Feedback::Success => {}
        }
    }
}

impl Protocol for CjpMwu {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        // Listens every slot; sends with probability p.
        if rng.bernoulli(self.p) {
            Intent::Send
        } else {
            Intent::Listen
        }
    }

    fn observe(&mut self, obs: &Observation) {
        self.update(obs.feedback);
    }

    fn send_probability(&self) -> f64 {
        self.p
    }

    /// Every slot is an access: the sparse engine degenerates to dense
    /// (correct, but without speedup — use the grouped engine at scale).
    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        Some(geometric(rng, 1.0))
    }
}

impl SparseProtocol for CjpMwu {
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p)
    }
}

impl SymmetricProtocol for CjpMwu {
    fn send_probability(&self) -> f64 {
        self.p
    }

    fn on_feedback(&mut self, fb: Feedback) {
        self.update(fb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::SimConfig;
    use lowsense_sim::engine::{run_dense, run_grouped};
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    #[test]
    fn updates_move_probability() {
        let mut m = CjpMwu::new(CjpConfig::default());
        let p0 = m.probability();
        m.on_feedback(Feedback::Noisy);
        assert!(m.probability() < p0);
        m.on_feedback(Feedback::Empty);
        assert!((m.probability() - p0).abs() < 1e-12);
        // Ceiling binds.
        m.on_feedback(Feedback::Empty);
        assert_eq!(m.probability(), 0.25);
        m.on_feedback(Feedback::Success);
        assert_eq!(m.probability(), 0.25);
    }

    #[test]
    fn drains_batch_with_constant_throughput() {
        let r = run_grouped(&SimConfig::new(1), Batch::new(2000), NoJam, |_| {
            CjpMwu::new(CjpConfig::default())
        });
        assert!(r.drained());
        assert!(r.totals.throughput() > 0.15, "{}", r.totals.throughput());
    }

    #[test]
    fn listens_every_slot_of_life() {
        let r = run_grouped(&SimConfig::new(2), Batch::new(100), NoJam, |_| {
            CjpMwu::new(CjpConfig::default())
        });
        let ps = r.per_packet.as_ref().unwrap();
        for p in ps {
            let lifetime = p.departed.unwrap() - p.injected + 1;
            assert_eq!(p.accesses(), lifetime, "accesses == lifetime");
        }
    }

    #[test]
    fn grouped_and_dense_agree_statistically() {
        let mean = |f: &dyn Fn(u64) -> u64| (0..6).map(f).sum::<u64>() as f64 / 6.0;
        let dense = mean(&|s| {
            run_dense(
                &SimConfig::new(s),
                Batch::new(100),
                NoJam,
                |_| CjpMwu::new(CjpConfig::default()),
                &mut NoHooks,
            )
            .totals
            .active_slots
        });
        let grouped = mean(&|s| {
            run_grouped(&SimConfig::new(s + 77), Batch::new(100), NoJam, |_| {
                CjpMwu::new(CjpConfig::default())
            })
            .totals
            .active_slots
        });
        assert!(
            (dense - grouped).abs() / dense < 0.3,
            "dense {dense} grouped {grouped}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn config_validation() {
        CjpConfig::new(1.0, 0.1, 0.2);
    }
}
