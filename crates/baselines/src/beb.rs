//! Binary exponential backoff — the classical baseline (paper §1).
//!
//! Two standard formulations:
//!
//! * [`WindowedBeb`] — after the `i`-th collision, the packet picks a
//!   uniformly random slot in a contention window of `w₀·2^min(i, cap)`
//!   slots (Ethernet-style \[Metcalfe–Boggs 1976\]).
//! * [`ProbBeb`] — the memoryless variant: transmit each slot with
//!   probability `p₀·2^{-i}`.
//!
//! Both are **oblivious**: they never listen, learning only from their own
//! collisions. The paper quotes the consequence (\[23\]): throughput on batch
//! inputs is `O(1/ln N)` — the curve experiment T2 reproduces — and a
//! reactive adversary can starve them with `Θ(ln T)` targeted jams (T9).

use lowsense_sim::dist::{geometric4, geometric_fast};
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// Ethernet-style windowed binary exponential backoff.
///
/// # Examples
///
/// ```
/// use lowsense_baselines::WindowedBeb;
/// use lowsense_sim::prelude::*;
///
/// let result = run_sparse(
///     &SimConfig::new(1),
///     Batch::new(64),
///     NoJam,
///     |rng| WindowedBeb::new(2, 20, rng),
///     &mut NoHooks,
/// );
/// assert!(result.drained());
/// ```
#[derive(Debug, Clone)]
pub struct WindowedBeb {
    w0: u64,
    cap_exponent: u32,
    attempt: u32,
    /// Slots until the next transmission, counted from the next candidate
    /// slot (injection slot, or the slot after the last access).
    countdown: u64,
    rng: SimRng,
}

impl WindowedBeb {
    /// Creates a packet with initial window `w0`, doubling on each collision
    /// up to `w0·2^cap_exponent`.
    ///
    /// The factory RNG seeds a private per-packet stream so collision-time
    /// resampling stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `w0 == 0`.
    pub fn new(w0: u64, cap_exponent: u32, rng: &mut SimRng) -> Self {
        assert!(w0 > 0, "initial window must be positive");
        let mut own = rng.fork();
        let countdown = own.range_u64(w0);
        WindowedBeb {
            w0,
            cap_exponent,
            attempt: 0,
            countdown,
            rng: own,
        }
    }

    /// Current contention-window length `w₀·2^min(i, cap)`.
    pub fn window(&self) -> u64 {
        self.w0 << self.attempt.min(self.cap_exponent).min(63)
    }

    /// Collisions suffered so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn resample(&mut self) {
        let w = self.window();
        self.countdown = self.rng.range_u64(w);
    }
}

impl Protocol for WindowedBeb {
    fn intent(&mut self, _rng: &mut SimRng) -> Intent {
        if self.countdown == 0 {
            Intent::Send
        } else {
            self.countdown -= 1;
            Intent::Sleep
        }
    }

    fn observe(&mut self, obs: &Observation) {
        debug_assert!(obs.sent, "oblivious protocol only observes own sends");
        if obs.succeeded {
            return; // departing
        }
        // Collision (or jam — indistinguishable): back off and repick.
        self.attempt += 1;
        self.resample();
    }

    fn send_probability(&self) -> f64 {
        // Nominal per-slot rate: one transmission per window.
        1.0 / self.window() as f64
    }

    fn next_wake(&mut self, _rng: &mut SimRng) -> Option<u64> {
        // `countdown` was freshly sampled at construction or in `observe`.
        Some(self.countdown)
    }
}

impl SparseProtocol for WindowedBeb {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }

    // Countdowns are deterministic state (resampled from the private
    // per-packet stream inside `observe`), so the batched draw consumes no
    // shared randomness at all — four lanes read four cached counters.
    // BEB never listens (`send_on_access` is always true), so the sparse
    // engine's listener cohorts never reach this; it exists so the batch
    // contract holds if an engine ever batches sender redraws, and the
    // `next_wake4_matches_scalar` test pins it against the scalar path.
    fn next_wake4(states: &mut [&mut Self; 4], _rng: &mut SimRng) -> [Option<u64>; 4] {
        [
            Some(states[0].countdown),
            Some(states[1].countdown),
            Some(states[2].countdown),
            Some(states[3].countdown),
        ]
    }
}

/// Memoryless probability-halving exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct ProbBeb {
    p0: f64,
    attempt: u32,
}

impl ProbBeb {
    /// Creates a packet transmitting with probability `p0` per slot,
    /// halving after every collision.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p0 <= 1`.
    pub fn new(p0: f64) -> Self {
        assert!(p0 > 0.0 && p0 <= 1.0, "p0 {p0} out of (0,1]");
        ProbBeb { p0, attempt: 0 }
    }

    /// Current per-slot transmission probability.
    pub fn probability(&self) -> f64 {
        self.p0 * (-(self.attempt as f64)).exp2()
    }
}

impl Protocol for ProbBeb {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if rng.bernoulli(self.probability()) {
            Intent::Send
        } else {
            Intent::Sleep
        }
    }

    fn observe(&mut self, obs: &Observation) {
        debug_assert!(obs.sent, "oblivious protocol only observes own sends");
        if !obs.succeeded {
            self.attempt = self.attempt.saturating_add(1);
        }
    }

    fn send_probability(&self) -> f64 {
        self.probability()
    }

    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // `geometric_fast` (not `geometric`) so the scalar path is
        // bit-identical per lane to the 4-wide `next_wake4` below.
        Some(geometric_fast(rng, self.probability()))
    }
}

impl SparseProtocol for ProbBeb {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }

    // Four geometric redraws at per-lane (attempt-dependent) probabilities,
    // with both logarithms evaluated 4-wide; `geometric4` draws uniforms in
    // ascending lane order so the RNG stream matches four scalar
    // `next_wake` calls exactly. Like `WindowedBeb`, ProbBeb never listens,
    // so engine listener cohorts never reach this; the
    // `next_wake4_matches_scalar` test pins the scalar/batch bit-identity.
    fn next_wake4(states: &mut [&mut Self; 4], rng: &mut SimRng) -> [Option<u64>; 4] {
        let p = [
            states[0].probability(),
            states[1].probability(),
            states[2].probability(),
            states[3].probability(),
        ];
        geometric4(rng, p).map(Some)
    }
}

/// Feedback value unused by oblivious protocols but kept for completeness.
#[allow(dead_code)]
fn _assert_feedback_unused(_: Feedback) {}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::SimConfig;
    use lowsense_sim::engine::{run_dense, run_sparse};
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    fn collision(slot: u64) -> Observation {
        Observation {
            slot,
            feedback: Feedback::Noisy,
            sent: true,
            succeeded: false,
        }
    }

    #[test]
    fn window_doubles_and_caps() {
        let mut rng = SimRng::new(1);
        let mut b = WindowedBeb::new(4, 3, &mut rng);
        assert_eq!(b.window(), 4);
        for _ in 0..5 {
            b.observe(&collision(0));
        }
        // Capped at 4·2³ = 32 despite 5 collisions.
        assert_eq!(b.window(), 32);
        assert_eq!(b.attempts(), 5);
    }

    #[test]
    fn countdown_schedule_sends_within_first_window() {
        // The first transmission lands inside the first window of 8 slots;
        // engines always deliver an observation after a send, which either
        // departs the packet or resamples the countdown.
        let mut rng = SimRng::new(2);
        let mut b = WindowedBeb::new(8, 10, &mut rng);
        let mut first_send = None;
        for slot in 0..8 {
            if matches!(b.intent(&mut rng), Intent::Send) {
                first_send = Some(slot);
                b.observe(&collision(slot));
                break;
            }
        }
        assert!(first_send.is_some(), "no send in the first window");
        // After the collision, the window doubled and a new slot was picked.
        assert_eq!(b.window(), 16);
    }

    #[test]
    fn windowed_beb_drains_batch() {
        let r = run_sparse(
            &SimConfig::new(3),
            Batch::new(100),
            NoJam,
            |rng| WindowedBeb::new(2, 16, rng),
            &mut NoHooks,
        );
        assert!(r.drained());
        assert_eq!(r.totals.listens, 0, "BEB never listens");
    }

    #[test]
    fn windowed_beb_dense_sparse_agree() {
        let mean = |f: &dyn Fn(u64) -> u64| (0..8).map(f).sum::<u64>() as f64 / 8.0;
        let dense = mean(&|s| {
            run_dense(
                &SimConfig::new(s),
                Batch::new(50),
                NoJam,
                |rng| WindowedBeb::new(2, 16, rng),
                &mut NoHooks,
            )
            .totals
            .active_slots
        });
        let sparse = mean(&|s| {
            run_sparse(
                &SimConfig::new(s + 50),
                Batch::new(50),
                NoJam,
                |rng| WindowedBeb::new(2, 16, rng),
                &mut NoHooks,
            )
            .totals
            .active_slots
        });
        assert!(
            (dense - sparse).abs() / dense < 0.3,
            "dense {dense} sparse {sparse}"
        );
    }

    #[test]
    fn prob_beb_halves() {
        let mut b = ProbBeb::new(0.5);
        assert_eq!(b.probability(), 0.5);
        b.observe(&collision(0));
        assert_eq!(b.probability(), 0.25);
        b.observe(&collision(1));
        assert_eq!(b.probability(), 0.125);
    }

    #[test]
    fn prob_beb_success_does_not_halve() {
        let mut b = ProbBeb::new(0.5);
        b.observe(&Observation {
            slot: 0,
            feedback: Feedback::Success,
            sent: true,
            succeeded: true,
        });
        assert_eq!(b.probability(), 0.5);
    }

    #[test]
    fn prob_beb_drains_batch() {
        let r = run_sparse(
            &SimConfig::new(4),
            Batch::new(100),
            NoJam,
            |_| ProbBeb::new(0.5),
            &mut NoHooks,
        );
        assert!(r.drained());
    }

    #[test]
    fn next_wake4_matches_scalar() {
        // Batched redraws must be bit-identical to four scalar calls, with
        // the RNG streams in lockstep afterwards — for both BEB flavours.
        let mut seed_rng = SimRng::new(40);
        let mut windowed: Vec<WindowedBeb> = (0..4)
            .map(|_| WindowedBeb::new(4, 16, &mut seed_rng))
            .collect();
        let mut prob: Vec<ProbBeb> = (0..4).map(|i| ProbBeb::new(0.5 / (i + 1) as f64)).collect();
        let mut rng_s = SimRng::new(41);
        let mut rng_b = SimRng::new(41);
        for round in 0..2_000 {
            let scalar_w: Vec<_> = windowed
                .iter_mut()
                .map(|p| p.next_wake(&mut rng_s))
                .collect();
            let scalar_p: Vec<_> = prob.iter_mut().map(|p| p.next_wake(&mut rng_s)).collect();
            let [a, b, c, d] = &mut windowed[..] else {
                unreachable!()
            };
            let batch_w = WindowedBeb::next_wake4(&mut [a, b, c, d], &mut rng_b);
            let [a, b, c, d] = &mut prob[..] else {
                unreachable!()
            };
            let batch_p = ProbBeb::next_wake4(&mut [a, b, c, d], &mut rng_b);
            assert_eq!(scalar_w, batch_w.to_vec(), "round {round}");
            assert_eq!(scalar_p, batch_p.to_vec(), "round {round}");
            // Occasionally mutate state so the lanes diverge.
            if round % 7 == 0 {
                windowed[round % 4].observe(&collision(round as u64));
                prob[round % 4].observe(&collision(round as u64));
            }
        }
        assert_eq!(rng_s.next_u64(), rng_b.next_u64(), "stream lockstep");
    }

    #[test]
    fn beb_batch_throughput_degrades_with_n() {
        // The O(1/ln N) ceiling: throughput at N=4096 is measurably below
        // throughput at N=64.
        let tp = |n: u64, seed: u64| {
            run_sparse(
                &SimConfig::new(seed),
                Batch::new(n),
                NoJam,
                |rng| WindowedBeb::new(2, 30, rng),
                &mut NoHooks,
            )
            .totals
            .throughput()
        };
        let small: f64 = (0..4).map(|s| tp(64, s)).sum::<f64>() / 4.0;
        let large: f64 = (0..4).map(|s| tp(4096, s)).sum::<f64>() / 4.0;
        assert!(
            large < small,
            "expected degradation: small-N {small}, large-N {large}"
        );
    }
}
