//! # lowsense-baselines — comparison protocols
//!
//! The protocols `LOW-SENSING BACKOFF` is measured against, plus parametric
//! ablation variants of the algorithm itself:
//!
//! | protocol | feedback loop | role |
//! |----------|---------------|------|
//! | [`WindowedBeb`], [`ProbBeb`] | none (oblivious) | the classical baseline; `O(1/ln N)` batch throughput (§1, \[23\]) |
//! | [`PolynomialBackoff`] | none | second oblivious baseline |
//! | [`SlottedAloha`] | none (genie `p = 1/N`) | the `1/e` reference line |
//! | [`CjpMwu`] | **every slot** | short-feedback-loop MWU (\[36\]); constant throughput, `Θ(lifetime)` listens |
//! | [`LowSensingVariant`] | tunable | ablations A2–A4 |
//! | [`NoCdBackoff`] | successes + own failures only | robust on the no-collision-detection channel (Jiang–Zheng, arXiv:2111.06650) |
//!
//! All implement the `lowsense-sim` protocol traits and run under the same
//! engines, adversaries, and metrics as the core algorithm.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aloha;
pub mod beb;
pub mod cjp;
pub mod nocd;
pub mod polynomial;
pub mod variant;

pub use aloha::SlottedAloha;
pub use beb::{ProbBeb, WindowedBeb};
pub use cjp::{CjpConfig, CjpMwu};
pub use nocd::NoCdBackoff;
pub use polynomial::PolynomialBackoff;
pub use variant::{Coupling, LowSensingVariant, UpdateRule, VariantConfig};
