//! # lowsense-baselines — comparison protocols
//!
//! The protocols `LOW-SENSING BACKOFF` is measured against, plus parametric
//! ablation variants of the algorithm itself:
//!
//! | protocol | feedback loop | role |
//! |----------|---------------|------|
//! | [`WindowedBeb`], [`ProbBeb`] | none (oblivious) | the classical baseline; `O(1/ln N)` batch throughput (§1, \[23\]) |
//! | [`PolynomialBackoff`] | none | second oblivious baseline |
//! | [`SlottedAloha`] | none (genie `p = 1/N`) | the `1/e` reference line |
//! | [`CjpMwu`] | **every slot** | short-feedback-loop MWU (\[36\]); constant throughput, `Θ(lifetime)` listens |
//! | [`LowSensingVariant`] | tunable | ablations A2–A4 |
//!
//! All implement the `lowsense-sim` protocol traits and run under the same
//! engines, adversaries, and metrics as the core algorithm.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aloha;
pub mod beb;
pub mod cjp;
pub mod polynomial;
pub mod variant;

pub use aloha::SlottedAloha;
pub use beb::{ProbBeb, WindowedBeb};
pub use cjp::{CjpConfig, CjpMwu};
pub use polynomial::PolynomialBackoff;
pub use variant::{Coupling, LowSensingVariant, UpdateRule, VariantConfig};
