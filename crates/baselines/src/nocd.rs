//! Backoff without collision detection — in the spirit of Jiang–Zheng
//! (arXiv:2111.06650).
//!
//! On the no-collision-detection channel a listener cannot tell a
//! collision from silence, so the classical "noise means contention"
//! update rule has nothing to bite on. The robust alternative keys every
//! update off the only trustworthy signals the channel still carries:
//!
//! * a station's **own failed transmission** (implicit acknowledgement
//!   failure) is evidence of contention — grow the window;
//! * an **overheard success** is evidence the channel is being won (and a
//!   contender just left) — shrink the window;
//! * everything else (silence, which may hide a collision; noise under a
//!   richer channel) is uninformative — change nothing.
//!
//! [`NoCdBackoff`] implements that rule over a multiplicative window
//! ladder: stations access the channel with probability `2/w` and, on each
//! access, flip a fair coin between transmitting and listening, so the
//! success signal actually reaches its neighbours. The protocol never
//! reads anything a no-CD channel cannot provide, which makes it a fair
//! baseline under *every* [`FeedbackModel`]: on the richer ternary channel
//! it simply ignores the extra information.
//!
//! [`FeedbackModel`]: lowsense_sim::feedback::FeedbackModel

use lowsense_sim::dist::geometric;
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// Multiplicative-window backoff driven only by no-CD-observable signals.
///
/// # Examples
///
/// ```
/// use lowsense_baselines::NoCdBackoff;
/// use lowsense_sim::feedback::NoCollisionDetection;
/// use lowsense_sim::prelude::*;
///
/// let result = run_sparse_model(
///     &SimConfig::new(1).limits(Limits {
///         max_slot: 2_000_000,
///         max_steps: u64::MAX,
///     }),
///     Batch::new(48),
///     NoJam,
///     NoCollisionDetection,
///     |_| NoCdBackoff::new(4.0, 4096.0, 2.0),
///     &mut NoHooks,
/// );
/// assert!(result.drained());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NoCdBackoff {
    w: f64,
    w_min: f64,
    w_max: f64,
    growth: f64,
}

impl NoCdBackoff {
    /// Creates a station with initial (and minimum) window `w0`, growing by
    /// `growth` on each failed transmission up to `w_max` and shrinking by
    /// the same factor on each overheard success down to `w0`.
    ///
    /// # Panics
    ///
    /// Panics unless `w0 >= 2`, `w_max >= w0`, and `growth > 1` (all
    /// finite): `w >= 2` keeps the access probability `2/w` a probability.
    pub fn new(w0: f64, w_max: f64, growth: f64) -> Self {
        assert!(
            w0.is_finite() && w0 >= 2.0,
            "initial window {w0} must be finite and >= 2"
        );
        assert!(
            w_max.is_finite() && w_max >= w0,
            "w_max {w_max} must be finite and >= w0 {w0}"
        );
        assert!(
            growth.is_finite() && growth > 1.0,
            "growth {growth} must be finite and > 1"
        );
        NoCdBackoff {
            w: w0,
            w_min: w0,
            w_max,
            growth,
        }
    }

    /// Current window length `w`.
    pub fn window(&self) -> f64 {
        self.w
    }

    /// Probability of touching the channel (send or listen) in a slot.
    fn access_probability(&self) -> f64 {
        (2.0 / self.w).min(1.0)
    }
}

impl Protocol for NoCdBackoff {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if !rng.bernoulli(self.access_probability()) {
            return Intent::Sleep;
        }
        // Fair coin between transmitting and eavesdropping: listening half
        // the time is what carries the success signal to the window rule.
        if rng.bernoulli(0.5) {
            Intent::Send
        } else {
            Intent::Listen
        }
    }

    fn observe(&mut self, obs: &Observation) {
        if obs.sent {
            if obs.succeeded {
                return; // departing
            }
            // Own transmission failed — the one contention signal a no-CD
            // sender always gets.
            self.w = (self.w * self.growth).min(self.w_max);
        } else {
            match obs.feedback {
                // Someone won the channel (and left): re-tighten.
                Feedback::Success => self.w = (self.w / self.growth).max(self.w_min),
                // Silence may hide a collision on this channel; noise (only
                // visible under richer models) is deliberately ignored too.
                Feedback::Empty | Feedback::Noisy => {}
            }
        }
    }

    fn send_probability(&self) -> f64 {
        0.5 * self.access_probability()
    }

    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        Some(geometric(rng, self.access_probability()))
    }
}

impl SparseProtocol for NoCdBackoff {
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::{Limits, SimConfig};
    use lowsense_sim::engine::{run_sparse, run_sparse_model};
    use lowsense_sim::feedback::NoCollisionDetection;
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    fn own_failure(slot: u64) -> Observation {
        Observation {
            slot,
            feedback: Feedback::Noisy,
            sent: true,
            succeeded: false,
        }
    }

    fn heard(slot: u64, feedback: Feedback) -> Observation {
        Observation {
            slot,
            feedback,
            sent: false,
            succeeded: false,
        }
    }

    #[test]
    fn own_failures_grow_the_window_to_the_cap() {
        let mut p = NoCdBackoff::new(4.0, 32.0, 2.0);
        assert_eq!(p.window(), 4.0);
        for s in 0..5 {
            p.observe(&own_failure(s));
        }
        // 4 → 8 → 16 → 32, then capped.
        assert_eq!(p.window(), 32.0);
    }

    #[test]
    fn overheard_successes_shrink_the_window_to_the_floor() {
        let mut p = NoCdBackoff::new(4.0, 64.0, 2.0);
        for s in 0..3 {
            p.observe(&own_failure(s));
        }
        assert_eq!(p.window(), 32.0);
        for s in 0..5 {
            p.observe(&heard(s, Feedback::Success));
        }
        // 32 → 16 → 8 → 4, then floored at w0.
        assert_eq!(p.window(), 4.0);
    }

    #[test]
    fn silence_and_noise_are_ignored_as_a_listener() {
        let mut p = NoCdBackoff::new(8.0, 64.0, 2.0);
        p.observe(&heard(0, Feedback::Empty));
        p.observe(&heard(1, Feedback::Noisy));
        assert_eq!(p.window(), 8.0);
    }

    #[test]
    fn own_success_leaves_state_alone() {
        let mut p = NoCdBackoff::new(4.0, 64.0, 2.0);
        p.observe(&Observation {
            slot: 0,
            feedback: Feedback::Success,
            sent: true,
            succeeded: true,
        });
        assert_eq!(p.window(), 4.0);
    }

    #[test]
    fn drains_a_batch_on_the_no_cd_channel() {
        let cfg = SimConfig::new(7).limits(Limits {
            max_slot: 2_000_000,
            max_steps: u64::MAX,
        });
        let r = run_sparse_model(
            &cfg,
            Batch::new(64),
            NoJam,
            NoCollisionDetection,
            |_| NoCdBackoff::new(4.0, 4096.0, 2.0),
            &mut NoHooks,
        );
        assert!(r.drained(), "undrained: {:?}", r.totals);
        assert!(r.totals.listens > 0, "the listener half never fired");
    }

    #[test]
    fn also_runs_on_the_ternary_channel() {
        // The protocol reads nothing ternary-specific, so the default
        // channel must work too (it just carries unused information).
        let cfg = SimConfig::new(8).limits(Limits {
            max_slot: 2_000_000,
            max_steps: u64::MAX,
        });
        let r = run_sparse(
            &cfg,
            Batch::new(64),
            NoJam,
            |_| NoCdBackoff::new(4.0, 4096.0, 2.0),
            &mut NoHooks,
        );
        assert!(r.drained(), "undrained: {:?}", r.totals);
    }
}
