//! Parametric `LOW-SENSING BACKOFF` variants for the ablation experiments.
//!
//! Three design choices of the paper's algorithm are made tunable:
//!
//! * **listening exponent** `k` in `p_listen = c·ln^k(w)/w` (A2; the paper
//!   uses `k = 3` so that a listen moves `H(t)` by `Θ(1/(c·ln³ w))` and the
//!   conditional send probability `1/(c·ln^k w)` stays a probability);
//! * **update rule** — the paper's gentle `1 + 1/(c·ln w)` factor versus a
//!   blunt constant factor (A3; doubling overshoots with rare listening);
//! * **coupling** — the paper sends only when already listening, keeping
//!   every access "useful"; the independent variant flips separate coins
//!   (A4).
//!
//! The unconditional send probability is `1/w` in every configuration, so
//! ablations isolate the *feedback loop*, not the offered load.

use lowsense_sim::dist::{fast_ln, geometric4_inv, geometric_inv};
use lowsense_sim::feedback::{Feedback, Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// How the window reacts to feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateRule {
    /// The paper's `w ← w·(1 ± ...)` with factor `1 + 1/(c·ln w)`.
    Gentle,
    /// Constant multiplicative factor (e.g. `2.0` = doubling/halving).
    Factor(f64),
}

/// Whether the send coin is nested inside the listen coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// Paper: listen w.p. `p_l`; send w.p. `p_s/p_l` given listening.
    Coupled,
    /// Ablation: independent coins for listening (`p_l`) and sending
    /// (`1/w`); a send without a listen still observes the outcome.
    Independent,
}

/// Configuration of a [`LowSensingVariant`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantConfig {
    /// The multiplier `c`.
    pub c: f64,
    /// Minimum window.
    pub w_min: f64,
    /// Exponent `k` of `ln^k(w)` in the listen probability.
    pub listen_exponent: i32,
    /// Window update rule.
    pub update: UpdateRule,
    /// Send/listen coin coupling.
    pub coupling: Coupling,
}

impl VariantConfig {
    /// The paper's algorithm: `k = 3`, gentle updates, coupled coins.
    pub fn paper(c: f64, w_min: f64) -> Self {
        VariantConfig {
            c,
            w_min,
            listen_exponent: 3,
            update: UpdateRule::Gentle,
            coupling: Coupling::Coupled,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `c`, `w_min < 2`, negative exponent, or a
    /// `Factor` rule with factor ≤ 1.
    pub fn validate(&self) {
        assert!(self.c > 0.0 && self.c.is_finite(), "c must be positive");
        assert!(self.w_min >= 2.0, "w_min must be at least 2");
        assert!(self.listen_exponent >= 0, "listen exponent must be >= 0");
        if let UpdateRule::Factor(f) = self.update {
            assert!(f > 1.0, "constant update factor must exceed 1");
        }
    }
}

/// A `LOW-SENSING BACKOFF` variant with tunable design choices.
// Everything derived from the window is cached and refreshed only when the
// window changes — the same treatment the core `LowSensing` got (PR 5's
// reciprocal-form caches, now ladder rows): the old implementation paid a
// `ln` + `powi` recompute of the update factor on **every** observation and
// a fresh `ln(1-p_access)` plus a divide on **every** wake draw. Window
// updates multiply against the cached factor / reciprocal pair, and the
// wake draws are one `fast_ln(U)` multiply via the cached
// `1/ln(1-p_access)`.
#[derive(Debug, Clone, Copy)]
pub struct LowSensingVariant {
    cfg: VariantConfig,
    w: f64,
    p_listen: f64,
    // Cached per-window derived values, refreshed by `recompute`:
    p_send: f64,
    p_access: f64,
    // `1/ln(1 - p_access)` for the wake draws; 0 in the degenerate cases
    // the draw guards short-circuit (`p_access` outside `(0, 1)`).
    inv_ln_q_access: f64,
    // Conditional coin biases (`p_send/p_listen`, `p_send/p_access`), so
    // `intent` and `send_on_access` are divide-free per call.
    p_send_given_listen: f64,
    p_send_given_access: f64,
    // Update factor of the *current* window and its reciprocal: back-off
    // multiplies by `factor`, back-on by `inv_factor` (floored at `w_min`).
    factor: f64,
    inv_factor: f64,
}

impl LowSensingVariant {
    /// A freshly injected packet (window `w_min`).
    pub fn new(cfg: VariantConfig) -> Self {
        cfg.validate();
        let mut v = LowSensingVariant {
            cfg,
            w: cfg.w_min,
            p_listen: 0.0,
            p_send: 0.0,
            p_access: 0.0,
            inv_ln_q_access: 0.0,
            p_send_given_listen: 0.0,
            p_send_given_access: 0.0,
            factor: 0.0,
            inv_factor: 0.0,
        };
        v.recompute();
        v
    }

    /// Current window.
    pub fn window(&self) -> f64 {
        self.w
    }

    /// The configuration.
    pub fn config(&self) -> &VariantConfig {
        &self.cfg
    }

    // Refreshes every window-derived cache; the only place the variant
    // evaluates logarithms or divides.
    fn recompute(&mut self) {
        self.p_listen =
            (self.cfg.c * self.w.ln().powi(self.cfg.listen_exponent) / self.w).clamp(0.0, 1.0);
        self.p_send = 1.0 / self.w;
        self.factor = match self.cfg.update {
            UpdateRule::Gentle => 1.0 + 1.0 / (self.cfg.c * self.w.ln()),
            UpdateRule::Factor(f) => f,
        };
        self.inv_factor = 1.0 / self.factor;
        self.p_access = match self.cfg.coupling {
            Coupling::Coupled => self.p_listen.max(self.p_send),
            Coupling::Independent => 1.0 - (1.0 - self.p_listen) * (1.0 - self.p_send),
        };
        self.inv_ln_q_access = if self.p_access <= 0.0 || self.p_access >= 1.0 {
            // Degenerate: the wake draws short-circuit before using this.
            0.0
        } else if self.p_access < 1e-8 {
            // `1 - p` rounds to 1 here; `ln_1p` keeps full precision.
            1.0 / (-self.p_access).ln_1p()
        } else {
            1.0 / fast_ln(1.0 - self.p_access)
        };
        self.p_send_given_listen = self.p_send / self.p_listen;
        self.p_send_given_access = self.p_send / self.p_access;
    }

    fn apply(&mut self, fb: Feedback) {
        // Divide-free window update against the cached factor / reciprocal
        // pair; a back-on clamped at the floor skips the recompute (the
        // window and every cache are unchanged).
        let new_w = match fb {
            Feedback::Empty => (self.w * self.inv_factor).max(self.cfg.w_min),
            Feedback::Noisy => self.w * self.factor,
            Feedback::Success => return,
        };
        if new_w == self.w {
            return;
        }
        self.w = new_w;
        self.recompute();
    }

    /// Per-slot probability of touching the channel at all.
    pub fn access_probability(&self) -> f64 {
        self.p_access
    }
}

impl Protocol for LowSensingVariant {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        match self.cfg.coupling {
            Coupling::Coupled => {
                if !rng.bernoulli(self.p_listen) {
                    return Intent::Sleep;
                }
                // Conditional send probability p_send/p_listen keeps the
                // unconditional rate at exactly 1/w.
                if rng.bernoulli(self.p_send_given_listen) {
                    Intent::Send
                } else {
                    Intent::Listen
                }
            }
            Coupling::Independent => {
                let send = rng.bernoulli(self.p_send);
                let listen = rng.bernoulli(self.p_listen);
                if send {
                    Intent::Send
                } else if listen {
                    Intent::Listen
                } else {
                    Intent::Sleep
                }
            }
        }
    }

    fn observe(&mut self, obs: &Observation) {
        self.apply(obs.feedback);
    }

    fn send_probability(&self) -> f64 {
        self.p_send
    }

    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // One `fast_ln(U)` multiply against the cached reciprocal —
        // bit-identical per lane to the 4-wide `next_wake4` below (both
        // route through the `geometric_inv` family).
        Some(geometric_inv(rng, self.p_access, self.inv_ln_q_access))
    }
}

impl SparseProtocol for LowSensingVariant {
    fn send_on_access(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p_send_given_access)
    }

    // Variants listen without sending (unlike the oblivious baselines), so
    // this override runs on the sparse engine's real listener-cohort path:
    // four geometric redraws at per-lane cached access probabilities,
    // uniforms drawn in ascending lane order, the `ln U`s 4-wide.
    fn next_wake4(states: &mut [&mut Self; 4], rng: &mut SimRng) -> [Option<u64>; 4] {
        let p = [
            states[0].p_access,
            states[1].p_access,
            states[2].p_access,
            states[3].p_access,
        ];
        let inv = [
            states[0].inv_ln_q_access,
            states[1].inv_ln_q_access,
            states[2].inv_ln_q_access,
            states[3].inv_ln_q_access,
        ];
        geometric4_inv(rng, p, inv).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::SimConfig;
    use lowsense_sim::engine::run_sparse;
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    fn obs(fb: Feedback) -> Observation {
        Observation {
            slot: 0,
            feedback: fb,
            sent: false,
            succeeded: false,
        }
    }

    #[test]
    fn paper_config_matches_core_probabilities() {
        let v = LowSensingVariant::new(VariantConfig::paper(0.5, 4.0));
        let core = lowsense::LowSensing::new(lowsense::Params::new(0.5, 4.0).unwrap());
        assert!((v.access_probability() - core.access_probability()).abs() < 1e-12);
        assert!((v.send_probability() - core.send_probability()).abs() < 1e-12);
    }

    #[test]
    fn factor_rule_doubles_and_halves() {
        let cfg = VariantConfig {
            update: UpdateRule::Factor(2.0),
            ..VariantConfig::paper(0.5, 4.0)
        };
        let mut v = LowSensingVariant::new(cfg);
        v.observe(&obs(Feedback::Noisy));
        assert_eq!(v.window(), 8.0);
        v.observe(&obs(Feedback::Noisy));
        assert_eq!(v.window(), 16.0);
        v.observe(&obs(Feedback::Empty));
        assert_eq!(v.window(), 8.0);
    }

    #[test]
    fn exponent_zero_listens_rarely() {
        let cfg = VariantConfig {
            listen_exponent: 0,
            c: 1.0,
            ..VariantConfig::paper(1.0, 4.0)
        };
        let v = LowSensingVariant::new(cfg);
        // p_listen = c/w = 0.25 at w=4.
        assert!((v.access_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn send_rate_is_one_over_w_in_both_couplings() {
        for coupling in [Coupling::Coupled, Coupling::Independent] {
            let cfg = VariantConfig {
                coupling,
                ..VariantConfig::paper(0.5, 4.0)
            };
            let mut v = LowSensingVariant::new(cfg);
            // Move the window up a bit first.
            for _ in 0..10 {
                v.observe(&obs(Feedback::Noisy));
            }
            let mut rng = SimRng::new(1);
            let n = 300_000;
            let sends = (0..n)
                .filter(|_| matches!(v.intent(&mut rng), Intent::Send))
                .count();
            let rate = sends as f64 / n as f64;
            let expect = 1.0 / v.window();
            assert!(
                (rate - expect).abs() < 0.2 * expect + 0.001,
                "{coupling:?}: rate {rate} expect {expect}"
            );
        }
    }

    #[test]
    fn all_variants_drain_a_batch() {
        let mut configs = vec![VariantConfig::paper(0.5, 4.0)];
        configs.push(VariantConfig {
            listen_exponent: 1,
            ..configs[0]
        });
        configs.push(VariantConfig {
            update: UpdateRule::Factor(2.0),
            ..configs[0]
        });
        configs.push(VariantConfig {
            coupling: Coupling::Independent,
            ..configs[0]
        });
        for cfg in configs {
            let r = run_sparse(
                &SimConfig::new(9),
                Batch::new(200),
                NoJam,
                |_| LowSensingVariant::new(cfg),
                &mut NoHooks,
            );
            assert!(r.drained(), "variant {cfg:?} failed to drain");
        }
    }

    #[test]
    fn caches_track_the_window_across_walks() {
        // After any feedback walk, every cached derived value must equal a
        // fresh recompute from the current window — the audit that the
        // caches cannot go stale (the old code recomputed `ln(1-p_access)`
        // per draw and the update factor per observe; now both are cached).
        let configs = [
            VariantConfig::paper(0.5, 4.0),
            VariantConfig {
                listen_exponent: 1,
                ..VariantConfig::paper(0.5, 4.0)
            },
            VariantConfig {
                update: UpdateRule::Factor(2.0),
                ..VariantConfig::paper(0.5, 4.0)
            },
            VariantConfig {
                coupling: Coupling::Independent,
                ..VariantConfig::paper(0.5, 4.0)
            },
        ];
        for cfg in configs {
            let mut v = LowSensingVariant::new(cfg);
            let mut seq = SimRng::new(21);
            for _ in 0..1_000 {
                let fb = match seq.range_u64(3) {
                    0 => Feedback::Empty,
                    1 => Feedback::Noisy,
                    _ => Feedback::Success,
                };
                v.observe(&obs(fb));
                let mut fresh = v;
                fresh.recompute();
                assert_eq!(v.p_listen.to_bits(), fresh.p_listen.to_bits());
                assert_eq!(v.p_send.to_bits(), fresh.p_send.to_bits());
                assert_eq!(v.p_access.to_bits(), fresh.p_access.to_bits());
                assert_eq!(
                    v.inv_ln_q_access.to_bits(),
                    fresh.inv_ln_q_access.to_bits(),
                    "cfg {cfg:?} w {}",
                    v.window()
                );
                assert_eq!(v.factor.to_bits(), fresh.factor.to_bits());
            }
        }
    }

    #[test]
    fn batched_wake_matches_scalar_bitwise() {
        // The cached-reciprocal draws must keep the scalar/4-wide pair in
        // lockstep (the sparse engine uses next_wake4 on cohorts while the
        // reference engine draws scalars).
        let mut lanes: Vec<LowSensingVariant> = (0..4)
            .map(|i| {
                let mut v = LowSensingVariant::new(VariantConfig::paper(0.5, 4.0));
                for _ in 0..i * 3 {
                    v.observe(&obs(Feedback::Noisy));
                }
                v
            })
            .collect();
        let mut scalar = lanes.clone();
        let mut rng_b = SimRng::new(55);
        let mut rng_s = SimRng::new(55);
        for _ in 0..2_000 {
            let [a, b, c, d] = &mut lanes[..] else {
                unreachable!()
            };
            let batch = LowSensingVariant::next_wake4(&mut [a, b, c, d], &mut rng_b);
            let mut seq = [None; 4];
            for (o, v) in seq.iter_mut().zip(scalar.iter_mut()) {
                *o = v.next_wake(&mut rng_s);
            }
            assert_eq!(batch, seq);
        }
        assert_eq!(rng_b.next_u64(), rng_s.next_u64(), "stream lockstep");
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn validates_factor() {
        LowSensingVariant::new(VariantConfig {
            update: UpdateRule::Factor(1.0),
            ..VariantConfig::paper(0.5, 4.0)
        });
    }
}
