//! Slotted ALOHA (Abramson 1970, Roberts 1972).
//!
//! Each packet transmits with a fixed probability every slot. With the
//! genie-given choice `p = 1/N` for a batch of `N`, the success rate per
//! slot approaches the famous `1/e ≈ 0.368` — the throughput gold standard
//! that experiment T2 plots as the (unachievable without knowing `N`)
//! upper reference line.

use lowsense_sim::dist::{geometric4, geometric_fast};
use lowsense_sim::feedback::{Intent, Observation};
use lowsense_sim::protocol::{Protocol, SparseProtocol};
use lowsense_sim::rng::SimRng;

/// Fixed-probability slotted ALOHA.
#[derive(Debug, Clone, Copy)]
pub struct SlottedAloha {
    p: f64,
}

impl SlottedAloha {
    /// Transmit with probability `p` each slot.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p {p} out of (0,1]");
        SlottedAloha { p }
    }

    /// The genie configuration for a batch of `n` packets: `p = 1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn genie(n: u64) -> Self {
        assert!(n > 0, "batch size must be positive");
        SlottedAloha { p: 1.0 / n as f64 }
    }
}

impl Protocol for SlottedAloha {
    fn intent(&mut self, rng: &mut SimRng) -> Intent {
        if rng.bernoulli(self.p) {
            Intent::Send
        } else {
            Intent::Sleep
        }
    }

    fn observe(&mut self, _obs: &Observation) {}

    fn send_probability(&self) -> f64 {
        self.p
    }

    fn next_wake(&mut self, rng: &mut SimRng) -> Option<u64> {
        // `geometric_fast` (not `geometric`) so the scalar path is
        // bit-identical per lane to the 4-wide `next_wake4` below.
        Some(geometric_fast(rng, self.p))
    }
}

impl SparseProtocol for SlottedAloha {
    fn send_on_access(&mut self, _rng: &mut SimRng) -> bool {
        true
    }

    // ALOHA never adapts, so all four lanes redraw at the same fixed `p`;
    // `geometric4` keeps the draw order identical to four scalar calls
    // while batching the logarithms. ALOHA also never listens, so engine
    // listener cohorts never reach this; the `next_wake4_matches_scalar`
    // test pins the scalar/batch bit-identity.
    fn next_wake4(states: &mut [&mut Self; 4], rng: &mut SimRng) -> [Option<u64>; 4] {
        let p = [states[0].p, states[1].p, states[2].p, states[3].p];
        geometric4(rng, p).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::arrivals::Batch;
    use lowsense_sim::config::SimConfig;
    use lowsense_sim::engine::run_sparse;
    use lowsense_sim::hooks::NoHooks;
    use lowsense_sim::jamming::NoJam;

    #[test]
    fn genie_probability() {
        assert_eq!(SlottedAloha::genie(100).send_probability(), 0.01);
    }

    #[test]
    fn genie_batch_peak_throughput_near_1_over_e() {
        // Early-phase success rate with N packets at p = 1/N is ≈ 1/e.
        // Measure over the first half of the drain (before the population
        // thins and the fixed p becomes stale).
        let n = 1000u64;
        let r = run_sparse(
            &SimConfig::new(1)
                .metrics(lowsense_sim::metrics::MetricsConfig::default().with_series(1.05)),
            Batch::new(n),
            NoJam,
            |_| SlottedAloha::genie(n),
            &mut NoHooks,
        );
        assert!(r.drained());
        // Find the sample closest to half the packets delivered.
        let half = r
            .series
            .iter()
            .find(|s| s.arrivals - s.backlog >= n / 2)
            .expect("series covers the run");
        let delivered = half.arrivals - half.backlog;
        let rate = delivered as f64 / half.active_slots as f64;
        assert!(
            (rate - 1.0 / std::f64::consts::E).abs() < 0.08,
            "early success rate {rate}"
        );
    }

    #[test]
    fn tail_is_slow_with_fixed_p() {
        // The last packet alone still sends w.p. 1/N: the overall makespan
        // is dominated by the tail, so overall throughput << 1/e.
        let n = 500u64;
        let r = run_sparse(
            &SimConfig::new(2),
            Batch::new(n),
            NoJam,
            |_| SlottedAloha::genie(n),
            &mut NoHooks,
        );
        assert!(r.drained());
        assert!(r.totals.throughput() < 0.3, "{}", r.totals.throughput());
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn rejects_bad_p() {
        SlottedAloha::new(0.0);
    }

    #[test]
    fn next_wake4_matches_scalar() {
        let mut scalar: Vec<SlottedAloha> = (1..=4)
            .map(|i| SlottedAloha::new(0.02 * i as f64))
            .collect();
        let mut batched = scalar.clone();
        let mut rng_s = SimRng::new(50);
        let mut rng_b = SimRng::new(50);
        for round in 0..5_000 {
            let s: Vec<_> = scalar.iter_mut().map(|p| p.next_wake(&mut rng_s)).collect();
            let [a, b, c, d] = &mut batched[..] else {
                unreachable!()
            };
            let bt = SlottedAloha::next_wake4(&mut [a, b, c, d], &mut rng_b);
            assert_eq!(s, bt.to_vec(), "round {round}");
        }
        assert_eq!(rng_s.next_u64(), rng_b.next_u64(), "stream lockstep");
    }
}
