//! Result tables: the textual "figures" the harness regenerates.

use std::fmt::Write as _;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// Unsigned integer.
    UInt(u64),
    /// Float rendered with the given number of decimals.
    Float(f64, usize),
}

impl Cell {
    /// Text shorthand.
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::UInt(v) => v.to_string(),
            Cell::Float(v, d) => format!("{v:.*}", d),
        }
    }

    fn csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains([',', '"', '\n']) {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            _ => self.render(),
        }
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::UInt(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

/// A result table with an id matching the experiment index in `DESIGN.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment id (`T1`, `F3`, `A2`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Footnotes: paper expectation, fitted exponents, caveats.
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (each the same length as `columns`).
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn columns<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// Renders RFC-4180-ish CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::csv).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T0", "demo").columns(["name", "n", "x"]);
        t.row(vec![
            Cell::text("alpha"),
            Cell::UInt(12),
            Cell::Float(1.5, 2),
        ]);
        t.row(vec![Cell::text("b"), Cell::UInt(3), Cell::Float(0.25, 2)]);
        t.note("a footnote");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== T0 — demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("* a footnote"));
        // Numbers are right-aligned under headers.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].ends_with('x'));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T0", "demo").columns(["a", "b"]);
        t.row(vec![Cell::text("x,y"), Cell::text("say \"hi\"")]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_decimals() {
        assert_eq!(Cell::Float(1.23456, 3).render(), "1.235");
        assert_eq!(Cell::Float(2.0, 0).render(), "2");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T0", "demo").columns(["a", "b"]);
        t.row(vec![Cell::UInt(1)]);
    }
}
