//! Parallel Monte Carlo execution.

use crossbeam::channel;

/// Experiment scale: `Quick` for benches and smoke runs, `Full` for the
/// `repro` binary's paper-scale sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps and seed counts (seconds per experiment).
    Quick,
    /// Paper-scale sweeps (tens of seconds to minutes per experiment).
    Full,
}

impl Scale {
    /// Number of independent seeds per configuration.
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 4,
            Scale::Full => 12,
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Maps `f` over `items` on all available cores, preserving order.
///
/// Each job is independent (Monte Carlo over seeds/sweep points); results
/// are collected through a crossbeam channel.
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let (job_tx, job_rx) = channel::unbounded::<(usize, I)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        job_tx.send(pair).expect("job channel open");
    }
    drop(job_tx);

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((idx, item)) = job_rx.recv() {
                    let r = f(item);
                    if res_tx.send((idx, r)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);
        while let Ok((idx, r)) = res_rx.recv() {
            out[idx] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Runs `f(seed)` for `seeds` deterministic seeds derived from `base`, in
/// parallel, preserving seed order.
pub fn monte_carlo<T, F>(base: u64, seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    // Spread seeds deterministically so sweep points don't share streams.
    let items: Vec<u64> = (0..seeds)
        .map(|i| base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
        .collect();
    parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let a = monte_carlo(7, 8, |s| s ^ 0xABCD);
        let b = monte_carlo(7, 8, |s| s ^ 0xABCD);
        assert_eq!(a, b);
        // Different bases give different seed sets.
        let c = monte_carlo(8, 8, |s| s ^ 0xABCD);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_accessors() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert!(Scale::Full.seeds() > Scale::Quick.seeds());
    }
}
