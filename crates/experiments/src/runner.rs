//! Parallel Monte Carlo execution.
//!
//! Since the campaign layer landed, the workspace has exactly **one**
//! parallel executor: [`lowsense_campaign::pool`]. `parallel_map` here is
//! a thin re-export-style wrapper over it, kept because the ad-hoc
//! experiments (sweep points × seeds outside a full campaign grid) still
//! want the bare map-over-jobs shape.

/// Experiment scale: `Quick` for benches and smoke runs, `Full` for the
/// `repro` binary's paper-scale sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps and seed counts (seconds per experiment).
    Quick,
    /// Paper-scale sweeps (tens of seconds to minutes per experiment).
    Full,
}

impl Scale {
    /// Number of independent seeds per configuration.
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 4,
            Scale::Full => 12,
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Maps `f` over `items` on all available cores, preserving order.
///
/// This is [`lowsense_campaign::shard_map`] — the campaign shard pool.
/// Its contract (inherited from the pool, with regression tests below):
///
/// * an empty input returns an empty output without spawning threads;
/// * fewer items than cores clamps the pool to one shard per item;
/// * a panicking job does **not** poison the batch — the other jobs still
///   run, and the lowest-indexed panic is re-raised with its original
///   payload.
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    lowsense_campaign::shard_map(items, f)
}

/// Runs `f(seed)` for `seeds` deterministic seeds derived from `base`, in
/// parallel, preserving seed order.
pub fn monte_carlo<T, F>(base: u64, seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    // Spread seeds deterministically so sweep points don't share streams.
    let items: Vec<u64> = (0..seeds)
        .map(|i| base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
        .collect();
    parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_fewer_items_than_threads() {
        // A 2-job batch must not deadlock or drop jobs on a many-core box
        // (regression: the pool clamps shards to the item count).
        let out = parallel_map(vec![7u64, 9], |x| x + 1);
        assert_eq!(out, vec![8, 10]);
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(vec![3u64], |x| x * x), vec![9]);
    }

    #[test]
    fn parallel_map_panic_does_not_poison_the_batch() {
        // Regression: a worker panic used to surface as the generic
        // "a scoped thread panicked" (payload lost) before any result was
        // readable. Now every other job completes and the original panic
        // payload is re-raised deterministically.
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..40u64).collect(), |x| {
                if x == 11 {
                    panic!("seed {x} exploded");
                }
                x
            })
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("original payload");
        assert_eq!(msg, "seed 11 exploded");
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let a = monte_carlo(7, 8, |s| s ^ 0xABCD);
        let b = monte_carlo(7, 8, |s| s ^ 0xABCD);
        assert_eq!(a, b);
        // Different bases give different seed sets.
        let c = monte_carlo(8, 8, |s| s ^ 0xABCD);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_accessors() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert!(Scale::Full.seeds() > Scale::Quick.seeds());
    }
}
