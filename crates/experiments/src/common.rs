//! Shared measurement helpers used across experiments.
//!
//! Experiments describe workloads as [`Scenario`] values (usually starting
//! from the canonical constructors in
//! [`lowsense_sim::scenario::scenarios`]) and run protocols over them with
//! the factories below.

use lowsense::{LowSensing, Params};
use lowsense_sim::arrivals::{ArrivalProcess, Batch};
use lowsense_sim::jamming::{Jammer, NoJam};
use lowsense_sim::metrics::RunResult;
use lowsense_sim::rng::SimRng;
use lowsense_sim::scenario::{scenarios, Scenario};
use lowsense_stats::{quantile, Summary};

pub use lowsense::lsb;

/// Factory for `LOW-SENSING BACKOFF` with explicit parameters.
pub fn lsb_with(params: Params) -> impl FnMut(&mut SimRng) -> LowSensing {
    move |_| LowSensing::new(params)
}

/// Totals-only seeded batch — the common sweep point for protocol
/// comparisons (T2, F5, …).
pub fn batch_totals(n: u64, seed: u64) -> Scenario<Batch, NoJam> {
    scenarios::batch_drain(n).seed(seed).totals_only()
}

/// Runs `LOW-SENSING BACKOFF` (default parameters) over `scenario` on the
/// sparse engine.
pub fn run_lsb<A, J>(scenario: &Scenario<A, J>) -> RunResult
where
    A: ArrivalProcess + Clone,
    J: Jammer + Clone,
{
    scenario.run_sparse(lsb())
}

/// Per-packet energy digest of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDigest {
    /// Mean accesses per delivered packet.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl EnergyDigest {
    /// Digests a run's per-packet access counts.
    ///
    /// Returns the zero digest when no packet was delivered or per-packet
    /// stats were disabled.
    pub fn of(result: &RunResult) -> Self {
        let counts = result.access_counts();
        if counts.is_empty() {
            return EnergyDigest {
                mean: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let (p50, _, p99, max) = lowsense_stats::tail_summary(&counts);
        EnergyDigest {
            mean: Summary::of_counts(&counts).mean,
            p50,
            p99,
            max,
        }
    }

    /// Pools several digests by averaging the means and taking the worst
    /// tails (conservative aggregation across seeds).
    pub fn pool(digests: &[EnergyDigest]) -> Self {
        assert!(!digests.is_empty(), "pooling empty digest set");
        EnergyDigest {
            mean: digests.iter().map(|d| d.mean).sum::<f64>() / digests.len() as f64,
            p50: quantile(&digests.iter().map(|d| d.p50).collect::<Vec<_>>(), 0.5),
            p99: digests.iter().map(|d| d.p99).fold(0.0, f64::max),
            max: digests.iter().map(|d| d.max).fold(0.0, f64::max),
        }
    }
}

/// Mean of an iterator of `f64` (0 for empty).
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Geometric sweep `base^lo ..= base^hi` as `u64`s.
pub fn pow2_sweep(lo: u32, hi: u32) -> Vec<u64> {
    (lo..=hi).map(|k| 1u64 << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowsense_sim::scenario::scenarios;

    #[test]
    fn run_lsb_drains_batch() {
        let r = run_lsb(&scenarios::batch_drain(64).seed(1));
        assert!(r.drained());
    }

    #[test]
    fn energy_digest_orders() {
        let r = run_lsb(&scenarios::batch_drain(256).seed(2));
        let d = EnergyDigest::of(&r);
        assert!(d.mean > 0.0);
        assert!(d.p50 <= d.p99 && d.p99 <= d.max);
    }

    #[test]
    fn pool_takes_worst_tails() {
        let a = EnergyDigest {
            mean: 10.0,
            p50: 9.0,
            p99: 20.0,
            max: 30.0,
        };
        let b = EnergyDigest {
            mean: 20.0,
            p50: 18.0,
            p99: 25.0,
            max: 28.0,
        };
        let p = EnergyDigest::pool(&[a, b]);
        assert!((p.mean - 15.0).abs() < 1e-12);
        assert_eq!(p.p99, 25.0);
        assert_eq!(p.max, 30.0);
    }

    #[test]
    fn sweep_shape() {
        assert_eq!(pow2_sweep(3, 6), vec![8, 16, 32, 64]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(std::iter::empty()), 0.0);
    }
}
