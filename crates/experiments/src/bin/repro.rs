//! `repro` — regenerate every table and figure of the reproduction.
//!
//! ```text
//! repro list                 # show the experiment index
//! repro all                  # run everything at full scale
//! repro t2 t4 f3             # run a subset
//! repro all --quick          # reduced sweeps (what the benches print)
//! repro all --csv out/       # also write one CSV per table
//! ```

use std::io::Write as _;
use std::time::Instant;

use lowsense_experiments::{registry, Scale};

fn usage() -> ! {
    eprintln!("usage: repro <list|all|ID...> [--quick] [--csv DIR]");
    eprintln!("       IDs: {}", ids().join(" "));
    std::process::exit(2);
}

fn ids() -> Vec<String> {
    registry().iter().map(|e| e.id.to_lowercase()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Full;
    let mut csv_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "list" => {
                println!("{0:<4} {1:<45} reproduces", "id", "title");
                for e in registry() {
                    println!("{:<4} {:<45} {}", e.id, e.title, e.claim);
                }
                return;
            }
            "all" => selected = ids(),
            id => selected.push(id.to_lowercase()),
        }
    }
    if selected.is_empty() {
        usage();
    }
    let reg = registry();
    for id in &selected {
        if !reg.iter().any(|e| e.id.to_lowercase() == *id) {
            eprintln!("unknown experiment id: {id}");
            usage();
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
    }

    let total = Instant::now();
    for e in reg {
        if !selected.contains(&e.id.to_lowercase()) {
            continue;
        }
        let started = Instant::now();
        let tables = (e.run)(scale);
        let elapsed = started.elapsed();
        for t in &tables {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", t.id.to_lowercase());
                let mut f = std::fs::File::create(&path).expect("create csv file");
                f.write_all(t.to_csv().as_bytes()).expect("write csv");
            }
        }
        println!(
            "[{} done in {:.1}s — reproduces {}]\n",
            e.id,
            elapsed.as_secs_f64(),
            e.claim
        );
    }
    println!("total: {:.1}s", total.elapsed().as_secs_f64());
}
