//! `campaign` — run a canonical campaign sweep and emit its artifact.
//!
//! ```text
//! campaign faceoff                          # tiny face-off, all cores
//! campaign faceoff --shards 4               # explicit shard count
//! campaign faceoff --full                   # the T2-scale grid
//! campaign faceoff --seed 7 --out F.json    # artifact path (default
//!                                           # CAMPAIGN_<name>.json)
//! campaign feedback-grid                    # protocols × channel models
//! campaign feedback-grid --progress         # live cells/sec + ETA line
//! campaign faceoff --progress-json P.jsonl  # machine-readable progress
//! ```
//!
//! The artifact bytes are a pure function of `(campaign, scale, seed)` —
//! **not** of `--shards`, and not of the progress flags — which the CI
//! canary enforces by running the tiny face-off at 1 and 4 shards (and
//! with/without `--progress-json`) and failing on any byte difference.

use lowsense_experiments::campaigns;
use lowsense_experiments::common::pow2_sweep;

fn usage() -> ! {
    eprintln!(
        "usage: campaign <faceoff|feedback-grid> [--shards N] [--seed S] [--out FILE] [--full] \
         [--progress] [--progress-json FILE]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut out: Option<String> = None;
    let mut full = false;
    let mut progress = lowsense_campaign::ProgressConfig::disabled();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => shards = Some(parse(it.next())),
            "--seed" => seed = parse(it.next()),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--full" => full = true,
            "--progress" => progress.stderr = true,
            "--progress-json" => progress.jsonl = Some(it.next().unwrap_or_else(|| usage()).into()),
            "faceoff" | "feedback-grid" if name.is_none() => name = Some(arg),
            _ => usage(),
        }
    }
    let Some(name) = name else { usage() };

    let spec = match (name.as_str(), full) {
        ("faceoff", true) => campaigns::faceoff_spec(&pow2_sweep(6, 15), 12, seed),
        ("faceoff", false) => campaigns::faceoff_small_spec(seed),
        ("feedback-grid", true) => campaigns::feedback_grid_spec(1 << 10, 8, seed),
        ("feedback-grid", false) => campaigns::feedback_grid_small_spec(seed),
        _ => usage(),
    };
    let shards = shards.unwrap_or_else(lowsense_campaign::pool::default_shards);
    eprintln!(
        "campaign {}: {} cells × {} replicates on {} shard(s), seed {}",
        spec.name(),
        spec.cell_count(),
        spec.unit_count() / spec.cell_count().max(1),
        shards,
        seed
    );
    let result = spec
        .run_sharded_progress(shards, &progress)
        .expect("open progress JSONL sink");
    print!("{}", result.render());
    let path = out.unwrap_or_else(|| format!("CAMPAIGN_{}.json", result.name));
    result.write_json(&path).expect("write campaign artifact");
    eprintln!("campaign: wrote {path}");
}
